package bench

import (
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/myriapi"
	"fm/internal/sim"
	"fm/internal/workload"
)

// Single-point measurement helpers for the repository-level testing.B
// benchmarks (bench_test.go): each call runs one fresh, deterministic
// simulation and returns the paper-style result.

// LANaiStream measures LANai-to-LANai bandwidth (Fig. 3) at one size.
func LANaiStream(p *cost.Params, streamed bool, size, packets int) metrics.BWPoint {
	return lanaiStreamPoint(p, streamed, size, packets)
}

// LANaiPingPong measures LANai-to-LANai one-way latency at one size.
func LANaiPingPong(p *cost.Params, streamed bool, size, rounds int) metrics.LatPoint {
	return lanaiLatPoint(p, streamed, size, rounds)
}

// FMStream measures host-to-host bandwidth through an FM configuration.
func FMStream(cfg core.Config, p *cost.Params, size, packets int) (sim.Duration, float64) {
	elapsed, bw, err := metrics.Stream(fmMaker(cfg, p)(size), size, packets)
	if err != nil {
		panic(err)
	}
	return elapsed, bw
}

// FMPingPong measures host-to-host one-way latency through an FM
// configuration.
func FMPingPong(cfg core.Config, p *cost.Params, size, rounds int) sim.Duration {
	lat, err := metrics.PingPong(fmMaker(cfg, p)(size), size, rounds)
	if err != nil {
		panic(err)
	}
	return lat
}

// APIStream measures bandwidth through the Myrinet API comparator.
func APIStream(v myriapi.Variant, p *cost.Params, size, packets int) (sim.Duration, float64) {
	elapsed, bw, err := metrics.Stream(apiMaker(v, p)(size), size, packets)
	if err != nil {
		panic(err)
	}
	return elapsed, bw
}

// APIPingPong measures one-way latency through the Myrinet API.
func APIPingPong(v myriapi.Variant, p *cost.Params, size, rounds int) sim.Duration {
	lat, err := metrics.PingPong(apiMaker(v, p)(size), size, rounds)
	if err != nil {
		panic(err)
	}
	return lat
}

// MPIStream measures host-to-host bandwidth through the MPI layer on
// the full FM stack (two-node crossbar, frame sized to one fragment).
func MPIStream(p *cost.Params, size, packets int) metrics.BWPoint {
	return mpiStreamPoint(mpiCrossbar(p, 0), size, packets)
}

// MPIPingPong measures one-way tagged-message latency through the MPI
// layer on the full FM stack.
func MPIPingPong(p *cost.Params, size, rounds int) metrics.LatPoint {
	return mpiLatPoint(mpiCrossbar(p, 0), size, rounds)
}

// FaultDrive runs the faults experiment's all-to-all point once: a
// 32-node Clos under the default seeded fault plan, through the full FM
// stack with the fault timeline installed on every hop. Panics if any
// message goes undelivered — the benchmark doubles as a delivery smoke.
func FaultDrive() workload.FaultResult {
	opt := DefaultOptions()
	_, ws, n, err := faultTimeline(opt)
	if err != nil {
		panic(err)
	}
	return workload.DriveFMFaults(workload.ClosSpec(n), core.DefaultConfig(), cost.Default(),
		workload.AllToAll{Rounds: 1}, 112, ws)
}

// Exported layer-stack configurations (the Table 4 rows), for benchmarks
// and external tooling.

// ConfigHybridVestigial is the Fig. 4 "streamed + hybrid" layer.
func ConfigHybridVestigial() core.Config { return cfgHybridVestigial() }

// ConfigAllDMAVestigial is the Fig. 4 "streamed + all DMA" layer.
func ConfigAllDMAVestigial() core.Config { return cfgAllDMAVestigial() }

// ConfigBufMgmt is the Fig. 7 "+ buffer management" layer.
func ConfigBufMgmt() core.Config { return cfgBufMgmt() }

// ConfigBufSwitch is the Fig. 7 "+ buffer management + switch()" layer.
func ConfigBufSwitch() core.Config { return cfgBufSwitch() }

// ConfigFullFM is the complete FM 1.0 layer (Fig. 8/9).
func ConfigFullFM() core.Config { return cfgFullFM() }
