// Package host models the workstation's processor as seen by a messaging
// layer: a simulated process that pays for memory copies, uncached SBus
// accesses, and fixed software overheads according to the cost model
// (paper Section 2).
//
// Application code — benchmark drivers, examples — runs *inside* the host
// process: every messaging-layer call it makes advances virtual time by
// the host cost of that call, exactly as the paper's user-level library
// consumed SPARC cycles.
package host

import (
	"fmt"

	"fm/internal/cost"
	"fm/internal/sbus"
	"fm/internal/sim"
)

// CPU is one workstation's processor. At most one application process
// runs per CPU (the paper's measurements are single-process).
type CPU struct {
	ID  int
	K   *sim.Kernel
	P   *cost.Params
	Bus *sbus.Bus

	proc *sim.Proc
}

// New creates a CPU for node id on the given bus.
func New(k *sim.Kernel, p *cost.Params, bus *sbus.Bus, id int) *CPU {
	return NewAt(new(CPU), k, p, bus, id)
}

// NewAt initializes a CPU in caller-provided storage and returns it —
// the in-place form New wraps, used by the cluster layer's per-node
// stack arena.
func NewAt(c *CPU, k *sim.Kernel, p *cost.Params, bus *sbus.Bus, id int) *CPU {
	*c = CPU{ID: id, K: k, P: p, Bus: bus}
	return c
}

// Start spawns the application process. It panics if one is already
// running.
func (c *CPU) Start(fn func()) {
	if c.proc != nil {
		panic(fmt.Sprintf("host %d: application already running", c.ID))
	}
	c.K.Spawn(fmt.Sprintf("host%d", c.ID), func(p *sim.Proc) {
		c.proc = p
		defer func() { c.proc = nil }()
		fn()
	})
}

// Proc returns the running application process. Messaging layers use it
// to block and to charge time. It panics outside an application.
func (c *CPU) Proc() *sim.Proc {
	if c.proc == nil {
		panic(fmt.Sprintf("host %d: no application process", c.ID))
	}
	return c.proc
}

// Now returns the current virtual time.
func (c *CPU) Now() sim.Time { return c.K.Now() }

// Advance charges d of pure host computation. Like every blocking CPU
// method, it costs no heap allocation in the steady state: sleeps and
// signal waits schedule argument-style kernel events and reuse the
// process's embedded wait registration (see DESIGN.md "Performance"),
// so per-message host charges never churn the garbage collector.
func (c *CPU) Advance(d sim.Duration) { c.Proc().Sleep(d) }

// Memcpy charges a host memory-to-memory copy of n bytes (user buffer to
// pinned DMA region; ~34 MB/s effective).
func (c *CPU) Memcpy(n int) {
	if n > 0 {
		c.Proc().Sleep(c.P.MemcpyTime(n))
	}
}

// MemRead charges the host reading n bytes of received data out of the
// DMA region (cached reads).
func (c *CPU) MemRead(n int) {
	if n > 0 {
		c.Proc().Sleep(sim.Duration(n) * c.P.HostMemReadByte)
	}
}

// PIOWrite charges a programmed-I/O copy of n bytes across the SBus into
// LANai memory, holding the bus.
func (c *CPU) PIOWrite(n int) { c.Bus.PIOWrite(c.Proc(), n) }

// StatusRead charges an uncached read of a LANai register.
func (c *CPU) StatusRead() { c.Bus.StatusRead(c.Proc()) }

// ControlWrite charges an uncached single-word store to LANai memory.
func (c *CPU) ControlWrite() { c.Bus.ControlWrite(c.Proc()) }

// Wait blocks the application on a signal.
func (c *CPU) Wait(s *sim.Signal) { c.Proc().Wait(s) }

// WaitTimeout blocks on a signal with a deadline; reports true if
// signaled.
func (c *CPU) WaitTimeout(s *sim.Signal, d sim.Duration) bool {
	return c.Proc().WaitTimeout(s, d)
}
