package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

// TestRandomTrafficExactlyOnce is the protocol's property test: across
// randomized configurations (queue depths, windows, thresholds, drain
// limits, SBus modes, protocols) and randomized many-to-many traffic,
// every sent message is delivered exactly once with intact contents.
func TestRandomTrafficExactlyOnce(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))

			cfg := core.DefaultConfig()
			cfg.CheckInvariants = true
			cfg.FramePayload = 32 + rng.Intn(200)
			cfg.SendSlots = 4 + rng.Intn(24)
			cfg.RecvSlots = 8 + rng.Intn(48)
			cfg.HostRecvSlots = 16 + rng.Intn(64)
			cfg.WindowSlots = 8 + rng.Intn(96)
			cfg.AckBatch = 2 + rng.Intn(12)
			cfg.RetryDelay = sim.Duration(10+rng.Intn(80)) * sim.Microsecond
			if rng.Intn(2) == 0 {
				cfg.DrainLimit = 1 + rng.Intn(4)
				cfg.RejectThreshold = cfg.HostRecvSlots / 4
			}
			if rng.Intn(4) == 0 {
				cfg.SBusMode = core.AllDMA
			}
			if rng.Intn(3) == 0 {
				cfg.Protocol = core.SlidingWindow
				cfg.WindowPerDest = 4 + rng.Intn(12)
				cfg.RejectThreshold = 0
			}

			nodes := 2 + rng.Intn(3)
			if cfg.Protocol == core.SlidingWindow {
				cfg.HostRecvSlots = nodes*cfg.WindowPerDest + 8
			}
			perSender := 50 + rng.Intn(150)

			c := cluster.NewFM(nodes, cfg, cost.Default())
			type msgID struct{ src, idx int }
			delivered := make(map[msgID]int)
			total := 0
			want := make(map[msgID]byte)

			counts := make([]int, nodes)
			expect := make([]int, nodes)
			// Precompute destinations so expected per-node counts are known.
			plans := make([][]int, nodes)
			for s := 0; s < nodes; s++ {
				plans[s] = make([]int, perSender)
				for i := range plans[s] {
					d := rng.Intn(nodes - 1)
					if d >= s {
						d++
					}
					plans[s][i] = d
					expect[d]++
					total++
				}
			}

			// A node is finished only when the whole cluster is quiet:
			// its own receive count met everywhere, and no endpoint has
			// unacknowledged packets. Nodes linger with a timed poll so
			// peers' trailing acks and retransmissions are serviced.
			doneRecv := 0
			quiet := func() bool {
				if doneRecv < nodes {
					return false
				}
				for _, ep := range c.EPs {
					if ep.Outstanding() > 0 {
						return false
					}
				}
				return true
			}
			for n := 0; n < nodes; n++ {
				n := n
				c.Start(n, func(ep *core.Endpoint) {
					ep.RegisterHandler(0, func(src int, payload []byte) {
						idx := int(payload[0]) | int(payload[1])<<8
						id := msgID{src, idx}
						delivered[id]++
						if payload[2] != want[id] {
							t.Errorf("message %v content %d, want %d", id, payload[2], want[id])
						}
						counts[n]++
					})
					size := 3 + rng.Intn(cfg.FramePayload-3)
					buf := make([]byte, size)
					for i, d := range plans[n] {
						buf[0] = byte(i)
						buf[1] = byte(i >> 8)
						buf[2] = byte((n*7 + i*13) % 251)
						want[msgID{n, i}] = buf[2]
						if err := ep.Send(d, 0, buf); err != nil {
							t.Errorf("send: %v", err)
							return
						}
						if i%7 == 0 {
							ep.Extract()
						}
					}
					for counts[n] < expect[n] {
						ep.WaitIncoming()
						ep.Extract()
					}
					doneRecv++
					for !quiet() {
						c.CPUs[n].WaitTimeout(c.Devs[n].HostRecvAvail, 150*sim.Microsecond)
						ep.Extract()
					}
				})
			}
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			if len(delivered) != total {
				t.Fatalf("delivered %d distinct messages, want %d", len(delivered), total)
			}
			for id, n := range delivered {
				if n != 1 {
					t.Fatalf("message %v delivered %d times", id, n)
				}
			}
			for n := 0; n < nodes; n++ {
				if st := c.EPs[n].Stats(); st.Duplicates != 0 {
					t.Errorf("node %d screened %d duplicates", n, st.Duplicates)
				}
				if out := c.EPs[n].Outstanding(); out != 0 {
					t.Errorf("node %d still has %d outstanding", n, out)
				}
			}
		})
	}
}

// TestWindowProtocolUsesPerDestLimits: sliding-window mode enforces the
// per-destination window rather than the global reject-region limit.
func TestWindowProtocolUsesPerDestLimits(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Protocol = core.SlidingWindow
	cfg.WindowPerDest = 4
	cfg.WindowSlots = 1000 // irrelevant in window mode
	cfg.RejectThreshold = 0
	cfg.HostRecvSlots = 64
	c := cluster.NewFM(3, cfg, cost.Default())

	recv := make([]int, 3)
	for n := 1; n <= 2; n++ {
		n := n
		c.Start(n, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) { recv[n]++ })
			for recv[n] < 30 {
				ep.WaitIncoming()
				ep.Extract()
			}
			ep.Extract()
		})
	}
	maxOut := 0
	c.Start(0, func(ep *core.Endpoint) {
		// Interleave toward two destinations; combined outstanding may
		// reach 2*WindowPerDest but no further.
		for i := 0; i < 30; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
			ep.Send4(2, 0, uint32(i), 0, 0, 0)
			if o := ep.Outstanding(); o > maxOut {
				maxOut = o
			}
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if maxOut > 8 {
		t.Errorf("outstanding reached %d, per-dest window 4 x 2 dests = 8", maxOut)
	}
	if recv[1] != 30 || recv[2] != 30 {
		t.Fatalf("recv = %v", recv)
	}
}

// TestRejectQueueNeverOverflows: the deadlock-freedom invariant — the
// reject queue has reserved space for every outstanding packet, so even
// when the receiver bounces nearly everything, the sender never panics
// on a full reject queue (a panic would fail the run).
func TestRejectQueueNeverOverflows(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckInvariants = true
	cfg.WindowSlots = 16 // small window = small reject reserve
	cfg.HostRecvSlots = 16
	cfg.RejectThreshold = 2 // bounce aggressively
	cfg.DrainLimit = 1
	cfg.AckBatch = 2
	cfg.RetryDelay = 10 * sim.Microsecond
	c := cluster.NewFM(2, cfg, cost.Default())
	const n = 120

	recv := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(int, []byte) {
			recv++
			ep.CPU().Advance(40 * sim.Microsecond)
		})
		for recv < n {
			ep.WaitIncoming()
			ep.Extract()
		}
		ep.Extract()
	})
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err) // a reject-queue overflow would surface here
	}
	if recv != n {
		t.Fatalf("recv = %d", recv)
	}
	if c.EPs[0].Stats().Retransmits == 0 {
		t.Error("scenario failed to exercise retransmission")
	}
}

// TestInterpretConfigReachesLCP: the Interpret knob must actually slow
// the stack (guards against config plumbing regressions).
func TestInterpretConfigReachesLCP(t *testing.T) {
	run := func(interpret bool) sim.Time {
		cfg := core.DefaultConfig()
		cfg.Interpret = interpret
		c := cluster.NewFM(2, cfg, cost.Default())
		recv := 0
		c.Start(1, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) { recv++ })
			for recv < 200 {
				ep.WaitIncoming()
				ep.Extract()
			}
			ep.Extract()
		})
		c.Start(0, func(ep *core.Endpoint) {
			for i := 0; i < 200; i++ {
				ep.Send4(1, 0, uint32(i), 0, 0, 0)
			}
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.K.Now()
	}
	plain, interp := run(false), run(true)
	if interp <= plain {
		t.Errorf("interpretation (%v) not slower than plain (%v)", interp, plain)
	}
}

// TestFrameResizeKeepsLANaiBudget: WithFrame must always produce a
// config whose LANai queues fit the 128KB card.
func TestFrameResizeKeepsLANaiBudget(t *testing.T) {
	p := cost.Default()
	for _, payload := range []int{4, 64, 128, 600, 1024, 4096, 16384} {
		cfg := core.DefaultConfig().WithFrame(payload)
		qc := cfg.Queues(p)
		// Constructing the device panics if the budget is exceeded; use
		// a cluster to exercise the real path.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("payload %d: %v", payload, r)
				}
			}()
			cluster.NewFM(2, cfg, p)
		}()
		if qc.FrameBytes != payload+p.FMHeaderBytes {
			t.Errorf("payload %d: frame bytes %d", payload, qc.FrameBytes)
		}
	}
}

// TestLatencyHistogramRecordsRejectionTail: every delivery is recorded,
// and rejection+retransmission visibly stretches the distribution's tail
// relative to its median.
func TestLatencyHistogramRecordsRejectionTail(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HostRecvSlots = 16
	cfg.RejectThreshold = 4
	cfg.DrainLimit = 1
	cfg.RetryDelay = 30 * sim.Microsecond
	c := cluster.NewFM(2, cfg, cost.Default())
	const n = 150

	recv := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(int, []byte) {
			recv++
			ep.CPU().Advance(30 * sim.Microsecond)
		})
		for recv < n {
			ep.WaitIncoming()
			ep.Extract()
		}
		ep.Extract()
	})
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	h := c.EPs[1].LatencyHistogram()
	if h.Count() != n {
		t.Fatalf("histogram has %d samples, want %d", h.Count(), n)
	}
	if c.EPs[0].Stats().Retransmits == 0 {
		t.Fatal("scenario produced no retransmissions")
	}
	p50, p99 := h.Percentile(0.5), h.Percentile(0.99)
	if p99 < 2*p50 {
		t.Errorf("rejection should stretch the tail: p50=%v p99=%v", p50, p99)
	}
}
