package sim

// event is a scheduled callback. Events with equal times fire in
// insertion order (seq), which makes the kernel deterministic.
//
// The callback is carried as a func(any) plus an argument rather than a
// bare closure: the kernel's hottest schedule sites (process sleeps,
// signal wakes, packet deliveries) pass a package-level function and a
// pointer argument, so scheduling an event performs no allocation. Plain
// closures still work through Kernel.At, which boxes the func() into the
// argument slot (func values are pointer-shaped, so the boxing itself
// does not allocate either — only the closure's own capture does).
type event struct {
	at  Time
	seq uint64
	fn  func(any)
	arg any
}

// call invokes the event's callback.
func (e *event) call() { e.fn(e.arg) }

// callClosure adapts a plain func() stored in the argument slot.
func callClosure(a any) { a.(func())() }

// eventHeap is a hand-rolled binary min-heap keyed by (at, seq). A
// concrete heap avoids the interface-dispatch overhead of container/heap
// on the kernel's hottest path. The backing array is retained across
// Push/Pop cycles (and therefore across Run generations on the same
// kernel), so a steady-state simulation reaches a high-water capacity
// once and schedules allocation-free from then on.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Push inserts e and restores the heap property.
func (h *eventHeap) Push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// Pop removes and returns the earliest event. It must not be called on an
// empty heap.
func (h *eventHeap) Pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev[last] = event{} // release the callback and argument for GC
	h.ev = h.ev[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
}

// Peek returns the earliest event without removing it.
func (h *eventHeap) Peek() event { return h.ev[0] }
