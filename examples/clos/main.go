// Clos: a 64-node Fast Messages machine on a 2-level Clos fabric — the
// multistage Myrinet the paper's single 8-port crossbar scaled into in
// real deployments.
//
// The program builds 8 leaf switches of 8 nodes each, fully connected to
// 8 spine switches (full bisection), runs a complete all-to-all exchange
// through the FM layer (every node sends one 112-byte message to every
// other node), and reports completion time, delivered bandwidth, and how
// the deterministic per-destination routing spread traffic across the
// spines. For comparison it repeats the exchange on an idealized 64-port
// crossbar.
//
// Run with: go run ./examples/clos
package main

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/sim"
)

const (
	spines       = 8
	leaves       = 8
	nodesPerLeaf = 8
	ports        = 16
	nodes        = leaves * nodesPerLeaf
	msgSize      = 112 // + 16B header = the paper's 128B frame
	handler      = 0
)

// allToAll runs the exchange on c and returns its completion time.
func allToAll(c *cluster.FM) sim.Duration {
	expect := nodes - 1
	for id := 0; id < nodes; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			got := 0
			ep.RegisterHandler(handler, func(int, []byte) { got++ })
			buf := make([]byte, msgSize)
			for off := 1; off < nodes; off++ {
				if err := ep.Send((id+off)%nodes, handler, buf); err != nil {
					panic(err)
				}
				ep.Extract()
			}
			for got < expect || ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	return sim.Duration(c.K.Now())
}

func main() {
	p := cost.Default()
	cfg := core.DefaultConfig()
	totalMsgs := nodes * (nodes - 1)

	clos := cluster.NewFMClos(spines, leaves, nodesPerLeaf, ports, cfg, p)
	sameLeaf := clos.Fab.MinLatency(0, 1, msgSize+p.FMHeaderBytes)
	crossLeaf := clos.Fab.MinLatency(0, nodes-1, msgSize+p.FMHeaderBytes)
	closTime := allToAll(clos)

	xbar := cluster.NewFM(nodes, cfg, p)
	xbarTime := allToAll(xbar)

	fmt.Printf("%d nodes: %d leaves x %d, %d spines, %d-port switches (%d switches total)\n",
		nodes, leaves, nodesPerLeaf, spines, ports, clos.Fab.NumSwitches())
	fmt.Printf("wire-level min latency: %v same leaf (1 hop), %v cross leaf (3 hops)\n",
		sameLeaf, crossLeaf)
	fmt.Printf("\nall-to-all, %d messages of %dB through the full FM layer:\n", totalMsgs, msgSize)
	fmt.Printf("  %-28s %10v   %6.1f MB/s delivered\n", "2-level Clos:", closTime,
		metrics.Bandwidth(msgSize, totalMsgs, closTime))
	fmt.Printf("  %-28s %10v   %6.1f MB/s delivered\n", "ideal 64-port crossbar:", xbarTime,
		metrics.Bandwidth(msgSize, totalMsgs, xbarTime))
	fmt.Printf("  clos/crossbar completion ratio: %.2fx\n",
		float64(closTime)/float64(xbarTime))

	// How evenly did destination-deterministic routing load the spines?
	fmt.Printf("\nspine downlink utilization (Clos, %d spines):\n", spines)
	for s := 0; s < spines; s++ {
		sw := clos.Fab.SwitchAt(leaves + s) // spines follow the leaves
		sum := 0.0
		for l := 0; l < leaves; l++ {
			sum += sw.OutputUtilization(l)
		}
		fmt.Printf("  spine%d: mean downlink utilization %5.1f%%\n", s, 100*sum/float64(leaves))
	}

	st := clos.Fab.Stats()
	fmt.Printf("\nfabric traffic: %d packets, %d payload bytes, %d wire bytes\n",
		st.Packets, st.PayloadBytes, st.WireBytes)
}
