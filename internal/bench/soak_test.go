package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// soakTestOptions is a small, fast soak configuration: a clos-16, a
// short horizon, and one load on each side of the knee.
func soakTestOptions() Options {
	opt := DefaultOptions()
	opt.SoakNodes = 16
	opt.SoakLoads = []float64{1, 24}
	opt.SoakHorizonUs = 300
	opt.SoakWindowUs = 100
	return opt
}

// renderSoak runs the soak experiment at the given harness settings and
// returns the rendered report.
func renderSoak(opt Options, workers int) string {
	opt.Workers = workers
	var buf bytes.Buffer
	Soak(opt).WriteText(&buf)
	return buf.String()
}

// TestSoakDeterminismPin is the soak experiment's determinism
// regression pin, the same idiom as the faults pin: the report must be
// byte-identical across worker counts and across repeated runs (the
// timeline always runs on the canonical single-kernel engine, so
// -shards cannot enter the computation at all), and the pinned run must
// actually show the open-loop signature — an overloaded point whose
// backlog and windowed p99 dwarf the underloaded point's.
func TestSoakDeterminismPin(t *testing.T) {
	opt := soakTestOptions()
	base := renderSoak(opt, 1)
	if w4 := renderSoak(opt, 4); w4 != base {
		t.Fatalf("soak output depends on worker count:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", base, w4)
	}
	if again := renderSoak(opt, 1); again != base {
		t.Fatal("soak output not reproducible across runs")
	}

	rows := kneeRows(t, base)
	if len(rows) != 2 {
		t.Fatalf("knee table has %d rows, want 2:\n%s", len(rows), base)
	}
	light, heavy := rows[0], rows[1]
	// backlog@bell (column 7) grows without bound past the knee.
	if lb, hb := atoiCol(t, light, 6), atoiCol(t, heavy, 6); hb < 10*lb+10 {
		t.Fatalf("overloaded backlog %d not >> underloaded %d:\n%s", hb, lb, base)
	}
	// p99 (column 5) blows up past the knee.
	if lp, hp := atofCol(t, light, 4), atofCol(t, heavy, 4); hp < 4*lp {
		t.Fatalf("overloaded p99 %.1fus not >> underloaded %.1fus:\n%s", hp, lp, base)
	}
	for _, want := range []string{
		"-- offered 1 MB/s per node (poisson:uniform-random) (100us windows) --",
		"-- offered 24 MB/s per node (poisson:uniform-random) (100us windows) --",
		"termination: horizon",
		"canonical single-kernel engine",
	} {
		if !strings.Contains(base, want) {
			t.Fatalf("soak report missing %q:\n%s", want, base)
		}
	}
}

// TestSoakDrainMode: -soak-drain reports the timeline through
// quiescence, so the overloaded point's series runs past the horizon.
func TestSoakDrainMode(t *testing.T) {
	opt := soakTestOptions()
	opt.SoakLoads = []float64{24}
	opt.SoakDrain = true
	out := renderSoak(opt, 1)
	if !strings.Contains(out, "termination: drain") {
		t.Fatalf("drain mode not reported:\n%s", out)
	}
	// Horizon is 300us at 100us windows: a clipped series would end at
	// t=200; an overloaded drain must extend past the bell.
	if !strings.Contains(out, "\n     300 ") {
		t.Fatalf("drain-mode series does not extend past the horizon:\n%s", out)
	}
}

// TestValidateSoak: every bad -soak-* combination is rejected with the
// reason, before anything runs (the fmbench pre-flight).
func TestValidateSoak(t *testing.T) {
	if err := ValidateSoak(DefaultOptions()); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"bad source", func(o *Options) { o.SoakSource = "bursty" }, "-soak-source"},
		{"bad pattern", func(o *Options) { o.SoakPattern = "zigzag" }, "-soak-pattern"},
		{"no loads", func(o *Options) { o.SoakLoads = nil }, "-soak-loads"},
		{"negative load", func(o *Options) { o.SoakLoads = []float64{8, -1} }, "positive"},
		{"zero horizon", func(o *Options) { o.SoakHorizonUs = 0 }, "-soak-horizon-us"},
		{"zero window", func(o *Options) { o.SoakWindowUs = 0 }, "-soak-window-us"},
		{"window > horizon", func(o *Options) { o.SoakWindowUs = 2000 }, "at least one full window"},
		{"bad fault plan", func(o *Options) { o.FaultPlan = "switch 9" }, "want"},
		{"fault index range", func(o *Options) { o.FaultPlan = "switch 9999 10 20" }, "out of range"},
	}
	for _, c := range cases {
		opt := DefaultOptions()
		c.mut(&opt)
		if err := ValidateSoak(opt); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestSoakFaultOverlay: an explicit -fault-plan applies to every load
// point and draws retransmits into the windows; the faults experiment's
// seed default must not leak in.
func TestSoakFaultOverlay(t *testing.T) {
	opt := soakTestOptions()
	opt.SoakLoads = []float64{2}
	clean := renderSoak(opt, 1)
	if strings.Contains(clean, "fault plan overlaid") {
		t.Fatalf("fault note printed without a plan:\n%s", clean)
	}
	opt.FaultPlan = "link 1 50 120"
	faulted := renderSoak(opt, 1)
	if !strings.Contains(faulted, "fault plan overlaid on every load point") {
		t.Fatalf("fault note missing:\n%s", faulted)
	}
	if faulted == clean {
		t.Fatal("fault plan had no effect on the soak report")
	}
}

// kneeRows returns the data rows of the offered-load ladder table.
func kneeRows(t *testing.T, out string) []string {
	t.Helper()
	lines := strings.Split(out, "\n")
	for i, line := range lines {
		if strings.Contains(line, "-- offered-load ladder --") {
			var rows []string
			for _, row := range lines[i+2:] {
				if strings.TrimSpace(row) == "" {
					return rows
				}
				rows = append(rows, row)
			}
		}
	}
	t.Fatalf("no offered-load ladder in:\n%s", out)
	return nil
}

func atoiCol(t *testing.T, row string, col int) int {
	t.Helper()
	f := strings.Fields(row)
	if col >= len(f) {
		t.Fatalf("row %q has no column %d", row, col)
	}
	n, err := strconv.Atoi(f[col])
	if err != nil {
		t.Fatalf("column %d of %q: %v", col, row, err)
	}
	return n
}

func atofCol(t *testing.T, row string, col int) float64 {
	t.Helper()
	f := strings.Fields(row)
	if col >= len(f) {
		t.Fatalf("row %q has no column %d", row, col)
	}
	v, err := strconv.ParseFloat(f[col], 64)
	if err != nil {
		t.Fatalf("column %d of %q: %v", col, row, err)
	}
	return v
}
