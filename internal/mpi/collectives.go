package mpi

import (
	"encoding/binary"
	"math"
)

// The collectives are implemented on the matching engine itself — every
// transfer is an internal tagged send matched by an internal tagged
// receive — rather than on a separate handler, so they exercise exactly
// the machinery an MPI implementation layered on FM would. Algorithms
// are the classic binomial/dissemination ones: O(log N) rounds of
// messages, the short-message regime FM's low n1/2 targets.
//
// Internal tags are negative (below AnyTag), so they can never collide
// with application tags and receive wildcards never match them. Every
// collective invocation gets a fresh tag from the communicator's
// invocation counter; since collectives must be invoked in the same
// order by every member, the counters agree group-wide and a fast
// member's next collective cannot be confused with a slow member's
// current one.

// Op combines two reduction operands.
type Op func(a, b float64) float64

// Built-in reduction operators.
var (
	Sum  Op = func(a, b float64) float64 { return a + b }
	Prod Op = func(a, b float64) float64 { return a * b }
	Max  Op = math.Max
	Min  Op = math.Min
)

// collTag returns the internal tag for the next collective invocation.
func (c *Comm) collTag() int {
	c.collSeq++
	return -2 - int(c.collSeq)
}

// recvColl receives one internal-tagged message from a rank (exact
// negative tags pass straight through the ordinary matching path).
func (c *Comm) recvColl(src, tag int) []byte {
	data, _ := c.Wait(c.Irecv(src, tag))
	return data
}

// Barrier blocks until every member has entered it (dissemination
// algorithm: ceil(log2 N) rounds of one empty message each).
func (c *Comm) Barrier() {
	tag := c.collTag()
	me, n := c.rank, c.size()
	for dist := 1; dist < n; dist *= 2 {
		c.isend((me+dist)%n, tag, nil)
		c.recvColl((me-dist+n)%n, tag)
	}
}

// Bcast distributes root's data to every member along a binomial tree;
// each member returns its own copy.
func (c *Comm) Bcast(root int, data []byte) []byte {
	tag := c.collTag()
	me, n := c.rank, c.size()
	rel := (me - root + n) % n

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (me - mask + n) % n
			data = c.recvColl(parent, tag)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			c.isend((me+mask)%n, tag, data)
		}
	}
	return append([]byte(nil), data...)
}

// Reduce combines each member's vector element-wise with op along a
// binomial tree rooted at root; the result is returned at root (nil
// elsewhere). All members must pass vectors of the same length.
func (c *Comm) Reduce(root int, vals []float64, op Op) []float64 {
	tag := c.collTag()
	me, n := c.rank, c.size()
	rel := (me - root + n) % n
	acc := append([]float64(nil), vals...)

	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			child := rel | mask
			if child < n {
				theirs := decodeFloats(c.recvColl((child+root)%n, tag))
				if len(theirs) != len(acc) {
					panic("mpi: reduce length mismatch")
				}
				for i := range acc {
					acc[i] = op(acc[i], theirs[i])
				}
			}
		} else {
			parent := ((rel &^ mask) + root) % n
			c.isend(parent, tag, encodeFloats(acc))
			return nil
		}
	}
	return acc
}

// Allreduce gives every member the reduction result (reduce to rank 0,
// then broadcast).
func (c *Comm) Allreduce(vals []float64, op Op) []float64 {
	res := c.Reduce(0, vals, op)
	var wire []byte
	if c.rank == 0 {
		wire = encodeFloats(res)
	}
	return decodeFloats(c.Bcast(0, wire))
}

// Alltoall performs the personalized exchange: member i's data[j]
// arrives as member j's result[i]. Sends are staggered so the fabric
// sees a rotating permutation rather than N-1 senders converging on one
// port at once.
func (c *Comm) Alltoall(data [][]byte) [][]byte {
	if len(data) != c.size() {
		panic("mpi: Alltoall needs one buffer per member")
	}
	tag := c.collTag()
	me, n := c.rank, c.size()
	out := make([][]byte, n)
	out[me] = append([]byte(nil), data[me]...)
	for step := 1; step < n; step++ {
		c.isend((me+step)%n, tag, data[(me+step)%n])
	}
	for step := 1; step < n; step++ {
		src := (me - step + n) % n
		out[src] = c.recvColl(src, tag)
	}
	return out
}

// --- Split support: small int-vector gather/bcast on internal tags ---

// gatherInts collects every member's vector at root (indexed by rank;
// nil elsewhere). All vectors must have the same length.
func (c *Comm) gatherInts(root int, vals []int) [][]int {
	tag := c.collTag()
	if c.rank != root {
		c.isend(root, tag, encodeInts(vals))
		return nil
	}
	out := make([][]int, c.size())
	out[c.rank] = append([]int(nil), vals...)
	for r := 0; r < c.size(); r++ {
		if r != c.rank {
			out[r] = decodeInts(c.recvColl(r, tag))
		}
	}
	return out
}

// bcastInts distributes root's int vector to every member.
func (c *Comm) bcastInts(root int, vals []int) []int {
	var wire []byte
	if c.rank == root {
		wire = encodeInts(vals)
	}
	return decodeInts(c.Bcast(root, wire))
}

func encodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func encodeInts(vals []int) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(int64(v)))
	}
	return out
}

func decodeInts(b []byte) []int {
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}
