// Package cluster assembles complete simulated machines: hosts, SBuses,
// LANai cards, control programs, and the Myrinet fabric joining them —
// the paper's measurement setup of workstations on an 8-port switch
// (Section 4.1), generalized to N nodes and multi-switch fabrics.
package cluster

import (
	"fmt"

	"fm/internal/cost"
	"fm/internal/host"
	"fm/internal/lanai"
	"fm/internal/lcp"
	"fm/internal/myrinet"
	"fm/internal/sbus"
	"fm/internal/sim"

	"fm/internal/core"
)

// Hardware is the layer-independent machine: everything below the
// messaging software.
type Hardware struct {
	K     *sim.Kernel
	P     *cost.Params
	Fab   *myrinet.Fabric
	Buses []*sbus.Bus
	CPUs  []*host.CPU
	Devs  []*lanai.Device

	// stacks holds each node's arena-allocated object set so newFMOn
	// can place the endpoint and control program in the same nodeStack
	// the hardware layers came from.
	stacks []*nodeStack
}

// nodeStack is the complete per-node object set, allocated as one unit
// from a chunked arena: a 16k-node cluster then makes ~n/stackChunk
// allocations for stack headers instead of 5n separate ones, and each
// node's hot structures share cache lines. Ownership rules: the arena
// chunk is owned by the cluster (Hardware or ShardedFM) that allocated
// it and lives exactly as long as the cluster; callers only ever see
// the ordinary *Bus/*CPU/... pointers, which alias into the chunk and
// must not outlive the cluster — the same lifetime contract the
// individually-allocated objects already had in practice, since every
// one of them pins the cluster's kernel anyway.
type nodeStack struct {
	bus sbus.Bus
	cpu host.CPU
	dev lanai.Device
	ep  core.Endpoint
	lcp lcp.LCP
}

// stackChunk caps the arena granularity: large enough to amortize
// allocation at scale, while newStackArena clamps the chunk to the
// cluster's node count so tiny clusters don't overcommit (a nodeStack
// is tens of KB; a 16-node soak must not pay for 512).
const stackChunk = 512

// stackArena hands out nodeStacks from chunked slabs.
type stackArena struct {
	size  int
	chunk []nodeStack
	next  int
}

// newStackArena sizes an arena for a cluster of n nodes.
func newStackArena(n int) stackArena {
	size := n
	if size > stackChunk {
		size = stackChunk
	}
	if size < 1 {
		size = 1
	}
	return stackArena{size: size}
}

func (a *stackArena) alloc() *nodeStack {
	if a.next == len(a.chunk) {
		a.chunk = make([]nodeStack, a.size)
		a.next = 0
	}
	st := &a.chunk[a.next]
	a.next++
	return st
}

// NewHardware builds n nodes on a single crossbar with the given port
// count (8 for the paper's switch) and queue geometry.
func NewHardware(n int, p *cost.Params, qc lanai.QueueConfig, ports int) *Hardware {
	k := sim.NewKernel()
	fab := myrinet.NewCrossbar(k, p, n, ports)
	return attach(k, p, fab, qc)
}

// NewHardwareOnFabric wires nodes onto an existing fabric (multi-switch
// topologies built with myrinet.NewLine).
func NewHardwareOnFabric(k *sim.Kernel, p *cost.Params, fab *myrinet.Fabric, qc lanai.QueueConfig) *Hardware {
	return attach(k, p, fab, qc)
}

func attach(k *sim.Kernel, p *cost.Params, fab *myrinet.Fabric, qc lanai.QueueConfig) *Hardware {
	h := &Hardware{K: k, P: p, Fab: fab}
	arena := newStackArena(fab.Nodes())
	for i := 0; i < fab.Nodes(); i++ {
		st := arena.alloc()
		bus := sbus.NewAt(&st.bus, k, p, fmt.Sprintf("sbus%d", i))
		h.Buses = append(h.Buses, bus)
		h.CPUs = append(h.CPUs, host.NewAt(&st.cpu, k, p, bus, i))
		h.Devs = append(h.Devs, lanai.NewAt(&st.dev, k, p, bus, fab, i, qc))
		h.stacks = append(h.stacks, st)
	}
	return h
}

// FM is a cluster running the Fast Messages layer on every node.
type FM struct {
	*Hardware
	Cfg  core.Config
	EPs  []*core.Endpoint
	LCPs []*lcp.LCP
}

// NewFM builds an n-node FM cluster on a single crossbar. Ports defaults
// to the larger of 8 and n.
func NewFM(n int, cfg core.Config, p *cost.Params) *FM {
	ports := 8
	if n > ports {
		ports = n
	}
	hw := NewHardware(n, p, cfg.Queues(p), ports)
	return newFMOn(hw, cfg)
}

// NewFMOnFabric runs the FM layer on an existing fabric.
func NewFMOnFabric(k *sim.Kernel, p *cost.Params, fab *myrinet.Fabric, cfg core.Config) *FM {
	hw := NewHardwareOnFabric(k, p, fab, cfg.Queues(p))
	return newFMOn(hw, cfg)
}

// NewFMFrom builds an FM cluster on a fresh kernel around the fabric
// the build function constructs — the generic form behind NewFMLine and
// NewFMClos, and the constructor the workload drivers use to run any
// topology spec through the full stack.
func NewFMFrom(build func(*sim.Kernel, *cost.Params) *myrinet.Fabric, cfg core.Config, p *cost.Params) *FM {
	k := sim.NewKernel()
	return NewFMOnFabric(k, p, build(k, p), cfg)
}

// NewFMLine builds an FM cluster on a linear multi-switch fabric
// (myrinet.NewLine geometry).
func NewFMLine(nSwitches, nodesPerSwitch, ports int, cfg core.Config, p *cost.Params) *FM {
	return NewFMFrom(func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
		return myrinet.NewLine(k, p, nSwitches, nodesPerSwitch, ports)
	}, cfg, p)
}

// NewFMClos builds an FM cluster on a 2-level Clos fabric
// (myrinet.NewClos geometry): spines*leaves trunks, leaves*nodesPerLeaf
// nodes, every switch with the given port count. This is the
// constructor for scaling simulations past a single crossbar (64 nodes =
// 8 spines x 8 leaves x 8 nodes on 16-port switches).
func NewFMClos(spines, leaves, nodesPerLeaf, ports int, cfg core.Config, p *cost.Params) *FM {
	return NewFMFrom(func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
		return myrinet.NewClos(k, p, spines, leaves, nodesPerLeaf, ports)
	}, cfg, p)
}

func newFMOn(hw *Hardware, cfg core.Config) *FM {
	c := &FM{Hardware: hw, Cfg: cfg}
	for i := range hw.Devs {
		st := hw.stacks[i]
		c.EPs = append(c.EPs, core.NewAt(&st.ep, hw.CPUs[i], hw.Devs[i], cfg, hw.P))
		c.LCPs = append(c.LCPs, lcp.StartAt(&st.lcp, hw.Devs[i], cfg.LCPOptions(hw.P)))
	}
	return c
}

// Start launches app as node id's application process.
func (c *FM) Start(id int, app func(ep *core.Endpoint)) {
	ep := c.EPs[id]
	c.CPUs[id].Start(func() { app(ep) })
}

// Run executes the simulation to quiescence.
func (c *Hardware) Run() error { return c.K.RunAll() }

// RunFor executes the simulation up to the given virtual time horizon.
func (c *Hardware) RunFor(d sim.Duration) error { return c.K.Run(sim.Time(d)) }

// ShardedFM is an FM cluster co-simulated by a group of shard kernels:
// one fabric replica per shard, every node's full stack (SBus, host,
// LANai, endpoint, LCP) built on the kernel of the shard that owns the
// node's leaf switch. Indexing is global — CPUs[id], EPs[id] and
// friends work for every node id regardless of which shard simulates
// it; only cross-shard packet hops pay barrier latency.
type ShardedFM struct {
	Group *sim.ShardGroup
	Part  *myrinet.Partition
	P     *cost.Params
	Cfg   core.Config
	Fabs  []*myrinet.Fabric // per shard
	Buses []*sbus.Bus       // per node, on the owning shard's kernel
	CPUs  []*host.CPU
	Devs  []*lanai.Device
	EPs   []*core.Endpoint
	LCPs  []*lcp.LCP
}

// NewFMShardedFrom builds an FM cluster partitioned across `shards`
// kernels around the fabric the build function constructs (one replica
// per shard; the builders are deterministic, so replicas agree on
// numbering). The lookahead window is the switch latency: every
// cross-shard hop crosses a leaf/spine link, so a continuation is
// always posted at least one SwitchLatency ahead. It returns an error
// when the topology does not support the shard count.
func NewFMShardedFrom(build func(*sim.Kernel, *cost.Params) *myrinet.Fabric, cfg core.Config, p *cost.Params, shards int) (*ShardedFM, error) {
	g := sim.NewShardGroup(shards, p.SwitchLatency)
	fabs := make([]*myrinet.Fabric, shards)
	for s := range fabs {
		fabs[s] = build(g.Shard(s).Kernel(), p)
	}
	part, err := fabs[0].Topology().Partition(shards)
	if err != nil {
		return nil, err
	}
	for s := range fabs {
		s := s
		fabs[s].SetShard(part, s, func(owner int, at sim.Time, pkt *myrinet.Packet) {
			g.Shard(s).Post(owner, at, fabs[owner].ResumeCross, pkt)
		})
	}

	n := fabs[0].Nodes()
	c := &ShardedFM{
		Group: g, Part: part, P: p, Cfg: cfg, Fabs: fabs,
		Buses: make([]*sbus.Bus, n),
		CPUs:  make([]*host.CPU, n),
		Devs:  make([]*lanai.Device, n),
		EPs:   make([]*core.Endpoint, n),
		LCPs:  make([]*lcp.LCP, n),
	}
	qc := cfg.Queues(p)
	arena := newStackArena(n)
	for id := 0; id < n; id++ {
		s := part.NodeShard[id]
		k := g.Shard(s).Kernel()
		st := arena.alloc()
		bus := sbus.NewAt(&st.bus, k, p, fmt.Sprintf("sbus%d", id))
		cpu := host.NewAt(&st.cpu, k, p, bus, id)
		dev := lanai.NewAt(&st.dev, k, p, bus, fabs[s], id, qc)
		c.Buses[id], c.CPUs[id], c.Devs[id] = bus, cpu, dev
		c.EPs[id] = core.NewAt(&st.ep, cpu, dev, cfg, p)
		c.LCPs[id] = lcp.StartAt(&st.lcp, dev, cfg.LCPOptions(p))
	}
	return c, nil
}

// Start launches app as node id's application process on the shard
// that owns the node.
func (c *ShardedFM) Start(id int, app func(ep *core.Endpoint)) {
	ep := c.EPs[id]
	c.CPUs[id].Start(func() { app(ep) })
}

// Run executes the sharded simulation to quiescence.
func (c *ShardedFM) Run() error { return c.Group.Run() }
