package myrinet

import (
	"fmt"

	"fm/internal/cost"
	"fm/internal/sim"
)

// Sink receives packets delivered to a node port. The LANai device
// implements it; Arrive is invoked (in event context) at the instant the
// packet tail has fully crossed the final link.
type Sink interface {
	Arrive(p *Packet)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(p *Packet)

// Arrive calls f(p).
func (f SinkFunc) Arrive(p *Packet) { f(p) }

// Switch is a Myrinet crossbar. Each output port is a serially-reusable
// resource: wormhole cut-through means a packet occupies an output for
// exactly its wire time, and two packets contending for the same output
// serialize (the blocked worm stalls in the network).
type Switch struct {
	name  string
	ports []*sim.Resource // one per output port
	k     *sim.Kernel
}

// newSwitch builds a crossbar with the given port count.
func newSwitch(k *sim.Kernel, name string, ports int) *Switch {
	s := &Switch{name: name, k: k}
	for i := 0; i < ports; i++ {
		s.ports = append(s.ports, sim.NewResource(k, fmt.Sprintf("%s.out%d", name, i)))
	}
	return s
}

// Ports returns the number of ports on the crossbar.
func (s *Switch) Ports() int { return len(s.ports) }

// OutputUtilization returns the utilization of output port i.
func (s *Switch) OutputUtilization(i int) float64 { return s.ports[i].Utilization() }

// hop is one step of a precomputed source route: the switch to cross
// (by index in topology declaration order) and the output port to leave
// through. Routes carry indices, not *Switch pointers, so a route
// resolved on one shard's fabric replica is valid on every other
// shard's (sharded runs build one Fabric per shard from the same
// topology). The fields are byte-packed — 8 bytes per hop instead of
// 16 — because cached BFS routes are the dominant per-pair state on
// large fabrics; Topology.Validate rejects geometries that overflow
// the packed widths (2^32 switches, 2^16 ports per switch).
type hop struct {
	sw   uint32
	port uint16
}

// Stats aggregates fabric-level traffic counters. Packet counts are
// attributed to the injecting (source-owning) shard; the Cross counters
// measure shard-boundary traffic in a sharded run and stay zero in a
// single-kernel one.
type Stats struct {
	Packets      uint64
	PayloadBytes uint64
	WireBytes    uint64
	ByType       [5]uint64

	// CrossPosted counts packet continuations this shard handed to
	// another shard; CrossResumed counts continuations received.
	CrossPosted  uint64
	CrossResumed uint64
}

// Fabric is the assembled network: node ports, switches, links, and the
// source router. Construct with NewFabric from an arbitrary Topology, or
// with the canned NewCrossbar / NewLine / NewClos builders.
type Fabric struct {
	k        *sim.Kernel
	p        *cost.Params
	topo     *Topology
	sinks    []Sink
	uplinks  []*sim.Resource // node i -> first switch
	router   *router
	switches []*Switch
	stats    Stats

	// pool is the fabric-wide packet free list. One simulation is one
	// goroutine, so no locking; recycled packets keep their payload/ack
	// buffer capacity, making the steady-state packet path allocation-free.
	// In a sharded run each shard's fabric replica has its own pool, and
	// a packet that crossed shards recycles into the pool of the shard
	// that delivered it.
	pool []*Packet

	// deliverFn is the shared delivery event callback (arg = *Packet),
	// allocated once so Inject schedules deliveries without a closure.
	deliverFn func(any)

	// faults is the installed fault timeline, nil on a healthy fabric —
	// every fault check in the packet path is guarded by that nil, so a
	// faultless run pays nothing. faultToggleFn is the shared toggle
	// event callback (arg = toggleArg), allocated once like deliverFn.
	faults        *faultState
	faultToggleFn func(any)

	// Sharded-run binding (nil/zero on a single-kernel fabric): this
	// replica simulates the switches part assigns to shard, and hands
	// packet continuations that reach another shard's switch to post,
	// which schedules them on the owning shard's replica.
	part  *Partition
	shard int
	post  func(owner int, at sim.Time, pkt *Packet)
}

// NewPacket returns a packet for injection into this fabric, recycled
// from the free list when possible. The caller owns it until the fabric
// delivers it to a sink; whoever consumes it hands it back with Release.
func (f *Fabric) NewPacket() *Packet {
	if n := len(f.pool); n > 0 {
		p := f.pool[n-1]
		f.pool[n-1] = nil
		f.pool = f.pool[:n-1]
		p.pooled = false
		return p
	}
	return &Packet{}
}

// Release returns a consumed packet (and its payload buffer) to the free
// list. The caller must hold the only live reference: a packet may not be
// released while queued, in flight, or before its handler has returned.
// Releasing twice panics, as it indicates an ownership bug.
func (f *Fabric) Release(p *Packet) {
	if p.pooled {
		panic(fmt.Sprintf("myrinet: double release of packet %v", p))
	}
	p.reset()
	p.pooled = true
	f.pool = append(f.pool, p)
}

// NewFabric compiles a Topology into a live fabric on the given kernel:
// it instantiates every switch's output-port resources, one uplink per
// node, and the full source-routing table (shortest path for every
// ordered node pair). The topology must be valid and fully connected;
// violations panic, since they are construction-time programming errors.
func NewFabric(k *sim.Kernel, p *cost.Params, t *Topology) *Fabric {
	if err := t.Validate(); err != nil {
		panic(err.Error())
	}
	if len(t.nodes) == 0 {
		panic("myrinet: topology has no nodes")
	}
	f := &Fabric{k: k, p: p, topo: t, sinks: make([]Sink, len(t.nodes))}
	for _, spec := range t.switches {
		f.switches = append(f.switches, newSwitch(k, spec.name, spec.ports))
	}
	for i := range t.nodes {
		f.uplinks = append(f.uplinks, sim.NewResource(k, fmt.Sprintf("node%d.up", i)))
	}
	f.router = t.newRouter()
	f.deliverFn = func(a any) {
		pkt := a.(*Packet)
		if fs := f.faults; fs != nil && (pkt.Corrupt || fs.nodeDownAt(pkt.Dst, f.k.Now())) {
			// The receiving interface detects the corruption (link-level
			// CRC) or is down: turn the frame around at the delivery
			// switch instead of delivering it.
			f.faultTurn(pkt, f.topo.nodes[pkt.Dst].sw, f.k.Now())
			return
		}
		if !pkt.Verify() {
			panic(fmt.Sprintf("myrinet: frame %v corrupted in flight (payload aliased?)", pkt))
		}
		f.sinks[pkt.Dst].Arrive(pkt)
	}
	f.faultToggleFn = f.faultToggle
	return f
}

// NewCrossbar builds the paper's measurement fabric: n nodes on a single
// crossbar switch ("All measurements were taken on an 8-port Myrinet
// switch", Section 4.1). n must not exceed ports.
func NewCrossbar(k *sim.Kernel, p *cost.Params, n, ports int) *Fabric {
	if n > ports {
		panic(fmt.Sprintf("myrinet: %d nodes exceed %d switch ports", n, ports))
	}
	t := NewTopology()
	sw := t.AddSwitch("sw0", ports)
	for i := 0; i < n; i++ {
		t.AttachNode(sw, i)
	}
	// A crossbar is the degenerate one-leaf Clos: every route is the
	// single delivery hop, so the formulaic fast path applies.
	t.form = &closForm{leaves: 1, spines: 0, npl: n}
	return NewFabric(k, p, t)
}

// NewLine builds a linear multi-switch fabric: nodesPerSwitch nodes hang
// off each of nSwitches crossbars, with neighboring crossbars connected
// by one link in each direction. It exercises multi-hop source routing
// and per-hop switch latency.
//
// Port convention per switch: 0..nodesPerSwitch-1 local nodes,
// nodesPerSwitch = toward lower switches, nodesPerSwitch+1 = toward
// higher switches.
func NewLine(k *sim.Kernel, p *cost.Params, nSwitches, nodesPerSwitch, ports int) *Fabric {
	if nodesPerSwitch+2 > ports {
		panic("myrinet: not enough ports for nodes plus trunk links")
	}
	t := NewTopology()
	for i := 0; i < nSwitches; i++ {
		t.AddSwitch(fmt.Sprintf("sw%d", i), ports)
	}
	left, right := nodesPerSwitch, nodesPerSwitch+1
	for s := 0; s < nSwitches; s++ {
		for j := 0; j < nodesPerSwitch; j++ {
			t.AttachNode(s, j)
		}
		if s > 0 {
			t.Link(s, left, s-1)
		}
		if s < nSwitches-1 {
			t.Link(s, right, s+1)
		}
	}
	return NewFabric(k, p, t)
}

// Nodes returns the number of node ports.
func (f *Fabric) Nodes() int { return len(f.sinks) }

// Kernel returns the kernel this fabric schedules on.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Hops returns the number of switch crossings between src and dst.
func (f *Fabric) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return len(f.router.route(src, dst))
}

// NumSwitches returns the number of switches in the fabric.
func (f *Fabric) NumSwitches() int { return len(f.switches) }

// SwitchAt returns switch i, in topology declaration order.
func (f *Fabric) SwitchAt(i int) *Switch { return f.switches[i] }

// Route returns the switches a packet from src to dst crosses, in order.
// The final entry is the destination's delivery switch.
func (f *Fabric) Route(src, dst int) []*Switch {
	if src == dst {
		return nil
	}
	route := f.router.route(src, dst)
	out := make([]*Switch, len(route))
	for i, h := range route {
		out[i] = f.switches[h.sw]
	}
	return out
}

// Topology returns the fabric's topology description. Sharded runs use
// it to compute the partition once and apply it to every replica (the
// builders are deterministic, so replicas of one spec share switch and
// node numbering).
func (f *Fabric) Topology() *Topology { return f.topo }

// Attach registers the sink that receives packets addressed to node id.
func (f *Fabric) Attach(id int, s Sink) { f.sinks[id] = s }

// HintRoutes pre-sizes the demand-filled route cache for an expected
// number of distinct (source switch, destination node) entries, so a
// workload that touches many pairs fills the cache without incremental
// map growth. A hint after entries exist is ignored; the cache works
// identically (just with rehashes) if no hint is ever given.
func (f *Fabric) HintRoutes(routes int) { f.router.hintRoutes(routes) }

// Stats returns a copy of the traffic counters.
func (f *Fabric) Stats() Stats { return f.stats }

// Inject sends p from its source node toward its destination, starting at
// the current instant (the caller has already charged DMA setup). It
// returns the time at which the source's outgoing channel is free again
// (tail has left the host interface); the packet is delivered to the
// destination sink by a scheduled event when its tail arrives.
//
// Timing follows Appendix A: the head incurs SwitchLatency per crossbar;
// each link carries the frame for WireBytes * 12.5 ns; contention at any
// switch output serializes FIFO.
func (f *Fabric) Inject(p *Packet) sim.Time {
	if p.Src == p.Dst || p.Src < 0 || p.Dst < 0 || p.Src >= len(f.sinks) || p.Dst >= len(f.sinks) {
		panic(fmt.Sprintf("myrinet: no route %d->%d", p.Src, p.Dst))
	}
	if p.pooled {
		panic(fmt.Sprintf("myrinet: inject of released packet %v", p))
	}
	var route []hop
	if f.faults != nil {
		route = f.router.routeFrom(f.topo.nodes[p.Src].sw, p.Dst)
	} else {
		route = f.router.route(p.Src, p.Dst)
	}
	if f.sinks[p.Dst] == nil && (f.part == nil || f.part.NodeShard[p.Dst] == f.shard) {
		panic(fmt.Sprintf("myrinet: node %d has no sink attached", p.Dst))
	}
	p.Seal()
	if p.Injected == 0 {
		p.Injected = f.k.Now()
	}
	wire := sim.Duration(p.WireBytes()) * f.p.LinkByte

	f.stats.Packets++
	f.stats.PayloadBytes += uint64(len(p.Payload))
	f.stats.WireBytes += uint64(p.WireBytes())
	if int(p.Type) < len(f.stats.ByType) {
		f.stats.ByType[p.Type]++
	}

	// Source uplink, then the switch hops.
	head, srcDone := f.uplinks[p.Src].Reserve(wire)
	if f.faults != nil && (route == nil || f.faults.nodeDownAt(p.Src, f.k.Now())) {
		// No healthy path exists right now (or the source interface is
		// itself inside a churn window): the interface turns the frame
		// straight around, as if the fabric bounced it at the first hop.
		// Charging a round trip through the delivery switch keeps the
		// immediate-reject timing in the same regime as a real bounce.
		f.faults.stats.Unroutable++
		f.flipBounce(p)
		f.k.AtArg(head.Add(wire).Add(2*f.p.SwitchLatency), f.deliverFn, p)
		return srcDone
	}
	f.forward(p, route, 0, head.Add(f.p.SwitchLatency), wire)
	return srcDone
}

// forward advances the packet head across route[i:], the head becoming
// eligible at hop i's output port at `eligible` (one SwitchLatency
// after it entered that crossbar); FIFO contention at any output may
// delay it further. On a sharded fabric, a hop whose switch belongs to
// another shard ends the local walk: the continuation is posted to the
// owning shard's replica at the eligible instant, which is at least one
// SwitchLatency — the lookahead window — in the future. The final local
// hop schedules tail delivery.
func (f *Fabric) forward(p *Packet, route []hop, i int, eligible sim.Time, wire sim.Duration) {
	var head sim.Time
	for {
		h := route[i]
		if f.part != nil && f.part.SwitchShard[h.sw] != f.shard {
			p.xsw = int(h.sw)
			f.stats.CrossPosted++
			f.post(f.part.SwitchShard[h.sw], eligible, p)
			return
		}
		if fs := f.faults; fs != nil {
			// Fault checks are evaluated at the head-arrival instant of
			// each hop: forward schedules the whole walk at inject time,
			// so a component that dies while the worm is mid-flight must
			// be caught by the timeline, not by current state.
			if fs.switchDownAt(int(h.sw), eligible) {
				f.faultTurn(p, int(h.sw), eligible)
				return
			}
			if li := fs.portLink[h.sw][h.port]; li >= 0 {
				next := f.topo.links[li].to
				if fs.linkDownAt(li, eligible) || fs.switchDownAt(next, eligible) {
					f.faultTurn(p, int(h.sw), eligible)
					return
				}
				if !p.Bounced {
					// Loss and corruption bursts hit data traffic only;
					// bounces are control frames the model keeps clean so
					// a fault can never silently strand a packet.
					if fs.lossAt(li, eligible) {
						fs.stats.Lost++
						f.faultTurn(p, int(h.sw), eligible)
						return
					}
					if fs.corruptAt(li, eligible) && !p.Corrupt {
						p.Corrupt = true
						fs.stats.Corrupted++
					}
				}
			}
		}
		head, _ = f.switches[h.sw].ports[h.port].ReserveAt(eligible, wire)
		i++
		if i == len(route) {
			break
		}
		eligible = head.Add(f.p.SwitchLatency)
	}
	tail := head.Add(wire)
	if f.k.Tracing() {
		f.k.Tracef("net", "inject %v tail@%v", p, tail)
	}
	f.k.AtArg(tail, f.deliverFn, p)
}

// ResumeCross continues a packet whose head reached a shard boundary:
// the owning shard resolves a route from the boundary switch and walks
// on. Candidate selection is memoryless (it depends only on the current
// switch, the destination, and the distance map), so on a healthy
// fabric the resolved route is exactly the suffix of the source route —
// byte-identical to resuming the original. Under faults the fresh
// resolution is what reroutes a mid-flight packet around a component
// that died after injection. The signature matches the kernel's
// argument-event form so the shard exchange can schedule it directly.
func (f *Fabric) ResumeCross(a any) {
	p := a.(*Packet)
	f.stats.CrossResumed++
	route := f.router.routeFrom(p.xsw, p.Dst)
	wire := sim.Duration(p.WireBytes()) * f.p.LinkByte
	if route == nil {
		f.faultTurn(p, p.xsw, f.k.Now())
		return
	}
	f.forward(p, route, 0, f.k.Now(), wire)
}

// flipBounce turns a frame around in place: it becomes a Reject aimed
// back at its own sender, remembering the original kind so the sender's
// endpoint can restore it for retransmission. Any corruption picked up
// on the way out is cleared — the bounce is a fresh control frame — and
// the frame is re-sealed over the swapped header.
func (f *Fabric) flipBounce(p *Packet) {
	p.Bounced = true
	p.OrigType = p.Type
	p.Type = Reject
	p.Src, p.Dst = p.Dst, p.Src
	p.Corrupt = false
	p.Seal()
}

// faultTurn handles a packet whose head hit a failed component at
// switch sw: the fabric bounces it back to its sender as a Reject. A
// frame that is already a bounce is never bounced again (its "sender"
// is the original destination, which may itself be unreachable);
// instead it is stranded and retried at every recovery toggle, so a
// plan whose fault windows all close guarantees eventual delivery.
func (f *Fabric) faultTurn(p *Packet, sw int, at sim.Time) {
	fs := f.faults
	if p.Bounced {
		fs.stats.Stranded++
		fs.stranded = append(fs.stranded, strandedPkt{pkt: p, sw: sw})
		return
	}
	fs.stats.Bounced++
	f.flipBounce(p)
	route := f.router.routeFrom(sw, p.Dst)
	if route == nil {
		fs.stats.Stranded++
		fs.stranded = append(fs.stranded, strandedPkt{pkt: p, sw: sw})
		return
	}
	wire := sim.Duration(p.WireBytes()) * f.p.LinkByte
	f.forward(p, route, 0, at.Add(f.p.SwitchLatency), wire)
}

// FaultStats returns a copy of the fault counters (zero value when no
// fault plan is installed). In a sharded run each replica counts the
// events it owns; callers merge replica stats with FaultStats.Merge.
func (f *Fabric) FaultStats() FaultStats {
	if f.faults == nil {
		return FaultStats{}
	}
	return f.faults.stats
}

// PendingStranded returns the number of bounced frames still parked at
// a failed component waiting for a recovery toggle. A run that drains
// to zero with PendingStranded > 0 lost traffic to a fault window that
// never closed; resilience tests assert it is zero.
func (f *Fabric) PendingStranded() int {
	if f.faults == nil {
		return 0
	}
	return len(f.faults.stranded)
}

// SetShard binds this fabric replica to one shard of a partitioned
// topology: it simulates only the switches part assigns to shard, and
// hands continuations that reach another shard's switch to post. Every
// replica of the topology must be bound before traffic flows, and
// injections must happen on the shard owning the packet's source node.
func (f *Fabric) SetShard(part *Partition, shard int, post func(owner int, at sim.Time, pkt *Packet)) {
	if part.Shards <= shard || shard < 0 {
		panic(fmt.Sprintf("myrinet: shard %d out of range for %d-shard partition", shard, part.Shards))
	}
	if len(part.NodeShard) != len(f.sinks) || len(part.SwitchShard) != len(f.switches) {
		panic("myrinet: partition does not match this fabric's topology")
	}
	f.part, f.shard, f.post = part, shard, post
}

// MinLatency returns the no-contention tail-delivery latency from src to
// dst for a frame of wireBytes, per the Appendix A model: with wormhole
// cut-through and equal link rates, the per-link wire times of a
// multi-hop path overlap perfectly, so the pipeline collapses to a
// single wire time plus SwitchLatency for each switch crossed —
// delivery = wireBytes*LinkByte + Hops(src,dst)*SwitchLatency after
// injection. Contention at any switch output can only add to this.
func (f *Fabric) MinLatency(src, dst, wireBytes int) sim.Duration {
	hops := f.Hops(src, dst)
	return sim.Duration(wireBytes)*f.p.LinkByte + sim.Duration(hops)*f.p.SwitchLatency
}
