package bench

import (
	"bytes"
	"strings"
	"testing"

	"fm/internal/workload"
)

func TestShardSupport(t *testing.T) {
	opt := DefaultOptions()

	// scale: one shard per leaf group, bounded by the smallest sweep
	// point — clos-64 on the default node list.
	_, g64 := workload.Geometry(64)
	if n, detail := ShardSupport("scale", opt); n != g64 || !strings.Contains(detail, "clos-64") {
		t.Fatalf("ShardSupport(scale) = %d %q, want %d naming clos-64", n, detail, g64)
	}
	// A trimmed node list moves the bound with it.
	opt.ScaleNodes = []int{16, 1024}
	_, g16 := workload.Geometry(16)
	if n, detail := ShardSupport("scale", opt); n != g16 || !strings.Contains(detail, "clos-16") {
		t.Fatalf("ShardSupport(scale, 16..1024) = %d %q, want %d naming clos-16", n, detail, g16)
	}

	// faults: one Clos at FaultNodes, one shard per leaf group.
	opt = DefaultOptions()
	_, g32 := workload.Geometry(32)
	if n, detail := ShardSupport("faults", opt); n != g32 || !strings.Contains(detail, "clos-32") {
		t.Fatalf("ShardSupport(faults) = %d %q, want %d naming clos-32", n, detail, g32)
	}
	opt.FaultNodes = 64
	if n, _ := ShardSupport("faults", opt); n != g64 {
		t.Fatalf("ShardSupport(faults, 64 nodes) = %d, want %d", n, g64)
	}

	// soak: accepts up to the leaf-group count of its Clos even though
	// the timeline itself always runs on the canonical single kernel.
	opt = DefaultOptions()
	_, g64soak := workload.Geometry(64)
	if n, detail := ShardSupport("soak", opt); n != g64soak || !strings.Contains(detail, "single-kernel") {
		t.Fatalf("ShardSupport(soak) = %d %q, want %d citing the single-kernel engine", n, detail, g64soak)
	}

	// Everything else is single-kernel only, with a reason to print.
	for _, id := range []string{"fig3", "fig8", "table4", "headline", "ablations", "fabrics", "patterns", "mpi"} {
		if n, detail := ShardSupport(id, opt); n != 1 || detail == "" {
			t.Fatalf("ShardSupport(%s) = %d %q, want 1 with a reason", id, n, detail)
		}
	}
}

// TestScaleSharded pins the sharded scale experiment's invariants: the
// report is identical at any worker count and across repeated runs, it
// says it ran sharded, and -timing's per-shard breakdown appears only
// when asked for.
func TestScaleSharded(t *testing.T) {
	opt := DefaultOptions()
	opt.ScaleNodes = []int{16, 32}
	opt.Shards = 2
	render := func(workers int) string {
		opt.Workers = workers
		var buf bytes.Buffer
		Scale(opt).WriteText(&buf)
		return buf.String()
	}
	serial := render(1)
	if parallel := render(6); parallel != serial {
		t.Fatalf("sharded scale output depends on worker count:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if again := render(1); again != serial {
		t.Fatal("sharded scale output not reproducible across runs")
	}
	if !strings.Contains(serial, "sharded run: every simulation split across 2 shard kernels") {
		t.Fatalf("sharded report missing the shard note:\n%s", serial)
	}
	if strings.Contains(serial, "shard timing") {
		t.Fatalf("per-shard timing printed without ShardTiming:\n%s", serial)
	}

	opt.ShardTiming = true
	timed := render(1)
	if !strings.Contains(timed, "shard timing N=16 FM all-to-all:") ||
		!strings.Contains(timed, "shard timing N=32 FM all-to-all:") {
		t.Fatalf("ShardTiming report missing per-shard breakdown:\n%s", timed)
	}
}
