package myrinet

import (
	"fmt"
	"sort"

	"fm/internal/sim"
)

// Fault injection. A fault plan is a static set of component outage
// windows installed on the fabric before traffic flows: links, switches,
// and node interfaces go down and recover at fixed virtual instants, and
// links can run loss or corruption bursts. Because the timeline is data
// (not mutable state flipped by events), a forwarding decision can ask
// "will this link be down when the packet head crosses it?" for a future
// instant — which is how packets already in flight when a component dies
// are caught at the dead hop instead of sailing through.
//
// Invariants the model maintains (DESIGN.md "Fault model"):
//
//   - No frame is ever silently lost. A frame that cannot cross a hop
//     (dead link/switch, loss burst) or cannot be delivered (down node,
//     corruption detected at the interface) is flipped into a Reject
//     aimed back at its sender and routed there through the fabric; the
//     sender's endpoint parks it and retransmits (core.Endpoint). A
//     bounce that itself cannot be routed is stranded on the detecting
//     replica and re-attempted at every recovery toggle, so a plan whose
//     every window closes always quiesces with zero undelivered frames.
//   - Bounced frames are control traffic: they are exempt from loss and
//     corruption bursts and are never bounced again — an undeliverable
//     bounce strands instead, which is what bounds the bounce depth.
//   - Route resolution adapts to the state *now*: the route caches are
//     invalidated at every link/switch toggle and the next resolution
//     runs BFS over the currently-healthy subgraph only (topology.go
//     routeFrom). On every shard replica the toggles fire at the same
//     virtual instants on the replica's own kernel, so replicas never
//     disagree about a route and cross-shard merges stay deterministic.
type faultState struct {
	link    [][]window // per link index: down windows, sorted
	swtch   [][]window // per switch index
	node    [][]window // per node id
	loss    [][]window // per link index: loss-burst windows
	corrupt [][]window // per link index: corruption-burst windows

	// portLink maps (switch, output port) to the link index leaving
	// through it, -1 for node-delivery and unused ports.
	portLink [][]int

	// stranded holds bounced frames this replica could not route back
	// to their senders (the sender's side of the fabric was down too);
	// every recovery toggle retries them in arrival order.
	stranded []strandedPkt

	// routeStarts/routeEnds are the sorted boundary instants of every
	// link and switch window (the classes that change the routable
	// graph). routingQuiet counts boundaries at the mapper's lagged
	// view with two binary searches, so the formulaic fast path can ask
	// "is any routing-relevant window active?" in O(log windows)
	// without touching per-component state.
	routeStarts []sim.Time
	routeEnds   []sim.Time

	// k is the owning replica's kernel: the router consults it for the
	// current instant when filtering down components.
	k *sim.Kernel

	stats FaultStats
}

// DetectLag is how long the routing side of the fabric takes to notice
// a link or switch state change: route resolution avoids a component
// only from Start+DetectLag, and trusts it again only from
// End+DetectLag. Myrinet's source routes are computed from a mapper's
// view of the fabric, and that view always trails reality — with an
// instantaneous react the model would reroute every injection around a
// fault the moment it lands, and the retransmit machinery the fault
// plan exists to exercise would never fire. The wire-level truth
// (per-hop checks, delivery checks) uses the unlagged timeline: a
// frame on a dead hop dies at the instant the hop is dead, whether or
// not routing has noticed.
const DetectLag = 25 * sim.Microsecond

// window is one outage interval [start, end) in virtual time.
type window struct{ start, end sim.Time }

type strandedPkt struct {
	pkt *Packet
	sw  int // the switch the frame is parked at
}

// FaultKind selects which component class a FaultWindow targets.
type FaultKind uint8

const (
	// LinkFault takes one directed inter-switch link down.
	LinkFault FaultKind = iota
	// SwitchFault takes a whole switch down (all its ports).
	SwitchFault
	// NodeFault takes a node's network interface down: frames addressed
	// to it bounce at the delivery switch, and its own injections bounce
	// at the source — the node's host keeps running (a NIC outage, not a
	// host crash).
	NodeFault
	// LossBurst drops (bounces) every non-control frame crossing the
	// link during the window.
	LossBurst
	// CorruptBurst marks every non-control frame crossing the link
	// during the window as corrupt; the delivering interface detects it
	// and bounces the frame from the destination switch.
	CorruptBurst
)

// String returns the fault kind mnemonic (the fault-plan text format's
// keywords).
func (k FaultKind) String() string {
	switch k {
	case LinkFault:
		return "link"
	case SwitchFault:
		return "switch"
	case NodeFault:
		return "node"
	case LossBurst:
		return "loss"
	case CorruptBurst:
		return "corrupt"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// FaultWindow is one outage: component Index of class Kind is down (or
// bursting) from Start to End in virtual time, End exclusive.
type FaultWindow struct {
	Kind       FaultKind
	Index      int
	Start, End sim.Time
}

// FaultStats counts fabric-level fault activity on this replica. In a
// sharded run, sum the replicas' stats: each event is counted on exactly
// one replica (bounces and strands where detected, toggles on the shard
// owning the component).
type FaultStats struct {
	LinkDowns   uint64 // link outage windows begun
	SwitchDowns uint64 // switch outage windows begun
	NodeDowns   uint64 // node-interface outage windows begun
	Recoveries  uint64 // outage windows ended (all classes)

	Bounced    uint64 // frames turned around at a dead hop or down node
	Lost       uint64 // of Bounced: frames caught by a loss burst
	Corrupted  uint64 // frames marked corrupt by a burst
	Unroutable uint64 // injections bounced at the source (no healthy path)
	Stranded   uint64 // bounces parked for a recovery toggle to release
}

// merge folds o into s (for summing per-shard replicas' counters).
func (s *FaultStats) Merge(o FaultStats) {
	s.LinkDowns += o.LinkDowns
	s.SwitchDowns += o.SwitchDowns
	s.NodeDowns += o.NodeDowns
	s.Recoveries += o.Recoveries
	s.Bounced += o.Bounced
	s.Lost += o.Lost
	s.Corrupted += o.Corrupted
	s.Unroutable += o.Unroutable
	s.Stranded += o.Stranded
}

// Total returns the number of outage/burst windows that began.
func (s FaultStats) Downs() uint64 {
	return s.LinkDowns + s.SwitchDowns + s.NodeDowns
}

// NumLinks returns the number of directed inter-switch links.
func (t *Topology) NumLinks() int { return len(t.links) }

// LinkEnds returns the switch indices link i joins (from -> to).
func (t *Topology) LinkEnds(i int) (from, to int) {
	l := t.links[i]
	return l.from, l.to
}

// HostsNodes reports whether switch sw has nodes attached (a leaf).
func (t *Topology) HostsNodes(sw int) bool { return t.hostsNodes(sw) }

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumNodes returns the number of attached nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// ApplyFaults installs a fault timeline on this fabric. Call once,
// before traffic flows; the windows may arrive in any order. Invalid
// component indices or empty windows (End <= Start) panic — fmbench and
// the workload layer validate plans before building fabrics, so an
// invalid window here is a programming error. In a sharded run every
// replica applies the identical timeline: the per-hop checks and cache
// invalidations then agree across shards by construction.
func (f *Fabric) ApplyFaults(ws []FaultWindow) {
	if len(ws) == 0 {
		return
	}
	if f.faults != nil {
		panic("myrinet: ApplyFaults called twice")
	}
	t := f.topo
	fs := &faultState{
		k:       f.k,
		link:    make([][]window, len(t.links)),
		swtch:   make([][]window, len(t.switches)),
		node:    make([][]window, len(t.nodes)),
		loss:    make([][]window, len(t.links)),
		corrupt: make([][]window, len(t.links)),
	}
	fs.portLink = make([][]int, len(t.switches))
	for sw, spec := range t.switches {
		fs.portLink[sw] = make([]int, spec.ports)
		for p := range fs.portLink[sw] {
			fs.portLink[sw][p] = -1
		}
	}
	for i, l := range t.links {
		fs.portLink[l.from][l.port] = i
	}

	for _, w := range ws {
		if w.End <= w.Start {
			panic(fmt.Sprintf("myrinet: fault window %s %d [%v,%v) is empty", w.Kind, w.Index, w.Start, w.End))
		}
		var per [][]window
		switch w.Kind {
		case LinkFault:
			per = fs.link
		case SwitchFault:
			per = fs.swtch
		case NodeFault:
			per = fs.node
		case LossBurst:
			per = fs.loss
		case CorruptBurst:
			per = fs.corrupt
		default:
			panic(fmt.Sprintf("myrinet: unknown fault kind %d", w.Kind))
		}
		if w.Index < 0 || w.Index >= len(per) {
			panic(fmt.Sprintf("myrinet: fault window %s %d out of range (%d components)", w.Kind, w.Index, len(per)))
		}
		per[w.Index] = append(per[w.Index], window{start: w.Start, end: w.End})
	}
	for _, per := range [][][]window{fs.link, fs.swtch, fs.node, fs.loss, fs.corrupt} {
		for _, wins := range per {
			sort.Slice(wins, func(i, j int) bool { return wins[i].start < wins[j].start })
		}
	}
	for _, per := range [][][]window{fs.link, fs.swtch} {
		for _, wins := range per {
			for _, w := range wins {
				fs.routeStarts = append(fs.routeStarts, w.start)
				fs.routeEnds = append(fs.routeEnds, w.end)
			}
		}
	}
	sort.Slice(fs.routeStarts, func(i, j int) bool { return fs.routeStarts[i] < fs.routeStarts[j] })
	sort.Slice(fs.routeEnds, func(i, j int) bool { return fs.routeEnds[i] < fs.routeEnds[j] })
	f.faults = fs
	f.router.fs = fs

	// Schedule the toggle events. Link and switch toggles change the
	// routable graph at detection time (DetectLag after the wire-level
	// transition), so each fires then and flushes the route caches;
	// every recovery toggle additionally retries stranded bounces.
	// Toggle bookkeeping is counted once globally: on the shard owning
	// the component (every shard on a single-kernel fabric).
	for li, wins := range fs.link {
		mine := f.ownsSwitch(f.topo.links[li].from)
		for _, w := range wins {
			f.k.AtArg(w.start.Add(DetectLag), f.faultToggleFn, toggleArg{routing: true, count: mine, kind: LinkFault})
			f.k.AtArg(w.end.Add(DetectLag), f.faultToggleFn, toggleArg{routing: true, recover: true, count: mine})
		}
	}
	for sw, wins := range fs.swtch {
		mine := f.ownsSwitch(sw)
		for _, w := range wins {
			f.k.AtArg(w.start.Add(DetectLag), f.faultToggleFn, toggleArg{routing: true, count: mine, kind: SwitchFault})
			f.k.AtArg(w.end.Add(DetectLag), f.faultToggleFn, toggleArg{routing: true, recover: true, count: mine})
		}
	}
	for id, wins := range fs.node {
		mine := f.part == nil || f.part.NodeShard[id] == f.shard
		for _, w := range wins {
			f.k.AtArg(w.start, f.faultToggleFn, toggleArg{count: mine, kind: NodeFault})
			f.k.AtArg(w.end, f.faultToggleFn, toggleArg{recover: true, count: mine})
		}
	}
}

// ownsSwitch reports whether this replica owns switch sw (always true
// single-kernel).
func (f *Fabric) ownsSwitch(sw int) bool {
	return f.part == nil || f.part.SwitchShard[sw] == f.shard
}

// toggleArg describes one fault toggle event.
type toggleArg struct {
	routing bool // the toggle changes the routable graph
	recover bool // window end (vs. start)
	count   bool // this replica does the stats bookkeeping
	kind    FaultKind
}

// faultToggle runs at each window boundary: flush the route caches when
// the routable graph changed, count the transition once globally, and on
// recovery retry every stranded bounce (the path home may exist now).
func (f *Fabric) faultToggle(a any) {
	arg := a.(toggleArg)
	fs := f.faults
	if arg.routing {
		f.router.invalidate()
	}
	if arg.count {
		if arg.recover {
			fs.stats.Recoveries++
		} else {
			switch arg.kind {
			case LinkFault:
				fs.stats.LinkDowns++
			case SwitchFault:
				fs.stats.SwitchDowns++
			case NodeFault:
				fs.stats.NodeDowns++
			}
		}
	}
	if arg.recover && len(fs.stranded) > 0 {
		f.retryStranded()
	}
}

// retryStranded re-attempts every parked bounce in arrival order.
// Frames that still cannot route stay stranded for the next recovery.
func (f *Fabric) retryStranded() {
	fs := f.faults
	parked := fs.stranded
	fs.stranded = fs.stranded[:0]
	for _, s := range parked {
		rt := f.router.routeFrom(s.sw, s.pkt.Dst)
		if rt == nil {
			fs.stranded = append(fs.stranded, s)
			continue
		}
		wire := sim.Duration(s.pkt.WireBytes()) * f.p.LinkByte
		f.forward(s.pkt, rt, 0, f.k.Now().Add(f.p.SwitchLatency), wire)
	}
}

// at reports whether instant t falls inside any window of the sorted
// list. Lists are tiny (a handful of outages per component), so a
// linear scan beats a binary search's constant.
func at(wins []window, t sim.Time) bool {
	for _, w := range wins {
		if t >= w.end {
			continue
		}
		return t >= w.start
	}
	return false
}

func (fs *faultState) linkDownAt(li int, t sim.Time) bool   { return at(fs.link[li], t) }
func (fs *faultState) switchDownAt(sw int, t sim.Time) bool { return at(fs.swtch[sw], t) }
func (fs *faultState) nodeDownAt(id int, t sim.Time) bool   { return at(fs.node[id], t) }
func (fs *faultState) lossAt(li int, t sim.Time) bool       { return at(fs.loss[li], t) }
func (fs *faultState) corruptAt(li int, t sim.Time) bool    { return at(fs.corrupt[li], t) }

// linkDownNow / switchDownNow are the router's view: the wire state as
// of DetectLag ago, so resolution keeps steering into a fresh fault
// (and away from a fresh recovery) until the mapper's view catches up.
// Caches are flushed at the detection toggles, so a cached route never
// outlives the view it was computed from.
func (fs *faultState) linkDownNow(li int) bool {
	return at(fs.link[li], fs.k.Now().Add(-DetectLag))
}
func (fs *faultState) switchDownNow(sw int) bool {
	return at(fs.swtch[sw], fs.k.Now().Add(-DetectLag))
}

// routingQuiet reports whether, at the mapper's lagged view (DetectLag
// ago), no link or switch window is active — the condition under which
// the formulaic fast path is provably identical to BFS. A window
// counts as active over the closed interval [start, end]: including
// the end instant keeps the boundary on the BFS side at the recovery
// toggle, so route resolutions racing the same-instant cache flush see
// exactly the PR 7 cache semantics. Quietness is a pure function of
// Now() and flips only at the toggle instants, so the fast-path/BFS
// choice can never disagree within an inter-toggle interval.
func (fs *faultState) routingQuiet() bool {
	v := fs.k.Now().Add(-DetectLag)
	begun := sort.Search(len(fs.routeStarts), func(i int) bool { return fs.routeStarts[i] > v })
	over := sort.Search(len(fs.routeEnds), func(i int) bool { return fs.routeEnds[i] >= v })
	return begun == over
}
