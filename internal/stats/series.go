package stats

import (
	"fmt"

	"fm/internal/sim"
)

// Series is the streaming/windowed extension of the toolkit: it cuts
// virtual time into fixed-width windows and accumulates, per window, the
// open-loop load measurements a soak run reports — offered arrivals,
// completed deliveries with their payload bytes, retransmissions, and
// the full sojourn-latency distribution of the deliveries. Everything
// it stores is an integer count or an integer-bucketed histogram, so a
// Series built from a deterministic simulation is byte-reproducible,
// and merging per-shard (or per-rank) Series window-wise is exact: the
// merge of the parts equals the Series of the whole stream, in any
// grouping and order (see TestSeriesMergePartition).
//
// Window membership is half-open: an event at instant t belongs to
// window floor(t / width), so window w covers [w*width, (w+1)*width).
// The series grows on demand — recording past the current end extends
// it with empty windows, which stay in the timeline (a stall shows as a
// zero-throughput window, not a gap).
type Series struct {
	width sim.Duration
	wins  []Window
}

// Window is one fixed-width virtual-time window's accumulators. The
// in-flight count is not stored — it is the running difference of
// offered and delivered, derived by Series.InFlight — so window-wise
// merging stays exact.
type Window struct {
	// Offered counts the arrivals the open-loop schedule placed in this
	// window (work handed to the system, whether or not it was sent yet).
	Offered uint64
	// Delivered counts the messages whose delivery completed in this
	// window, and Bytes their payload bytes.
	Delivered uint64
	Bytes     uint64
	// Retrans counts the retransmissions attributed to this window.
	Retrans uint64
	// Lat is the sojourn-latency distribution (arrival to delivery) of
	// this window's deliveries. Empty windows report zero percentiles
	// (see Histogram.Percentile's empty contract).
	Lat Histogram
}

// NewSeries returns an empty series with the given window width.
func NewSeries(width sim.Duration) *Series {
	if width <= 0 {
		panic(fmt.Sprintf("stats: series window width %v must be positive", width))
	}
	return &Series{width: width}
}

// Width returns the window width.
func (s *Series) Width() sim.Duration { return s.width }

// Len returns the number of windows the series currently spans.
func (s *Series) Len() int { return len(s.wins) }

// Window returns window i for reading. It panics outside [0, Len).
func (s *Series) Window(i int) *Window { return &s.wins[i] }

// Start returns the opening instant of window i.
func (s *Series) Start(i int) sim.Time { return sim.Time(s.width) * sim.Time(i) }

// at maps an instant to its window, extending the series as needed.
// Negative instants are a programming error.
func (s *Series) at(t sim.Time) *Window {
	if t < 0 {
		panic(fmt.Sprintf("stats: series sample at negative instant %v", t))
	}
	i := int(t / sim.Time(s.width))
	for len(s.wins) <= i {
		s.wins = append(s.wins, Window{})
	}
	return &s.wins[i]
}

// Arrival records one offered arrival at instant t.
func (s *Series) Arrival(t sim.Time) { s.at(t).Offered++ }

// Delivery records one completed delivery at instant t with the given
// sojourn latency (arrival to delivery) and payload size.
func (s *Series) Delivery(t sim.Time, sojourn sim.Duration, bytes int) {
	w := s.at(t)
	w.Delivered++
	w.Bytes += uint64(bytes)
	w.Lat.Record(sojourn)
}

// Retransmits attributes n retransmissions to instant t's window.
func (s *Series) Retransmits(t sim.Time, n uint64) {
	if n == 0 {
		return
	}
	s.at(t).Retrans += n
}

// InFlight returns the number of messages in the system at the close of
// window i: cumulative arrivals minus cumulative deliveries through the
// end of that window. Under open-loop overload this is the backlog
// curve — it grows for as long as offered load exceeds service rate.
func (s *Series) InFlight(i int) int64 {
	var v int64
	for j := 0; j <= i && j < len(s.wins); j++ {
		v += int64(s.wins[j].Offered) - int64(s.wins[j].Delivered)
	}
	return v
}

// Extend grows the series to at least n windows, appending empty ones,
// so a fixed observation span includes its idle tail as explicit
// zero-throughput windows.
func (s *Series) Extend(n int) {
	for len(s.wins) < n {
		s.wins = append(s.wins, Window{})
	}
}

// Merge folds other into s window-wise. Both series must share one
// window width; s extends to cover other's span. Merging is exact:
// counts add, histograms merge bucket-wise, and InFlight of the merge
// equals the sum of the parts' running differences — so per-shard or
// per-rank series merged in any grouping reproduce the whole stream's
// series byte for byte.
func (s *Series) Merge(other *Series) {
	if other.width != s.width {
		panic(fmt.Sprintf("stats: merging series of width %v into width %v", other.width, s.width))
	}
	for len(s.wins) < len(other.wins) {
		s.wins = append(s.wins, Window{})
	}
	for i := range other.wins {
		o := &other.wins[i]
		w := &s.wins[i]
		w.Offered += o.Offered
		w.Delivered += o.Delivered
		w.Bytes += o.Bytes
		w.Retrans += o.Retrans
		w.Lat.Merge(&o.Lat)
	}
}

// Totals returns the series-wide offered/delivered/bytes/retransmit
// sums — the closed-loop summary a windowed run still wants to print.
func (s *Series) Totals() (offered, delivered, bytes, retrans uint64) {
	for i := range s.wins {
		w := &s.wins[i]
		offered += w.Offered
		delivered += w.Delivered
		bytes += w.Bytes
		retrans += w.Retrans
	}
	return offered, delivered, bytes, retrans
}
