package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// --- Step/Finish refactor ---

// stepWorld builds an identical small simulation on any kernel: two
// sleeping processes and a chain of plain events.
func stepWorld(k *Kernel, log *[]string) {
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Sleep(Duration(100*(i+1)) * Nanosecond)
				*log = append(*log, fmt.Sprintf("p%d@%v", i, p.Now()))
			}
		})
	}
	var tick func()
	n := 0
	tick = func() {
		*log = append(*log, fmt.Sprintf("tick@%v", k.Now()))
		if n++; n < 8 {
			k.After(70*Nanosecond, tick)
		}
	}
	k.After(30*Nanosecond, tick)
}

// TestStepFinishMatchesRun pins the Run refactor: a sequence of Steps
// followed by Finish executes exactly the same events in the same order
// as one RunAll.
func TestStepFinishMatchesRun(t *testing.T) {
	var ref []string
	kr := NewKernel()
	stepWorld(kr, &ref)
	if err := kr.RunAll(); err != nil {
		t.Fatal(err)
	}

	var got []string
	ks := NewKernel()
	stepWorld(ks, &got)
	for h := Time(50 * Nanosecond); ; h += Time(50 * Nanosecond) {
		if err := ks.Step(h); err != nil {
			t.Fatal(err)
		}
		if _, ok := ks.NextEventAt(); !ok {
			break
		}
	}
	if err := ks.Finish(); err != nil {
		t.Fatal(err)
	}

	if strings.Join(got, ",") != strings.Join(ref, ",") {
		t.Fatalf("windowed run diverged:\n got %v\nwant %v", got, ref)
	}
	if ks.EventsRun() != kr.EventsRun() {
		t.Fatalf("events run: windowed %d, reference %d", ks.EventsRun(), kr.EventsRun())
	}
	if ks.Now() != kr.Now() {
		t.Fatalf("final time: windowed %v, reference %v", ks.Now(), kr.Now())
	}
}

// --- Shard merge property ---

// specEvent is one node of a pre-generated random event DAG: where and
// when it fires and which children it schedules when it does.
type specEvent struct {
	shard int
	at    Time
	kids  []int
}

// specRun executes a spec DAG on a shard group (or, with group == nil,
// entirely on the single kernel k) and appends (label, time) trace
// records as events fire.
type specRun struct {
	specs []specEvent
	group *ShardGroup
	k     *Kernel
	trace [][]rec // per shard (index 0 only for single kernel)
}

type rec struct {
	label int
	at    Time
}

func (r *specRun) fire(a any) {
	idx := a.(int)
	sp := &r.specs[idx]
	if r.group == nil {
		r.trace[0] = append(r.trace[0], rec{label: idx, at: r.k.Now()})
		for _, kid := range sp.kids {
			r.k.AtArg(r.specs[kid].at, r.fire, kid)
		}
		return
	}
	s := r.group.Shard(sp.shard)
	r.trace[sp.shard] = append(r.trace[sp.shard], rec{label: idx, at: s.Kernel().Now()})
	for _, kid := range sp.kids {
		r.group.Shard(sp.shard).Post(r.specs[kid].shard, r.specs[kid].at, r.fire, kid)
	}
}

// genSpecs builds a random event DAG over `shards` shards. Cross-shard
// children respect the lookahead window; uniqueTimes forces globally
// distinct timestamps (so the total event order is the time order and
// sharded vs single-kernel traces can be compared exactly).
func genSpecs(rng *rand.Rand, shards int, window Duration, uniqueTimes bool) []specEvent {
	used := map[Time]bool{}
	pick := func(lo Time, span int64) Time {
		for {
			at := lo + Time(rng.Int63n(span))
			if !uniqueTimes || !used[at] {
				used[at] = true
				return at
			}
		}
	}
	var specs []specEvent
	roots := 4 + rng.Intn(5)
	for i := 0; i < roots; i++ {
		specs = append(specs, specEvent{shard: rng.Intn(shards), at: pick(0, int64(window))})
	}
	// Expand breadth-first, bounding the population.
	for i := 0; i < len(specs) && len(specs) < 400; i++ {
		kids := rng.Intn(3)
		for j := 0; j < kids && len(specs) < 400; j++ {
			ks := rng.Intn(shards)
			var at Time
			if ks == specs[i].shard {
				// Same shard: anywhere at or after the parent.
				at = pick(specs[i].at, int64(window))
			} else {
				// Cross shard: at least one window out.
				at = pick(specs[i].at.Add(window), 2*int64(window))
			}
			specs[i].kids = append(specs[i].kids, len(specs))
			specs = append(specs, specEvent{shard: ks, at: at})
		}
	}
	return specs
}

// roots returns the spec indices no other event schedules.
func roots(specs []specEvent) []int {
	isKid := make([]bool, len(specs))
	for i := range specs {
		for _, kid := range specs[i].kids {
			isKid[kid] = true
		}
	}
	var out []int
	for i := range specs {
		if !isKid[i] {
			out = append(out, i)
		}
	}
	return out
}

// runSharded executes the specs on a fresh shard group and returns the
// per-shard traces.
func runSharded(t *testing.T, specs []specEvent, shards int, window Duration) [][]rec {
	t.Helper()
	g := NewShardGroup(shards, window)
	r := &specRun{specs: specs, group: g, trace: make([][]rec, shards)}
	for _, i := range roots(specs) {
		g.Shard(specs[i].shard).Kernel().AtArg(specs[i].at, r.fire, i)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	return r.trace
}

// runSingle executes the same specs on one kernel, the reference order.
func runSingle(t *testing.T, specs []specEvent) []rec {
	t.Helper()
	k := NewKernel()
	r := &specRun{specs: specs, k: k, trace: make([][]rec, 1)}
	for _, i := range roots(specs) {
		k.AtArg(specs[i].at, r.fire, i)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	return r.trace[0]
}

// TestShardMergeReproducesSingleKernelOrder is the merge property test:
// on random event DAGs with globally unique timestamps, the shard-local
// streams merged by the (at, seq) total order replay exactly the event
// order the single kernel executes.
func TestShardMergeReproducesSingleKernelOrder(t *testing.T) {
	const window = Duration(1000)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shards := 2 + rng.Intn(3)
		specs := genSpecs(rng, shards, window, true)

		ref := runSingle(t, specs)
		traces := runSharded(t, specs, shards, window)

		var merged []rec
		for _, tr := range traces {
			merged = append(merged, tr...)
		}
		// Unique timestamps: the total order is the time order.
		sort.Slice(merged, func(i, j int) bool { return merged[i].at < merged[j].at })

		if len(merged) != len(ref) {
			t.Fatalf("seed %d: sharded ran %d events, single kernel %d", seed, len(merged), len(ref))
		}
		for i := range merged {
			if merged[i] != ref[i] {
				t.Fatalf("seed %d: merged order diverges at %d: sharded %+v, single %+v",
					seed, i, merged[i], ref[i])
			}
		}
	}
}

// TestShardGroupDeterministic drives DAGs with deliberately colliding
// timestamps (same-instant boundary events from different source
// shards) twice and demands bit-identical per-shard traces, plus the
// same executed-event multiset as the single kernel.
func TestShardGroupDeterministic(t *testing.T) {
	const window = Duration(1000)
	for seed := int64(100); seed < 110; seed++ {
		rng1 := rand.New(rand.NewSource(seed))
		shards := 2 + rng1.Intn(3)
		specs := genSpecs(rng1, shards, window, false)

		t1 := runSharded(t, specs, shards, window)
		t2 := runSharded(t, specs, shards, window)
		for s := range t1 {
			if len(t1[s]) != len(t2[s]) {
				t.Fatalf("seed %d shard %d: %d vs %d events across runs", seed, s, len(t1[s]), len(t2[s]))
			}
			for i := range t1[s] {
				if t1[s][i] != t2[s][i] {
					t.Fatalf("seed %d shard %d: trace diverges at %d: %+v vs %+v",
						seed, s, i, t1[s][i], t2[s][i])
				}
			}
		}

		ref := runSingle(t, specs)
		var merged []rec
		for _, tr := range t1 {
			merged = append(merged, tr...)
		}
		key := func(r rec) string { return fmt.Sprintf("%d@%d", r.label, r.at) }
		a := make([]string, len(merged))
		for i, r := range merged {
			a[i] = key(r)
		}
		b := make([]string, len(ref))
		for i, r := range ref {
			b[i] = key(r)
		}
		sort.Strings(a)
		sort.Strings(b)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Fatalf("seed %d: sharded executed a different event set than the single kernel", seed)
		}
	}
}

// --- Processes across windows ---

// TestShardProcsAcrossWindows runs sleeping processes on every shard
// whose lifetimes span many barrier windows, with a cross-shard event
// ring bouncing among them, and checks both complete correctly.
func TestShardProcsAcrossWindows(t *testing.T) {
	const window = Duration(1000)
	const shards = 3
	g := NewShardGroup(shards, window)

	ticks := make([]int, shards)
	for i := 0; i < shards; i++ {
		i := i
		g.Shard(i).Kernel().Spawn(fmt.Sprintf("sleeper%d", i), func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Sleep(Duration(137 * (i + 1)))
				ticks[i]++
			}
		})
	}

	bounces := 0
	var bounce func(any)
	bounce = func(a any) {
		s := a.(*Shard)
		bounces++
		if bounces < 40 {
			next := (s.ID() + 1) % shards
			s.Post(next, s.Kernel().Now().Add(window), bounce, g.Shard(next))
		}
	}
	g.Shard(0).Kernel().AtArg(0, bounce, g.Shard(0))

	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range ticks {
		if n != 50 {
			t.Fatalf("shard %d sleeper ran %d/50 iterations", i, n)
		}
	}
	if bounces != 40 {
		t.Fatalf("ring bounced %d/40 times", bounces)
	}
	if g.Windows() == 0 {
		t.Fatal("run used no windows")
	}
}

// TestShardPostUnderLookaheadPanics pins the conservative contract: a
// cross-shard post closer than the window is a model bug and must not
// be silently absorbed.
func TestShardPostUnderLookaheadPanics(t *testing.T) {
	g := NewShardGroup(2, 1000)
	g.Shard(0).Kernel().AtArg(500, func(any) {
		g.Shard(0).Post(1, 500+999, func(any) {}, nil)
	}, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("under-lookahead post did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("panic does not name the lookahead window: %v", r)
		}
	}()
	_ = g.Run()
}

// TestShardProcessFailureSurfaces checks a process panic on any shard
// comes back as the group's error, as it would from a single kernel.
func TestShardProcessFailureSurfaces(t *testing.T) {
	g := NewShardGroup(2, 1000)
	g.Shard(1).Kernel().Spawn("doomed", func(p *Proc) {
		p.Sleep(5000)
		panic("boom")
	})
	g.Shard(0).Kernel().Spawn("fine", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(1000)
		}
	})
	err := g.Run()
	if err == nil {
		t.Fatal("process panic did not surface from ShardGroup.Run")
	}
	if !strings.Contains(err.Error(), "doomed") {
		t.Fatalf("error does not name the failed process: %v", err)
	}
}
