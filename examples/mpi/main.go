// MPI: the paper's first target workload — an MPI-style library layered
// on FM (Section 7) — running a tagged master-worker computation plus
// communicator-split collectives on an 8-node cluster.
//
// The master farms out numeric tasks with one tag per task; workers
// receive with wildcards (AnySource would also work for the results),
// compute, and return the result under the task's tag. Nonblocking
// receives on the master complete out of post order as results arrive.
// Afterwards the world splits into even/odd communicators, each of
// which Allreduces its own checksum — rank translation at work.
//
// Run with: go run ./examples/mpi
package main

import (
	"encoding/binary"
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/mpi"
	"fm/internal/sim"
)

const (
	nodes   = 8
	handler = 0
	tasks   = 21 // 3 tasks per worker
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func main() {
	c := cluster.NewFM(nodes, core.DefaultConfig(), cost.Default())

	results := make([]uint64, tasks)
	groupSums := make([]float64, 2)
	var elapsed sim.Time

	for rank := 0; rank < nodes; rank++ {
		rank := rank
		c.Start(rank, func(ep *core.Endpoint) {
			world := mpi.NewWorld(ep, nodes, handler)

			if rank == 0 {
				// Master: Isend task t (payload = t) to worker 1 + t%7
				// under tag t, then collect every result nonblocking.
				reqs := make([]*mpi.Request, tasks)
				for t := 0; t < tasks; t++ {
					world.Isend(1+t%(nodes-1), t, u64(uint64(t)))
					reqs[t] = world.Irecv(mpi.AnySource, t)
				}
				for t, r := range reqs {
					data, _ := world.Wait(r)
					results[t] = binary.LittleEndian.Uint64(data)
				}
			} else {
				// Worker: serve my share of tasks in any tag order.
				for t := rank - 1; t < tasks; t += nodes - 1 {
					data, st := world.Recv(0, mpi.AnyTag)
					v := binary.LittleEndian.Uint64(data)
					// The "computation": cube the task id, charging the
					// simulated CPU.
					ep.CPU().Advance(5 * sim.Microsecond)
					world.Send(0, st.Tag, u64(v*v*v))
				}
			}

			// Collective epilogue on split communicators: even and odd
			// world ranks each sum their ranks.
			sub := world.Split(rank%2, rank)
			sum := sub.Allreduce([]float64{float64(rank)}, mpi.Sum)
			if sub.Rank() == 0 {
				groupSums[rank%2] = sum[0]
			}

			world.Barrier()
			if rank == 0 {
				elapsed = ep.Now()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("%d tasks over %d workers (tagged master-worker):\n", tasks, nodes-1)
	for t, v := range results {
		fmt.Printf("  task %2d -> %6d\n", t, v)
	}
	fmt.Printf("even-rank communicator sum: %.0f\n", groupSums[0])
	fmt.Printf("odd-rank communicator sum:  %.0f\n", groupSums[1])
	fmt.Printf("virtual time to solution: %v\n", elapsed)
}
