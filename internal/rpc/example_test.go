package rpc_test

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/rpc"
)

// A request/reply service over FM handlers: node 1 registers a
// procedure, node 0 calls it synchronously and pipelines two
// nonblocking calls.
func Example() {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())

	const reverse = 1
	c.Start(1, func(ep *core.Endpoint) {
		p := rpc.New(ep, 0)
		p.Register(reverse, func(src int, args []byte) []byte {
			out := make([]byte, len(args))
			for i, b := range args {
				out[len(args)-1-i] = b
			}
			return out
		})
		p.ServeUntil(func() bool { return p.Served() == 3 })
	})
	c.Start(0, func(ep *core.Endpoint) {
		p := rpc.New(ep, 0)
		reply, err := p.Call(1, reverse, []byte("stressed")) // synchronous
		if err != nil {
			panic(err)
		}
		fmt.Printf("reverse(stressed) = %s\n", reply)

		// Pipelined: both requests are in flight before either reply.
		c1, _ := p.Go(1, reverse, []byte("drawer"))
		c2, _ := p.Go(1, reverse, []byte("diaper"))
		fmt.Printf("reverse(drawer) = %s\n", c1.Wait())
		fmt.Printf("reverse(diaper) = %s\n", c2.Wait())
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	// Output:
	// reverse(stressed) = desserts
	// reverse(drawer) = reward
	// reverse(diaper) = repaid
}
