package sim

import (
	"math/bits"
	"slices"
)

// event is a scheduled callback. Events with equal times fire in
// insertion order (seq), which makes the kernel deterministic.
//
// The callback is carried as a func(any) plus an argument rather than a
// bare closure: the kernel's hottest schedule sites (process sleeps,
// signal wakes, packet deliveries) pass a package-level function and a
// pointer argument, so scheduling an event performs no allocation. Plain
// closures still work through Kernel.At, which boxes the func() into the
// argument slot (func values are pointer-shaped, so the boxing itself
// does not allocate either — only the closure's own capture does).
type event struct {
	at  Time
	seq uint64
	fn  func(any)
	arg any
}

// call invokes the event's callback.
func (e *event) call() { e.fn(e.arg) }

// callClosure adapts a plain func() stored in the argument slot.
func callClosure(a any) { a.(func())() }

// less is the kernel's total event order: (at, seq).
func (e *event) less(f *event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// Ladder-queue geometry. The constants trade sorted-tier insertion cost
// against bucket bookkeeping; correctness does not depend on them.
const (
	// nearSpill is the near-tier population that triggers a spill of its
	// tail into a fresh rung, bounding sorted-insert cost.
	nearSpill = 128
	// nearKeep is how many events the near tier keeps on a spill.
	nearKeep = 32
	// splitThreshold is the bucket population above which a touched
	// bucket is split into a finer rung instead of sorted into the near
	// tier. It sits below nearSpill so a freshly transferred bucket does
	// not immediately overflow the near tier and spill straight back.
	splitThreshold = 96
	// rungBuckets is the bucket count of every rung.
	rungBuckets = 64
	// maxRungs bounds refinement depth; a bucket touched at the limit is
	// sorted wholesale instead of split further.
	maxRungs = 48
)

// rung is one far-future refinement level: rungBuckets contiguous
// time slots of equal width starting at base. Buckets before cur have
// already been transferred toward the near tier.
type rung struct {
	base    Time
	width   Duration // always a power of two: bucket index is a shift
	shift   uint     // log2(width)
	limit   Time     // exclusive hard bound: where the next tier out begins
	cur     int      // next bucket to transfer
	used    int      // buckets spanned by this rung (indexes < used)
	count   int      // events remaining in this rung
	buckets [rungBuckets][]event
}

// boundary returns the exclusive upper time bound of bucket i-1 (the
// nominal start of bucket i), clamped to the rung's limit: bucket width
// is rounded up, so the nominal final boundary can overshoot the region
// this rung is responsible for, and an unclamped boundary would let
// nearEnd advance past events held by coarser tiers. The uint64
// arithmetic also saturates spans near MaxTime instead of overflowing.
func (r *rung) boundary(i int) Time {
	e := uint64(r.base) + uint64(i)*uint64(r.width)
	if e > uint64(r.limit) {
		return r.limit
	}
	return Time(e)
}

// end returns the exclusive upper time bound of the rung's whole span.
func (r *rung) end() Time { return r.boundary(r.used) }

// add routes one event into its bucket. Events earlier than the current
// bucket's start (possible when a rung's base was derived from a sparse
// population minimum) clamp into the earliest untransferred bucket; the
// sort on transfer restores exact order.
func (r *rung) add(e event) {
	idx := 0
	if e.at > r.base {
		idx = int((e.at - r.base) >> r.shift)
	}
	if idx < r.cur {
		idx = r.cur
	}
	if idx >= r.used {
		idx = r.used - 1
	}
	r.buckets[idx] = append(r.buckets[idx], e)
	r.count++
}

// ladder is the kernel's event queue: a two-tier ladder/calendar queue
// keyed by the total order (at, seq), so it pops events in exactly the
// sequence the previous binary heap did.
//
// Tiers, nearest virtual time first:
//
//   - near: a sorted slice consumed front-to-back (near[head:] is
//     pending). Pushes with at < nearEnd binary-insert here; Pop is an
//     index increment, and events sharing a timestamp sit contiguously,
//     which is what makes the kernel's same-instant batch drain a pure
//     array walk.
//   - rungs: far-future bucket arrays, finest (earliest span) last.
//     A push appends to its bucket in O(1). When the near tier drains,
//     the earliest untouched bucket is either sorted wholesale into the
//     near tier or — when it is large — split lazily into a finer rung
//     on this first touch.
//   - top: an unsorted overflow list for events beyond every rung,
//     bucketed into a fresh coarsest rung only when the rungs run dry.
//
// Invariants: every event in near precedes every far event in (at, seq)
// order (far events all have at >= nearEnd); rung spans are contiguous
// and ordered, finest = earliest; bucket contents are in push order, so
// each bucket is already seq-sorted, and a one-shot sort by (at, seq)
// on transfer yields the exact global order.
//
// All backing arrays — the near slice, rung structs with their bucket
// slices, and the top slice — are retained and recycled across
// Push/Pop cycles and Run generations, so a steady-state simulation
// reaches a high-water capacity once and schedules allocation-free from
// then on (the discipline TestSteadyStateSchedulingAllocs and
// TestLadderBucketReuse pin).
type ladder struct {
	near    []event
	head    int
	nearEnd Time // exclusive: pushes with at < nearEnd go to near

	rungs []*rung // live rungs, coarsest first, finest (earliest) last
	spare []*rung // recycled rungs, buckets kept for capacity reuse

	top          []event
	topMin       Time
	topMax       Time
	count        int
	transfers    uint64 // bucket-to-near transfers (stats/tests)
	splits       uint64 // lazy bucket splits (stats/tests)
	spills       uint64 // near-tier overflow spills (stats/tests)
	topRebuckets uint64 // top-to-rung rebucketings (stats/tests)
}

// Len returns the number of pending events.
func (q *ladder) Len() int { return q.count }

// Push inserts e, routing it to the tier that covers e.at.
func (q *ladder) Push(e event) {
	if !q.pushFast(e) {
		q.pushSlow(e)
	}
}

// pushFast is the inlinable push fast path — appending the latest
// pending near event, the common shape, since most schedules are "after
// everything currently queued" and seq breaks ties in push order. It
// reports whether it placed the event; the kernel's schedule sites call
// it directly and fall back to pushSlow.
func (q *ladder) pushFast(e event) bool {
	n := len(q.near)
	if n > q.head && n-q.head < nearSpill && e.at < q.nearEnd && !e.less(&q.near[n-1]) {
		q.near = append(q.near, e)
		q.count++
		return true
	}
	return false
}

// pushSlow routes an event that missed the append fast path: near-tier
// binary inserts (including the spill check the fast path's population
// bound defers here), rung buckets, and the top tier.
func (q *ladder) pushSlow(e event) {
	if q.count == 0 {
		// Empty queue: anchor the near tier so everything sorts directly
		// until a spill establishes a far tier, and give it its working
		// capacity up front so small simulations pay one allocation
		// instead of a doubling ladder of them.
		q.nearEnd = MaxTime
		if cap(q.near) == 0 {
			q.near = make([]event, 0, nearKeep+nearKeep/2)
		}
	}
	q.count++
	if e.at < q.nearEnd {
		q.insertNear(e)
		return
	}
	for i := len(q.rungs) - 1; i >= 0; i-- {
		// An exhausted rung (cur == used) has an empty effective span:
		// its buckets are all behind the transfer cursor, so routing
		// into it would park the event where no refill looks again. The
		// event belongs to the next tier out, whose bucket sort restores
		// exact order, and it still pops after everything the finer
		// rungs hold (their spans end at or before this event's time).
		if r := q.rungs[i]; r.cur < r.used && e.at < r.end() {
			r.add(e)
			return
		}
	}
	if len(q.top) == 0 || e.at < q.topMin {
		q.topMin = e.at
	}
	if len(q.top) == 0 || e.at > q.topMax {
		q.topMax = e.at
	}
	q.top = append(q.top, e)
}

// Pop removes and returns the earliest event. It must not be called on
// an empty queue. The kernel's drive loop hand-inlines this body at its
// two (refill-guarded) pop sites; cold callers use this method.
func (q *ladder) Pop() event {
	if q.head == len(q.near) {
		q.refill()
	}
	e := q.near[q.head]
	q.head++
	q.count--
	if q.head >= nearKeep && q.head*2 >= len(q.near) {
		q.maintainNear()
	}
	return e
}

// maintainNear trims the consumed prefix of the near array: a full
// reset when it has drained, a compaction once the prefix dominates.
// Either way consumed slots are released for GC in bulk here (and in
// the refill path) rather than one store per Pop. Amortized cost: at
// most one event copied per pop.
func (q *ladder) maintainNear() {
	if q.head == len(q.near) {
		clear(q.near)
		q.near = q.near[:0]
		q.head = 0
	} else if q.head*2 >= len(q.near) {
		n := copy(q.near, q.near[q.head:])
		clear(q.near[n:])
		q.near = q.near[:n]
		q.head = 0
	}
}

// PeekAt returns the earliest pending time. It must not be called on an
// empty queue.
func (q *ladder) PeekAt() Time {
	if q.head == len(q.near) {
		q.refill()
	}
	return q.near[q.head].at
}

// NextIsAt reports whether another event at exactly time t is pending.
// It never touches the far tiers: the near tier holds every event with
// at < nearEnd, and t (a popped event's time) is always below that
// bound, so the check is two loads and a compare. This is the kernel's
// same-instant batch-drain test.
func (q *ladder) NextIsAt(t Time) bool {
	return q.head < len(q.near) && q.near[q.head].at == t
}

// insertNear binary-inserts e into the sorted near tier.
func (q *ladder) insertNear(e event) {
	// Append fast path for an empty pending set (the non-empty case was
	// already handled by Push).
	if n := len(q.near); n == q.head || !e.less(&q.near[n-1]) {
		q.near = append(q.near, e)
		if len(q.near)-q.head > nearSpill {
			q.spillNear()
		}
		return
	}
	lo, hi := q.head, len(q.near)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.near[mid].less(&e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.near = append(q.near, event{})
	copy(q.near[lo+1:], q.near[lo:])
	q.near[lo] = e
	if len(q.near)-q.head > nearSpill {
		q.spillNear()
	}
}

// spillNear moves the tail of an oversized near tier into a fresh
// finest rung, restoring bounded insertion cost. The spilled segment is
// sorted and strictly follows every kept event in (at, seq) order, so
// any split point is safe — including one inside an equal-timestamp
// run, because the order key includes seq.
func (q *ladder) spillNear() {
	q.spills++
	start := q.head + nearKeep
	seg := q.near[start:]
	// The spilled region ends where the far tiers begin: the old nearEnd.
	r := q.newRung(seg[0].at, seg[len(seg)-1].at, q.nearEnd)
	for _, e := range seg {
		r.add(e)
	}
	clear(seg)
	q.near = q.near[:start]
	q.nearEnd = r.base
}

// newRung takes a recycled (or fresh) rung spanning [lo, hi] inclusive
// and pushes it as the new finest level. Callers must only create rungs
// whose span precedes every existing rung's remaining span; limit is the
// exclusive instant at which the next tier out takes over.
func (q *ladder) newRung(lo, hi, limit Time) *rung {
	var r *rung
	if n := len(q.spare); n > 0 {
		r = q.spare[n-1]
		q.spare = q.spare[:n-1]
	} else {
		r = new(rung)
	}
	// width is the power of two at or above ceil(span/rungBuckets) —
	// computed from hi-lo so a span touching MaxTime cannot overflow,
	// and a power of two so bucket indexing is a shift, not a division.
	shift := uint(bits.Len64(uint64(hi-lo) / rungBuckets))
	r.base = lo
	r.width = Duration(1) << shift
	r.shift = shift
	r.limit = limit
	r.cur = 0
	r.used = int(uint64(hi-lo)>>shift) + 1
	r.count = 0
	q.rungs = append(q.rungs, r)
	return r
}

// releaseRung retires the exhausted finest rung, keeping its bucket
// arrays for reuse.
func (q *ladder) releaseRung() {
	n := len(q.rungs) - 1
	r := q.rungs[n]
	q.rungs = q.rungs[:n]
	for i := range r.buckets {
		r.buckets[i] = r.buckets[i][:0]
	}
	q.spare = append(q.spare, r)
}

// refill refreshes an empty near tier from the far tiers: it walks to
// the earliest untouched bucket, splitting oversized buckets into finer
// rungs on first touch, and finally sorts one bucket into place as the
// new near tier (swapping backing arrays rather than copying). With the
// far tiers empty too, it re-anchors the near tier to absorb all future
// pushes.
func (q *ladder) refill() {
	clear(q.near) // release consumed slots before the array is recycled
	q.near = q.near[:0]
	q.head = 0
	for {
		if n := len(q.rungs); n > 0 {
			r := q.rungs[n-1]
			for r.cur < r.used && len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			if r.cur == r.used {
				q.releaseRung()
				continue
			}
			b := r.buckets[r.cur]
			lo, hi := b[0].at, b[0].at
			for i := 1; i < len(b); i++ {
				if b[i].at < lo {
					lo = b[i].at
				}
				if b[i].at > hi {
					hi = b[i].at
				}
			}
			if len(b) > splitThreshold && hi > lo && n < maxRungs {
				// First touch of a crowded bucket: split it into a finer
				// rung instead of paying one big sort. The finer rung's
				// responsibility ends where this bucket's does.
				q.splits++
				fine := q.newRung(lo, hi, r.boundary(r.cur+1))
				for _, e := range b {
					fine.add(e)
				}
				clear(b)
				r.buckets[r.cur] = b[:0]
				r.count -= len(b)
				r.cur++
				continue
			}
			// Transfer: this bucket becomes the near tier. Buckets are
			// seq-sorted by construction, so an equal-timestamp bucket
			// (hi == lo) is already in final order.
			q.transfers++
			if hi > lo {
				slices.SortFunc(b, func(x, y event) int {
					if x.at != y.at {
						if x.at < y.at {
							return -1
						}
						return 1
					}
					if x.seq < y.seq {
						return -1
					}
					return 1
				})
			}
			// Adopt the bucket's array as the near tier when it is at
			// least as large as the current one; otherwise copy into the
			// retained near array. Either way the larger capacity
			// survives, so the near tier reaches a high-water mark once
			// and transfers allocation-free from then on.
			if cap(b) >= cap(q.near) {
				old := q.near
				q.near = b
				r.buckets[r.cur] = old[:0]
			} else {
				q.near = append(q.near[:0], b...)
				clear(b)
				r.buckets[r.cur] = b[:0]
			}
			q.head = 0
			r.count -= len(b)
			r.cur++
			q.nearEnd = r.boundary(r.cur)
			return
		}
		if len(q.top) > 0 {
			// Rungs ran dry: bucket the overflow list into a fresh
			// coarsest rung spanning its actual population.
			q.topRebuckets++
			r := q.newRung(q.topMin, q.topMax, MaxTime)
			for _, e := range q.top {
				r.add(e)
			}
			clear(q.top)
			q.top = q.top[:0]
			continue
		}
		// Completely empty: future pushes sort directly into near.
		q.nearEnd = MaxTime
		return
	}
}
