// Collective: an 8-node parallel computation in the style FM was built
// to support (the paper's MPI motivation, Section 7).
//
// Every node integrates a slice of f(x) = 4/(1+x^2) over [0,1] — the
// classic parallel-pi kernel — then the group combines partial sums with
// an Allreduce over FM's short messages and checks agreement with a
// Barrier-delimited Gather. The collectives run in O(log N) rounds of
// sub-128-byte messages: exactly the regime FM's n1/2 = 54 bytes targets.
//
// Run with: go run ./examples/collective
package main

import (
	"fmt"
	"math"

	"fm/internal/cluster"
	"fm/internal/collective"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

const (
	nodes    = 8
	handler  = 0
	steps    = 1 << 16 // integration resolution
	perNode  = steps / nodes
	stepSize = 1.0 / steps
)

func main() {
	c := cluster.NewFM(nodes, core.DefaultConfig(), cost.Default())

	pis := make([]float64, nodes)
	var elapsed sim.Time

	for rank := 0; rank < nodes; rank++ {
		rank := rank
		c.Start(rank, func(ep *core.Endpoint) {
			comm := collective.New(ep, nodes, handler)

			// Local phase: integrate this node's slice, charging the
			// simulated CPU for the arithmetic (~50 ns per step on a
			// 1995 SuperSPARC).
			partial := 0.0
			for i := rank * perNode; i < (rank+1)*perNode; i++ {
				x := (float64(i) + 0.5) * stepSize
				partial += 4.0 / (1.0 + x*x)
			}
			ep.CPU().Advance(sim.Duration(perNode) * 50 * sim.Nanosecond)

			// Communication phase: one Allreduce produces pi everywhere.
			comm.Barrier()
			sum := comm.Allreduce([]float64{partial}, collective.Sum)
			pis[rank] = sum[0] * stepSize

			comm.Barrier()
			if rank == 0 {
				elapsed = ep.Now()
			}
			// Let the layer quiesce (trailing acknowledgements).
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("%d nodes, %d integration steps\n", nodes, steps)
	for rank, pi := range pis {
		fmt.Printf("  rank %d: pi = %.12f (err %.2e)\n", rank, pi, math.Abs(pi-math.Pi))
	}
	fmt.Printf("virtual time to solution: %v\n", elapsed)
	st := c.Fab.Stats()
	fmt.Printf("network traffic: %d packets, %d payload bytes (all collectives in short frames)\n",
		st.Packets, st.PayloadBytes)
}
