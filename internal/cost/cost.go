// Package cost gathers every calibrated hardware constant used by the
// simulation in a single Params struct.
//
// The defaults reproduce the 1995 platform the paper measures: SPARCstation
// 10/20 hosts, the SBus I/O bus, Myrinet LANai 2.3 interface cards, and an
// 8-port Myrinet switch. Each constant is traceable to a specific statement
// in the paper (Section 2, Section 4, or Appendix A); the comment on each
// field cites its source. Named variants expose the hardware what-ifs from
// the paper's Discussion and Conclusion (burst-mode programmed I/O, a
// faster LANai).
package cost

import "fm/internal/sim"

// Params is the full hardware cost model. All durations are virtual time.
type Params struct {
	// ---- Myrinet link and switch (Section 2, Appendix A) ----

	// LinkBytePS is the time to move one byte over a Myrinet channel:
	// 12.5 ns/byte, i.e. 76.3 MiB/s ("spooling a packet of 128 bytes over
	// the channel takes 1.6us").
	LinkByte sim.Duration

	// SwitchLatency is the total latency a packet head incurs crossing
	// one Myrinet switch (Appendix A: t_switch = 550 ns).
	SwitchLatency sim.Duration

	// ---- LANai processor (Section 2, Appendix A) ----

	// LANaiCycle is one LANai clock cycle: the LANai runs at the SBus
	// clock (20-25 MHz); we use 25 MHz => 40 ns (Appendix A).
	LANaiCycle sim.Duration

	// LANaiCPI is the average cycles per LANai instruction ("executing
	// one instruction every 3-4 cycles"); we use 3.5.
	LANaiCPI float64

	// DMASetup is the LANai's cost to set up any of its three DMA
	// engines (Appendix A: 8 cycles = 320 ns).
	DMASetup sim.Duration

	// ---- LCP loop structure costs, in LANai instructions ----
	// These calibrate Figure 3: the baseline loop's per-packet overhead
	// yields t0 = 4.2 us and the streamed loop's t0 = 3.5 us (Table 4).
	// One instruction is LANaiCycle*LANaiCPI = 140 ns, so the baseline's
	// ~3.9 us of non-DMA-setup overhead is ~28 instructions and the
	// streamed loop's ~3.2 us is ~23.

	// LCPBaselineSendInstr is the per-packet instruction count on the
	// send side of the baseline loop (condition checks for both
	// directions, pointer updates, completion wait, loop branch).
	LCPBaselineSendInstr int

	// LCPBaselineRecvInstr is the receive-side equivalent.
	LCPBaselineRecvInstr int

	// LCPStreamedSendInstr is the per-packet send cost inside the
	// streamed loop's inner while (consolidated checks).
	LCPStreamedSendInstr int

	// LCPStreamedRecvInstr is the receive-side equivalent.
	LCPStreamedRecvInstr int

	// LCPIdleRecheckInstr is the cost of one empty trip around the main
	// loop; it is charged when the LCP wakes to new work, modeling the
	// polling loop's detection latency.
	LCPIdleRecheckInstr int

	// LCPInterpretInstr is the extra per-packet cost of the switch()
	// statement simulating packet interpretation in the receive inner
	// loop (Section 4.4 / Figure 7).
	LCPInterpretInstr int

	// LCPFMExtraInstr is the extra per-packet bookkeeping the full FM
	// LCP performs versus the vestigial streamed loop (queue wrap
	// handling, host-queue pointer maintenance).
	LCPFMExtraInstr int

	// LCPHostDMASetupInstr is the instruction cost to set up a host DMA
	// (aggregation scan plus descriptor write), beyond DMASetup.
	LCPHostDMASetupInstr int

	// ---- SBus (Section 2, Section 4.3) ----

	// SBusPIOWord8 is the cost of one double-word (8-byte) programmed
	// store across the SBus into LANai memory. "Using double-word writes
	// achieves a maximum of 23.9 MB/s": 8 B / 23.9 MiB/s ~= 319 ns; we
	// round to 320 ns.
	SBusPIOWord8 sim.Duration

	// SBusPIOLoopInstr is the host-side per-double-word overhead of the
	// copy loop (load from user buffer, address update); it is what
	// separates delivered payload bandwidth (~21.2 MB/s, Table 4) from
	// the pure store maximum (23.9 MB/s).
	SBusPIOLoop sim.Duration

	// SBusStatusRead is the cost for the host to read a LANai status or
	// counter field across the SBus ("~15 processor cycles" at 50 MHz =
	// 300 ns).
	SBusStatusRead sim.Duration

	// SBusControlWrite is an uncached single-word host store to LANai
	// memory (counter updates, doorbells).
	SBusControlWrite sim.Duration

	// SBusDMAByte is the per-byte cost of an SBus burst-mode DMA
	// transfer ("40-54 MB/s for large transfers"); we use 50 MiB/s =
	// 19.07 ns/B, rounded to 19 ns.
	SBusDMAByte sim.Duration

	// SBusDMAStartup is the fixed SBus-side cost to begin a burst DMA
	// (arbitration and address cycle), in addition to the LANai's
	// DMASetup.
	SBusDMAStartup sim.Duration

	// ---- Host processor and memory (Section 2) ----

	// HostMemcpyByte is the per-byte cost of a host memory-to-memory
	// copy (user buffer -> pinned DMA region). With 80 MB/s reads and
	// 60 MB/s writes the effective copy rate is 1/(1/80+1/60) ~= 34.3
	// MiB/s => ~29.2 ns/B; this is what caps the all-DMA path at
	// r_inf = 33 MB/s (Table 4).
	HostMemcpyByte sim.Duration

	// HostMemReadByte is the per-byte cost for the host to read a
	// received packet out of the DMA region (cached reads ~80 MiB/s).
	HostMemReadByte sim.Duration

	// HostSendCall is the fixed host software cost of an FM_send /
	// FM_send_4 call before any data movement (argument marshaling,
	// queue-space check against the cached counter, header build).
	HostSendCall sim.Duration

	// HostExtractPoll is the fixed host cost of one FM_extract poll
	// that finds nothing (read of the host receive queue status word in
	// host memory plus call overhead).
	HostExtractPoll sim.Duration

	// HostExtractPacket is the per-packet host cost of dequeueing one
	// packet in FM_extract before the handler runs (pointer chase,
	// header parse, sort data vs. rejected packets).
	HostExtractPacket sim.Duration

	// HostHandlerDispatch is the cost of invoking a handler function
	// (indirect call plus prologue), excluding handler body time.
	HostHandlerDispatch sim.Duration

	// HostFlowControlSend is the extra per-packet host cost of
	// return-to-sender flow control on the send side (sequence
	// assignment, retaining the packet in the reject region).
	HostFlowControlSend sim.Duration

	// HostFlowControlRecv is the receive-side equivalent (ack
	// bookkeeping, duplicate screen).
	HostFlowControlRecv sim.Duration

	// HostAckBuild is the host cost to emit a standalone or piggybacked
	// acknowledgement.
	HostAckBuild sim.Duration

	// HostBufMgmtSend is the per-packet host cost of real send-side
	// buffer management (queue-space check against the cached LANai
	// counter, wrap handling) versus the vestigial fixed-buffer layer
	// (Section 4.4, Figure 7).
	HostBufMgmtSend sim.Duration

	// HostBufMgmtRecv is the receive-side equivalent (queue index
	// maintenance and the batched consumption-counter updates).
	HostBufMgmtRecv sim.Duration

	// ---- Myricom API comparator (Section 4.6, Table 3) ----

	// APISendFixed is the fixed per-message host cost of
	// myri_cmd_send_imm: kernel-style entry, buffer-pointer handshake
	// with the LANai (several SBus round trips), route lookup in the
	// automatically-maintained map, and in-order bookkeeping. Calibrates
	// t0 ~= 105 us.
	APISendFixed sim.Duration

	// APISendDMAExtra is the additional fixed cost of the DMA variant
	// (myri_cmd_send): pinning/copy into the DMA region handshake and a
	// second synchronization. Calibrates t0 ~= 121 us.
	APISendDMAExtra sim.Duration

	// APIChecksumByte is the per-byte checksum cost the API pays on send
	// and on receive (Table 3: "Message checksums").
	APIChecksumByte sim.Duration

	// APIRecvFixed is the fixed per-message receive-side host cost
	// (pointer handshake back to the LANai, ordered delivery queue).
	APIRecvFixed sim.Duration

	// APIDescriptorBlock is the scatter-gather descriptor size over
	// which APIDescriptorCost is charged.
	APIDescriptorBlock int

	// APIDescriptorCost is charged once per APIDescriptorBlock bytes,
	// modeling scatter-gather descriptor processing in the API's LCP;
	// it bends the API bandwidth curve and pushes n1/2 into the
	// thousands of bytes.
	APIDescriptorCost sim.Duration

	// APILCPExtraInstr is the extra per-packet instruction count in the
	// API's LCP versus FM's (checksum engine management, remap
	// housekeeping, multiplexed queues).
	APILCPExtraInstr int

	// APIPinPageCost is charged per touched page when the DMA variant
	// prepares a user buffer (pin + translate).
	APIPinPageCost sim.Duration

	// APIPageBytes is the page size for pinning.
	APIPageBytes int

	// APIRemapEvery and APIRemapCost model the API's automatic,
	// continuous network reconfiguration (Table 3): every APIRemapEvery
	// sends, the host stalls for APIRemapCost of mapping housekeeping.
	APIRemapEvery int
	APIRemapCost  sim.Duration

	// ---- Frame geometry ----

	// FMHeaderBytes is the wire overhead of an FM frame: route byte,
	// type, length, handler id, sequence number, piggybacked ack window.
	FMHeaderBytes int

	// APIHeaderBytes is the wire overhead of a Myrinet API message
	// (larger: route, type, scatter-gather count, checksum, ordering).
	APIHeaderBytes int
}

// Default returns the calibrated 1995 cost model described in the paper.
func Default() *Params {
	p := &Params{
		LinkByte:      sim.NsF(12.5),
		SwitchLatency: sim.Ns(550),
		LANaiCycle:    sim.Ns(40),
		LANaiCPI:      3.5,
		DMASetup:      sim.Ns(320),

		LCPBaselineSendInstr: 27,
		LCPBaselineRecvInstr: 24,
		LCPStreamedSendInstr: 22,
		LCPStreamedRecvInstr: 19,
		LCPIdleRecheckInstr:  6,
		LCPInterpretInstr:    30,
		LCPFMExtraInstr:      4,
		LCPHostDMASetupInstr: 6,

		SBusPIOWord8:     sim.Ns(320),
		SBusPIOLoop:      sim.Ns(56),
		SBusStatusRead:   sim.Ns(300),
		SBusControlWrite: sim.Ns(150),
		SBusDMAByte:      sim.Ns(19),
		SBusDMAStartup:   sim.Ns(200),

		HostMemcpyByte:      sim.NsF(29.2),
		HostMemReadByte:     sim.NsF(12.5),
		HostSendCall:        sim.Ns(900),
		HostExtractPoll:     sim.Ns(250),
		HostExtractPacket:   sim.Ns(700),
		HostHandlerDispatch: sim.Ns(200),
		HostFlowControlSend: sim.Ns(120),
		HostFlowControlRecv: sim.Ns(120),
		HostAckBuild:        sim.Ns(250),
		HostBufMgmtSend:     sim.Ns(150),
		HostBufMgmtRecv:     sim.Ns(120),

		APISendFixed:       sim.Us(96),
		APISendDMAExtra:    sim.Us(16),
		APIChecksumByte:    sim.NsF(12.5),
		APIRecvFixed:       sim.Us(8),
		APIDescriptorBlock: 512,
		APIDescriptorCost:  sim.Us(8),
		APILCPExtraInstr:   40,
		APIPinPageCost:     sim.Us(8),
		APIPageBytes:       4096,
		APIRemapEvery:      64,
		APIRemapCost:       sim.Us(150),

		FMHeaderBytes:  16,
		APIHeaderBytes: 28,
	}
	return p
}

// Instr converts an instruction count to LANai processor time.
func (p *Params) Instr(n int) sim.Duration {
	return sim.Duration(float64(n) * p.LANaiCPI * float64(p.LANaiCycle))
}

// LinkTime returns the channel occupancy of n wire bytes.
func (p *Params) LinkTime(n int) sim.Duration {
	return sim.Duration(n) * p.LinkByte
}

// PIOTime returns the host+SBus cost to programmed-I/O copy n bytes into
// LANai memory using double-word stores.
func (p *Params) PIOTime(n int) sim.Duration {
	words := (n + 7) / 8
	return sim.Duration(words) * (p.SBusPIOWord8 + p.SBusPIOLoop)
}

// SBusDMATime returns the SBus occupancy of an n-byte burst DMA.
func (p *Params) SBusDMATime(n int) sim.Duration {
	return p.SBusDMAStartup + sim.Duration(n)*p.SBusDMAByte
}

// MemcpyTime returns the host cost to copy n bytes memory-to-memory.
func (p *Params) MemcpyTime(n int) sim.Duration {
	return sim.Duration(n) * p.HostMemcpyByte
}

// Clone returns a deep copy of p, so variants can be derived without
// mutating shared defaults.
func (p *Params) Clone() *Params {
	q := *p
	return &q
}

// --- Named variants: the hardware what-ifs from Sections 5 and 6 ---

// WithBurstPIO returns a variant in which the MBus-SBus write buffer
// supports burst-mode programmed stores, giving PIO "DMA-like bandwidth
// into the network" (Conclusion). Double-word store cost drops to the
// burst DMA byte rate.
func (p *Params) WithBurstPIO() *Params {
	q := p.Clone()
	q.SBusPIOWord8 = 8 * q.SBusDMAByte
	q.SBusPIOLoop = sim.Ns(8)
	return q
}

// WithFasterLANai returns a variant with the LANai processor sped up by
// factor (Conclusion: "a moderately faster network interface processor").
// Factor 2 halves every LCP instruction cost.
func (p *Params) WithFasterLANai(factor float64) *Params {
	q := p.Clone()
	q.LANaiCPI = p.LANaiCPI / factor
	return q
}

// WithSlowerHost returns a variant scaling all host software fixed costs
// by factor, for sensitivity studies of the host/coprocessor division of
// labor.
func (p *Params) WithSlowerHost(factor float64) *Params {
	q := p.Clone()
	scale := func(d sim.Duration) sim.Duration { return sim.Duration(float64(d) * factor) }
	q.HostSendCall = scale(p.HostSendCall)
	q.HostExtractPoll = scale(p.HostExtractPoll)
	q.HostExtractPacket = scale(p.HostExtractPacket)
	q.HostHandlerDispatch = scale(p.HostHandlerDispatch)
	q.HostFlowControlSend = scale(p.HostFlowControlSend)
	q.HostFlowControlRecv = scale(p.HostFlowControlRecv)
	q.HostAckBuild = scale(p.HostAckBuild)
	return q
}
