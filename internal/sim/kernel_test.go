package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30*Time(Nanosecond), func() { got = append(got, 3) })
	k.At(10*Time(Nanosecond), func() { got = append(got, 1) })
	k.At(20*Time(Nanosecond), func() { got = append(got, 2) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*Time(Nanosecond) {
		t.Fatalf("final time = %v", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(Time(Microsecond), func() { got = append(got, i) })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-instant events not FIFO: %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(Time(Microsecond), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var stamps []Time
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			stamps = append(stamps, p.Now())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Time{10 * Time(Microsecond), 20 * Time(Microsecond), 30 * Time(Microsecond)} {
		if stamps[i] != want {
			t.Fatalf("stamp[%d] = %v, want %v", i, stamps[i], want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		order = append(order, "a10")
		p.Sleep(20 * Nanosecond) // wakes at 30
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20 * Nanosecond)
		order = append(order, "b20")
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalPulseWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	woke := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Wait(s)
			woke++
		})
	}
	k.After(Microsecond, s.Pulse)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestSignalNoMemory(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	s.Pulse() // no waiters: lost
	woke := false
	k.Spawn("w", func(p *Proc) {
		ok := p.WaitTimeout(s, 5*Microsecond)
		woke = ok
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke {
		t.Fatal("waiter observed a pulse that happened before it waited")
	}
	if k.Now() != 5*Time(Microsecond) {
		t.Fatalf("timeout did not advance clock to 5us: %v", k.Now())
	}
}

func TestWaitTimeoutSignaledFirst(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	var ok bool
	var at Time
	k.Spawn("w", func(p *Proc) {
		ok = p.WaitTimeout(s, 100*Microsecond)
		at = p.Now()
	})
	k.After(3*Microsecond, s.Pulse)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected signal before timeout")
	}
	if at != 3*Time(Microsecond) {
		t.Fatalf("woke at %v, want 3us", at)
	}
}

func TestWaitTimeoutThenLaterPulseHarmless(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	wakes := 0
	k.Spawn("w", func(p *Proc) {
		if p.WaitTimeout(s, Microsecond) {
			t.Error("unexpected signal")
		}
		wakes++
		p.Wait(s) // wait again; the later pulse should wake exactly once
		wakes++
	})
	k.After(10*Microsecond, s.Pulse)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
}

func TestWaitFor(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	counter := 0
	k.Spawn("w", func(p *Proc) {
		p.WaitFor(s, func() bool { return counter >= 3 })
		if p.Now() != 3*Time(Microsecond) {
			t.Errorf("condition met at %v, want 3us", p.Now())
		}
	})
	for i := 1; i <= 3; i++ {
		k.At(Time(i)*Time(Microsecond), func() { counter++; s.Pulse() })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if counter != 3 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	var ends []Time
	for i := 0; i < 3; i++ {
		k.Spawn("u", func(p *Proc) {
			p.Use(r, 10*Microsecond)
			ends = append(ends, p.Now())
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Time(Microsecond), 20 * Time(Microsecond), 30 * Time(Microsecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.BusyTime() != 30*Microsecond {
		t.Fatalf("busy = %v", r.BusyTime())
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestResourceReserveNonBlocking(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dma")
	k.At(0, func() {
		s1, e1 := r.Reserve(5 * Microsecond)
		s2, e2 := r.Reserve(5 * Microsecond)
		if s1 != 0 || e1 != 5*Time(Microsecond) {
			t.Errorf("first grant [%v,%v]", s1, e1)
		}
		if s2 != 5*Time(Microsecond) || e2 != 10*Time(Microsecond) {
			t.Errorf("second grant [%v,%v]", s2, e2)
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicSurfaces(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	err := k.RunAll()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestStopUnwindsParkedProcs(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "never")
	cleaned := false
	k.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Wait(s) // never pulsed; Run teardown must unwind this goroutine
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("parked process was not unwound")
	}
}

// TestDeterminism runs a randomized workload twice from the same seed and
// requires identical schedules.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, Time, int) {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		s := NewSignal(k, "s")
		r := NewResource(k, "r")
		total := 0
		for i := 0; i < 20; i++ {
			d := Duration(rng.Intn(1000)+1) * Nanosecond
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(d)
					p.Use(r, d/2+1)
					total++
					s.Pulse()
				}
			})
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return k.EventsRun(), k.Now(), total
	}
	e1, t1, n1 := run(42)
	e2, t2, n2 := run(42)
	if e1 != e2 || t1 != t2 || n1 != n2 {
		t.Fatalf("nondeterministic: (%d,%v,%d) vs (%d,%v,%d)", e1, t1, n1, e2, t2, n2)
	}
}

// TestHeapProperty checks the event heap against a sort-based oracle.
func TestHeapProperty(t *testing.T) {
	f := func(times []int64) bool {
		var h eventHeap
		type key struct {
			at  Time
			seq uint64
		}
		var keys []key
		for i, ti := range times {
			at := Time(ti & 0xFFFFF) // keep times small and non-negative
			h.Push(event{at: at, seq: uint64(i)})
			keys = append(keys, key{at, uint64(i)})
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].at != keys[j].at {
				return keys[i].at < keys[j].at
			}
			return keys[i].seq < keys[j].seq
		})
		for _, want := range keys {
			got := h.Pop()
			if got.at != want.at || got.seq != want.seq {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{12500 * Picosecond, "12.5ns"},
		{3500 * Nanosecond, "3.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(10 * Microsecond)
	b := a.Add(5 * Microsecond)
	if b.Sub(a) != 5*Microsecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
	if Ns(12).Nanoseconds() != 12 {
		t.Fatal("Ns")
	}
	if Us(3) != 3*Microsecond {
		t.Fatal("Us")
	}
	if NsF(12.5) != 12500*Picosecond {
		t.Fatal("NsF")
	}
}

// countArg is a package-level event callback for the allocation test.
func countArg(a any) { *(a.(*int))++ }

// TestSteadyStateSchedulingAllocs pins the kernel's allocation
// discipline: once the event heap has reached its high-water capacity,
// scheduling and running argument-style events allocates nothing, and
// the heap's backing array is reused across Run generations.
func TestSteadyStateSchedulingAllocs(t *testing.T) {
	k := NewKernel()
	count := 0
	// Warm up the heap to its high-water mark.
	for i := 0; i < 128; i++ {
		k.AtArg(k.Now().Add(Microsecond), countArg, &count)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 128; i++ {
			k.AtArg(k.Now().Add(Microsecond), countArg, &count)
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state scheduling allocates %.1f objects per generation, want 0", allocs)
	}
}

// TestSignalWaitReuse exercises the embedded wait registration: a
// process that waits on two different signals in alternation must never
// see a cross-wired wake.
func TestSignalWaitReuse(t *testing.T) {
	k := NewKernel()
	a := NewSignal(k, "a")
	b := NewSignal(k, "b")
	var wokeA, wokeB int
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(a)
			wokeA++
			p.Wait(b)
			wokeB++
		}
	})
	k.Spawn("pulser", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Microsecond)
			a.Pulse()
			p.Sleep(Microsecond)
			// A stale pulse on a must not wake the waiter off b.
			a.Pulse()
			b.Pulse()
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wokeA != 10 || wokeB != 10 {
		t.Fatalf("wokeA=%d wokeB=%d, want 10/10", wokeA, wokeB)
	}
}
