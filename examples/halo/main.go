// Halo: a 1-D Jacobi stencil with halo exchange — the classic
// tightly-coupled workload the paper's introduction says workstation
// clusters could not previously support ("parallel computing on
// workstation clusters has largely been limited to coarse-grained
// applications", Section 1). Per-iteration communication is two frames of
// a few hundred bytes per node: FM's short-message regime.
//
// Each of 8 nodes owns a slice of a 1-D rod and relaxes the heat
// equation; every iteration it exchanges one-cell halos with its ring
// neighbors over FM, then the result is checked against a serial
// computation of the same system.
//
// The communication structure — who talks to whom, each iteration — is
// not hand-rolled: it comes from the workload layer's Neighbor pattern
// (internal/workload), the ring-shift/halo-exchange generator the
// `patterns` experiment also drives. The example walks the pattern's
// per-rank send list round by round and fills in the physics.
//
// Run with: go run ./examples/halo
package main

import (
	"encoding/binary"
	"fmt"
	"math"

	"fm/internal/cluster"
	"fm/internal/collective"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
	"fm/internal/workload"
)

const (
	nodes    = 8
	cells    = 512 // total interior cells
	local    = cells / nodes
	iters    = 50
	hHalo    = 0
	hGroup   = 1
	haloSize = 13                  // side byte + iteration + float64 value
	cpuCost  = 60 * sim.Nanosecond // per-cell update on a 1995 SuperSPARC
)

// pattern is the workload-layer description of this application's
// traffic: iters rounds of non-wrapping neighbor exchange (the boundary
// ranks have a fixed boundary cell instead of a partner on that side).
var pattern = workload.Neighbor{Rounds: iters, Wrap: false, Bytes: haloSize}

func encode(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

func decode(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// serial computes the reference solution.
func serial() []float64 {
	cur := initial()
	next := make([]float64, cells+2)
	for it := 0; it < iters; it++ {
		next[0], next[cells+1] = cur[0], cur[cells+1] // fixed boundaries
		for i := 1; i <= cells; i++ {
			next[i] = 0.5*cur[i] + 0.25*(cur[i-1]+cur[i+1])
		}
		cur, next = next, cur
	}
	return cur
}

// initial builds the rod with fixed hot/cold boundary cells.
func initial() []float64 {
	u := make([]float64, cells+2)
	u[0] = 100 // hot end (boundary, never updated)
	for i := 1; i <= cells; i++ {
		u[i] = float64(i % 7)
	}
	return u
}

func main() {
	c := cluster.NewFM(nodes, core.DefaultConfig(), cost.Default())
	result := make([]float64, cells+2)
	var elapsed sim.Time

	full := initial()
	for rank := 0; rank < nodes; rank++ {
		rank := rank
		c.Start(rank, func(ep *core.Endpoint) {
			comm := collective.New(ep, nodes, hGroup)
			left, right := rank-1, rank+1

			// Local slice with halo cells at [0] and [local+1].
			u := make([]float64, local+2)
			next := make([]float64, local+2)
			copy(u, full[rank*local:rank*local+local+2])

			// Halo arrivals, keyed by iteration: a fast neighbor may send
			// its next-iteration halo before this node finishes waiting
			// for the current one, so values are buffered per iteration
			// rather than stored in bare flags.
			fromLeft := make(map[uint32]float64)
			fromRight := make(map[uint32]float64)
			ep.RegisterHandler(hHalo, func(src int, payload []byte) {
				it := binary.LittleEndian.Uint32(payload[1:])
				v := decode(payload[5:])
				if payload[0] == 'L' { // sender's leftmost cell -> our right halo
					fromRight[it] = v
				} else { // sender's rightmost cell -> our left halo
					fromLeft[it] = v
				}
			})
			halo := func(side byte, it int, v float64) []byte {
				msg := make([]byte, 5, haloSize)
				msg[0] = side
				binary.LittleEndian.PutUint32(msg[1:], uint32(it))
				return append(msg, encode(v)...)
			}

			// The pattern's send list is round-major with a constant
			// per-round count per rank (2 in the interior, 1 at the
			// boundaries), so each iteration consumes one slice of it.
			sends := pattern.Gen(rank, nodes)
			perRound := len(sends) / iters

			for it := 0; it < iters; it++ {
				// Exchange halos with the pattern's neighbors for this
				// round (boundary nodes keep their fixed boundary cell
				// instead): a send to the left neighbor carries our
				// leftmost cell, a send to the right our rightmost.
				for _, s := range sends[it*perRound : (it+1)*perRound] {
					msg := halo('R', it, u[local])
					if s.Dst == left {
						msg = halo('L', it, u[1])
					}
					if len(msg) != s.Size {
						panic(fmt.Sprintf("halo message is %dB, pattern declares %dB", len(msg), s.Size))
					}
					ep.Send(s.Dst, hHalo, msg)
				}
				for {
					l, okL := fromLeft[uint32(it)]
					r, okR := fromRight[uint32(it)]
					if (okL || left < 0) && (okR || right >= nodes) {
						if okL {
							u[0] = l
							delete(fromLeft, uint32(it))
						}
						if okR {
							u[local+1] = r
							delete(fromRight, uint32(it))
						}
						break
					}
					ep.WaitIncoming()
					ep.Extract()
				}

				// Relax the interior, charging the simulated CPU.
				for i := 1; i <= local; i++ {
					next[i] = 0.5*u[i] + 0.25*(u[i-1]+u[i+1])
				}
				ep.CPU().Advance(sim.Duration(local) * cpuCost)
				copy(u[1:local+1], next[1:local+1])

				// Iteration barrier keeps halo generations separate.
				comm.Barrier()
			}

			copy(result[rank*local+1:], u[1:local+1])
			if rank == 0 {
				elapsed = ep.Now()
			}
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}

	ref := serial()
	maxErr := 0.0
	for i := 1; i <= cells; i++ {
		if e := math.Abs(result[i] - ref[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("%d nodes x %d cells, %d Jacobi iterations with FM halo exchange\n",
		nodes, local, iters)
	fmt.Printf("traffic structure: workload pattern %q, %d messages per run\n",
		pattern.Name(), workload.Total(pattern, nodes))
	fmt.Printf("max deviation from serial solution: %.3e (must be ~0)\n", maxErr)
	fmt.Printf("virtual time: %v (%.1f us/iteration including 2 halos + barrier)\n",
		elapsed, elapsed.Microseconds()/iters)
	st := c.Fab.Stats()
	fmt.Printf("network: %d packets, avg payload %.0f B — the short-message regime FM targets\n",
		st.Packets, float64(st.PayloadBytes)/float64(st.Packets))
	if maxErr > 1e-12 {
		panic("parallel result diverged from serial reference")
	}
}
