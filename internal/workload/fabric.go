package workload

import (
	"fmt"

	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

// FabricSpec names one topology a pattern can be driven over. Build
// constructs a fresh fabric on the caller's kernel; every driver call
// gets its own simulation.
type FabricSpec struct {
	Name     string
	Switches int
	Build    func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric
}

// Geometry splits n nodes into equal groups for the multi-switch
// topologies: groupSize is the largest power of two dividing n that
// does not exceed sqrt(n), so 64 nodes become 8 groups of 8.
func Geometry(n int) (groupSize, groups int) {
	groupSize = 1
	for v := 2; v*v <= n; v *= 2 {
		if n%v == 0 {
			groupSize = v
		}
	}
	return groupSize, n / groupSize
}

// ClosGeometry derives the full-bisection Clos sizing for n nodes:
// spines = leaves = groups, and the switch port count that accommodates
// both roles. It is the single source of Clos sizing — the raw-fabric,
// FM-layer, and scale-sweep legs all measure the same topology.
func ClosGeometry(n int) (spines, leaves, nodesPerLeaf, ports int) {
	g, groups := Geometry(n)
	return groups, groups, g, g + groups
}

// CrossbarSpec is the ideal fabric: all n nodes on one n-port switch.
func CrossbarSpec(n int) FabricSpec {
	return FabricSpec{Name: "crossbar", Switches: 1,
		Build: func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
			return myrinet.NewCrossbar(k, p, n, n)
		}}
}

// LineSpec is a line of crossbars: Geometry(n) groups joined by single
// trunk links, so the bisection is one trunk pair.
func LineSpec(n int) FabricSpec {
	g, groups := Geometry(n)
	return FabricSpec{Name: "line", Switches: groups,
		Build: func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
			return myrinet.NewLine(k, p, groups, g, g+2)
		}}
}

// ClosSpec is the full-bisection 2-level Clos at n nodes (spines =
// leaves), sized by ClosGeometry.
func ClosSpec(n int) FabricSpec {
	spines, leaves, g, ports := ClosGeometry(n)
	return FabricSpec{Name: "clos", Switches: spines + leaves,
		Build: func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
			return myrinet.NewClos(k, p, spines, leaves, g, ports)
		}}
}

// Specs returns the three standard topologies at n nodes, in
// comparison order: crossbar, line, Clos.
func Specs(n int) []FabricSpec {
	return []FabricSpec{CrossbarSpec(n), LineSpec(n), ClosSpec(n)}
}

// RouteHint estimates how many distinct route-cache entries a pattern
// with the given message count can demand on this fabric. The cache is
// keyed (source switch, destination node), so switches x nodes bounds
// it from the geometry side, and a sparse pattern cannot demand more
// entries than it has messages. Drivers pass the result to
// myrinet.Fabric.HintRoutes so the demand-filled cache is sized once
// instead of rehash-growing while the simulation runs.
func (s FabricSpec) RouteHint(nodes, messages int) int {
	hint := s.Switches * nodes
	if messages < hint {
		hint = messages
	}
	return hint
}

// String renders the spec for diagnostics.
func (s FabricSpec) String() string {
	return fmt.Sprintf("%s (%d switches)", s.Name, s.Switches)
}
