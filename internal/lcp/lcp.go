// Package lcp implements the LANai Control Program: the firmware loop the
// paper analyzes in Section 4.2 (Figure 2) and refines through Sections
// 4.3-4.5.
//
// The LCP runs as a simulated process that charges LANai instruction time
// per step of the loop. Two loop organizations are provided, matching
// Figure 2: baseline (alternate one send, one receive per trip) and
// streamed (consolidated checks; drain sends, then drain receives). On
// top of the loop, options select where outbound frames come from (the
// host send queue for hybrid, host-DMA pulls for all-DMA, or an on-card
// synthetic generator for the LANai-to-LANai experiments), whether
// received frames are DMAed onward to the host, whether the LCP performs
// per-packet interpretation (the Figure 7 switch() experiment), and
// whether host-bound packets are aggregated into single DMA transfers.
package lcp

import (
	"fmt"

	"fm/internal/lanai"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

// Source selects where the LCP obtains outbound frames.
type Source int

const (
	// FromSendQueue: the host PIO-copies frames directly into the LANai
	// send queue (the hybrid architecture, Section 4.3).
	FromSendQueue Source = iota
	// FromHostDMA: frames are staged in the host DMA region and pulled
	// by the LANai's host-DMA engine (the all-DMA architecture).
	FromHostDMA
	// Synthetic: frames are generated from a fixed on-card buffer (the
	// Figure 3 LANai-to-LANai experiments; "never getting it to the
	// hosts").
	Synthetic
)

// Options configures one control program instance.
type Options struct {
	// Streamed selects the Figure 2(b) loop; false selects 2(a).
	Streamed bool
	// Interpret adds the per-packet switch() cost in the receive inner
	// loop (Section 4.4, Figure 7).
	Interpret bool
	// Source selects the outbound frame source.
	Source Source
	// HostDelivery routes received frames into the LANai receive queue
	// and DMAs them onward to the host receive queue. When false,
	// received frames are handed to OnReceive (Fig. 3 mode).
	HostDelivery bool
	// Aggregate allows multiple received frames per host DMA transfer
	// (Section 4.4: matching queue structures "allows short messages to
	// be aggregated in DMA operations"). Ignored unless HostDelivery.
	Aggregate bool
	// ExtraInstrPerPacket charges additional LANai instructions on every
	// send and receive, modeling the Myrinet API's heavier firmware.
	ExtraInstrPerPacket int
	// OnReceive consumes frames in non-HostDelivery mode. It runs in
	// process context at zero cost; drivers use it for LANai-level
	// ping-pong and counting. The frame is recycled to the fabric's
	// packet pool when OnReceive returns: it must not retain the packet
	// or its payload (copy what it needs, like an FM handler).
	OnReceive func(p *myrinet.Packet)
	// SynthDst is the destination node for synthetic frames.
	SynthDst int
}

// Stats exposes per-LCP activity counters.
type Stats struct {
	Loops     uint64 // passes around the main loop
	IdleWakes uint64 // times the loop found nothing and slept
}

// LCP is a running control program.
type LCP struct {
	d     *lanai.Device
	o     Options
	stats Stats
	batch []*myrinet.Packet // host-DMA staging scratch, reused per batch
}

// Start spawns the control program process on d.
func Start(d *lanai.Device, o Options) *LCP {
	return StartAt(new(LCP), d, o)
}

// StartAt is Start in caller-provided storage (the cluster layer's
// per-node stack arena): the control-program process spawns on the
// device's kernel exactly as Start does.
func StartAt(l *LCP, d *lanai.Device, o Options) *LCP {
	*l = LCP{d: d, o: o}
	d.K.Spawn(fmt.Sprintf("lcp%d", d.ID), l.run)
	return l
}

// Stats returns a copy of the loop counters.
func (l *LCP) Stats() Stats { return l.stats }

// sendReady reports whether the send channel has work.
func (l *LCP) sendReady() bool {
	switch l.o.Source {
	case FromSendQueue:
		return !l.d.SendQ.Empty()
	case FromHostDMA:
		return !l.d.HostOutQ.Empty()
	default:
		return l.d.SyntheticPending()
	}
}

// recvReady reports whether a frame is available on the receive channel
// and there is room to put it.
func (l *LCP) recvReady() bool {
	if !l.d.RxAvailable() {
		return false
	}
	if l.o.HostDelivery && l.d.RecvQ.Full() {
		return false
	}
	return true
}

// sendOne performs one send step: charge loop instructions, obtain the
// frame, set up the outgoing-channel DMA, and spool the frame out.
func (l *LCP) sendOne(p *sim.Proc) {
	d := l.d
	P := d.P
	instr := P.LCPStreamedSendInstr
	if !l.o.Streamed {
		instr = P.LCPBaselineSendInstr
	}
	instr += l.o.ExtraInstrPerPacket
	p.Sleep(P.Instr(instr))

	var pkt *myrinet.Packet
	switch l.o.Source {
	case FromSendQueue:
		pkt = d.SendQ.Peek()
	case FromHostDMA:
		// Fetch and decode the descriptor, then pull the frame across
		// the bus before it can be spooled to the channel.
		p.Sleep(P.Instr(P.LCPHostDMASetupInstr) + P.DMASetup)
		var ready sim.Time
		pkt, ready = d.PullFromHost()
		p.SleepUntil(ready)
	default:
		pkt = d.NextSynthetic(l.o.SynthDst)
	}

	p.Sleep(P.DMASetup)
	done := d.Inject(pkt)
	p.SleepUntil(done)

	if l.o.Source == FromSendQueue {
		// The slot is reusable once the tail has left the card; the
		// lanaisent counter advances and a blocked host may resume.
		d.SendQ.Pop()
		d.SendFreed.Pulse()
	}
}

// recvOne performs one receive step: charge loop instructions (plus
// interpretation if configured), re-arm the incoming engine, and move the
// frame to the receive queue or the synthetic consumer.
func (l *LCP) recvOne(p *sim.Proc) {
	d := l.d
	P := d.P
	instr := P.LCPStreamedRecvInstr
	if !l.o.Streamed {
		instr = P.LCPBaselineRecvInstr
	}
	if l.o.Interpret {
		instr += P.LCPInterpretInstr
	}
	instr += l.o.ExtraInstrPerPacket
	p.Sleep(P.Instr(instr))
	p.Sleep(P.DMASetup)

	pkt := d.PopRx()
	if l.o.HostDelivery {
		d.RecvQ.Push(pkt)
	} else {
		// Fig. 3 mode: the frame dies on the card. Recycle it once the
		// consumer has seen it.
		if l.o.OnReceive != nil {
			l.o.OnReceive(pkt)
		}
		d.Fab.Release(pkt)
	}
}

// deliverReady reports whether a host DMA can be issued now.
func (l *LCP) deliverReady(p *sim.Proc) bool {
	d := l.d
	return l.o.HostDelivery && !d.RecvQ.Empty() &&
		d.HostRecvFree() > 0 && d.HostDMAFreeAt() <= p.Now()
}

// deliverBatch DMAs undelivered packets to the host receive queue: "the
// LCP DMAs all undelivered packets to the host memory" in one transfer
// when aggregation is on (Section 4.4).
func (l *LCP) deliverBatch(p *sim.Proc) {
	d := l.d
	P := d.P
	p.Sleep(P.Instr(P.LCPHostDMASetupInstr) + P.DMASetup)
	n := d.RecvQ.Len()
	if free := d.HostRecvFree(); n > free {
		n = free
	}
	if !l.o.Aggregate {
		n = 1
	}
	if n == 0 {
		return // space vanished while we paid setup; retry next trip
	}
	l.batch = l.batch[:0]
	for i := 0; i < n; i++ {
		l.batch = append(l.batch, d.RecvQ.Pop())
	}
	d.DeliverToHost(l.batch) // the device copies the batch out
}

// run is the main loop (Figure 2). It never returns; the kernel unwinds
// the process at teardown.
func (l *LCP) run(p *sim.Proc) {
	d := l.d
	for {
		l.stats.Loops++
		progress := false

		for l.sendReady() {
			l.sendOne(p)
			progress = true
			if !l.o.Streamed {
				break
			}
		}

		for l.recvReady() {
			l.recvOne(p)
			progress = true
			if !l.o.Streamed {
				break
			}
		}

		if l.deliverReady(p) {
			l.deliverBatch(p)
			progress = true
		}

		if !progress {
			l.stats.IdleWakes++
			p.Wait(d.Work)
			// Waking models the tail of one polling trip: the change is
			// noticed after a partial pass around the loop.
			p.Sleep(d.P.Instr(d.P.LCPIdleRecheckInstr))
		}
	}
}
