package core

import (
	"encoding/binary"
	"fmt"
	"slices"

	"fm/internal/cost"
	"fm/internal/host"
	"fm/internal/lanai"
	"fm/internal/myrinet"
	"fm/internal/ring"
	"fm/internal/sim"
	"fm/internal/stats"
)

// Handler consumes a delivered message at the destination, running on the
// receiving host's process during Extract. The payload buffer "does not
// persist beyond the return of the handler" (Section 3.1): handlers must
// copy data they want to keep. Handlers may send; preventing deadlock is
// the programmer's responsibility, as in FM 1.0. (A type alias so any
// messaging layer with the same shape satisfies shared interfaces.)
type Handler = func(src int, payload []byte)

// Stats counts endpoint-level protocol activity.
type Stats struct {
	Sent            uint64 // data packets given to the network (incl. retransmits)
	Delivered       uint64 // data packets handed to handlers
	AcksSent        uint64 // standalone ack packets emitted
	AcksPiggybacked uint64 // data packets that carried acks
	SeqsAcked       uint64 // sequence numbers this side has acknowledged
	RejectsSent     uint64 // data packets this receiver bounced
	RejectsReceived uint64 // bounced packets returned to this sender
	NetBounces      uint64 // frames the fabric itself bounced back (faults)
	Retransmits     uint64 // reject-queue resends
	Duplicates      uint64 // duplicate deliveries screened (should be 0)
	SendBlocks      uint64 // sends that had to wait for window space
}

// rejectedEntry is a returned packet parked in the reject queue awaiting
// retransmission.
type rejectedEntry struct {
	pkt     *myrinet.Packet
	retryAt sim.Time
}

// Endpoint is one node's FM interface: the host-side half of the layer,
// paired with the control program running on the node's LANai.
type Endpoint struct {
	cpu *host.CPU
	dev *lanai.Device
	cfg Config
	p   *cost.Params

	handlers []Handler

	// Send side.
	nextSeq            uint64
	outstanding        map[uint64]int // seq -> destination
	outPerDst          map[int]int    // per-destination outstanding (SlidingWindow)
	rejectQ            *ring.Ring[rejectedEntry]
	cachedSendConsumed uint64 // host's cached copy of the LANai's counter
	cachedOutConsumed  uint64 // all-DMA staging equivalent

	// Receive side. pendingAcks only holds sources with acks actually
	// pending (entries are deleted when consumed, so flushAcks never
	// scans idle peers); their seq buffers park on seqBufs for reuse.
	pendingAcks  map[int][]uint64 // src -> accepted seqs not yet acked
	seqBufs      [][]uint64       // free list of pending-ack buffers
	ackSrcs      []int            // flushAcks scratch, reused per call
	consumed     uint64           // packets popped from the host receive queue
	consumedSync uint64           // last value pushed to the LANai register

	// Exactly-once screen (CheckInvariants) / duplicate counting.
	seen map[int]map[uint64]bool

	stats Stats
	// latency records network-injection-to-handler delivery time for
	// every data packet this endpoint delivers, including the tail that
	// rejection and retransmission add.
	latency stats.Histogram
}

// New creates the endpoint for one node. The caller starts the matching
// control program with lcp.Start(dev, cfg.LCPOptions(p)).
func New(cpu *host.CPU, dev *lanai.Device, cfg Config, p *cost.Params) *Endpoint {
	return NewAt(new(Endpoint), cpu, dev, cfg, p)
}

// NewAt is New in caller-provided storage (the cluster layer's per-node
// stack arena).
func NewAt(ep *Endpoint, cpu *host.CPU, dev *lanai.Device, cfg Config, p *cost.Params) *Endpoint {
	*ep = Endpoint{
		cpu:         cpu,
		dev:         dev,
		cfg:         cfg,
		p:           p,
		handlers:    make([]Handler, cfg.MaxHandlers),
		outstanding: make(map[uint64]int),
		outPerDst:   make(map[int]int),
		// Twice the window: receiver rejects are covered by the window
		// reservation (Section 4.5), but fabric fault bounces can also
		// return Acks, which hold no window slot. Ring capacity is
		// timing-neutral, so faultless runs are unchanged.
		rejectQ:     ring.New[rejectedEntry](fmt.Sprintf("host%d.reject", dev.ID), cfg.WindowSlots*2),
		pendingAcks: make(map[int][]uint64),
		seen:        make(map[int]map[uint64]bool),
	}
	return ep
}

// NodeID returns this endpoint's node number.
func (ep *Endpoint) NodeID() int { return ep.dev.ID }

// Config returns the layer configuration.
func (ep *Endpoint) Config() Config { return ep.cfg }

// Stats returns a copy of the protocol counters.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// LatencyHistogram exposes the delivery-latency distribution (first
// network injection to handler dispatch) of packets received here.
func (ep *Endpoint) LatencyHistogram() *stats.Histogram { return &ep.latency }

// Outstanding returns the number of unacknowledged packets in flight.
func (ep *Endpoint) Outstanding() int { return len(ep.outstanding) }

// Now returns the current virtual time.
func (ep *Endpoint) Now() sim.Time { return ep.cpu.Now() }

// CPU exposes the host processor (examples charge compute time on it).
func (ep *Endpoint) CPU() *host.CPU { return ep.cpu }

// RegisterHandler installs h at handler index id.
func (ep *Endpoint) RegisterHandler(id int, h Handler) {
	if id < 0 || id >= len(ep.handlers) {
		panic(fmt.Sprintf("fm: handler id %d out of range (max %d)", id, len(ep.handlers)-1))
	}
	ep.handlers[id] = h
}

// EncodeWords packs four 32-bit words into an FM_send_4 payload.
func EncodeWords(w0, w1, w2, w3 uint32) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint32(buf[0:], w0)
	binary.LittleEndian.PutUint32(buf[4:], w1)
	binary.LittleEndian.PutUint32(buf[8:], w2)
	binary.LittleEndian.PutUint32(buf[12:], w3)
	return buf
}

// DecodeWords unpacks an FM_send_4 payload.
func DecodeWords(payload []byte) (w0, w1, w2, w3 uint32) {
	_ = payload[15]
	return binary.LittleEndian.Uint32(payload[0:]),
		binary.LittleEndian.Uint32(payload[4:]),
		binary.LittleEndian.Uint32(payload[8:]),
		binary.LittleEndian.Uint32(payload[12:])
}

// Send4 is FM_send_4: an extremely short four-word message (Table 1).
func (ep *Endpoint) Send4(dst, handler int, w0, w1, w2, w3 uint32) {
	if err := ep.Send(dst, handler, EncodeWords(w0, w1, w2, w3)); err != nil {
		panic(err) // 16 bytes always fit any legal frame size
	}
}

// Send is FM_send: a message of up to 32 words (one frame). It blocks the
// host process until the data has been moved off the user buffer (the
// host is the data mover in hybrid mode), which is when FM_send returns
// in FM 1.0. Larger messages require segmentation (package stream).
func (ep *Endpoint) Send(dst, handler int, payload []byte) error {
	if len(payload) > ep.cfg.FramePayload {
		return fmt.Errorf("fm: payload %d exceeds frame size %d (use stream for segmentation)",
			len(payload), ep.cfg.FramePayload)
	}
	if dst == ep.NodeID() {
		return fmt.Errorf("fm: self-send not supported")
	}
	if handler < 0 || handler >= len(ep.handlers) {
		return fmt.Errorf("fm: handler id %d out of range", handler)
	}

	ep.cpu.Advance(ep.p.HostSendCall)

	pkt := ep.newPacket()
	pkt.Dst = dst
	pkt.Type = myrinet.Data
	pkt.Handler = handler
	pkt.SetPayload(payload) // the layer copies data off the user buffer

	if ep.cfg.FlowControl {
		ep.cpu.Advance(ep.p.HostFlowControlSend)
		ep.waitWindow(dst)
		ep.nextSeq++
		pkt.Seq = ep.nextSeq
		ep.outstanding[pkt.Seq] = dst
		ep.outPerDst[dst]++
		if ep.cfg.PiggybackAcks {
			ep.attachAcks(pkt)
		}
	}

	ep.pushFrame(pkt)
	ep.stats.Sent++
	return nil
}

// newPacket draws a blank frame from the fabric's packet pool with this
// endpoint's source id and header size filled in. Ownership follows the
// packet: the sender hands it to the network, the receiving endpoint (or
// LCP consumer) releases it after its handler returns. See DESIGN.md
// "Performance" for the full ownership rules.
func (ep *Endpoint) newPacket() *myrinet.Packet {
	pkt := ep.dev.Fab.NewPacket()
	pkt.Src = ep.NodeID()
	pkt.HeaderBytes = ep.p.FMHeaderBytes
	return pkt
}

// release recycles a fully consumed packet to the fabric's pool.
func (ep *Endpoint) release(pkt *myrinet.Packet) { ep.dev.Fab.Release(pkt) }

// waitWindow blocks until an outstanding slot toward dst is free,
// processing the network while waiting (acknowledgements arrive through
// Extract). Under return-to-sender the limit is the total reject-region
// reservation; under a sliding window it is the per-destination window.
func (ep *Endpoint) waitWindow(dst int) {
	for ep.windowFull(dst) {
		ep.stats.SendBlocks++
		ep.Extract()
		if ep.windowFull(dst) && !ep.HasIncoming() {
			ep.cpu.Wait(ep.dev.HostRecvAvail)
		}
	}
}

// windowFull reports whether another send toward dst must wait.
func (ep *Endpoint) windowFull(dst int) bool {
	if ep.cfg.Protocol == SlidingWindow {
		return ep.outPerDst[dst] >= ep.cfg.WindowPerDest
	}
	return len(ep.outstanding) >= ep.cfg.WindowSlots
}

// queueAck records an accepted sequence for a future acknowledgement and
// returns how many are now pending toward src. New sources draw their
// seq buffer from the free list.
func (ep *Endpoint) queueAck(src int, seq uint64) int {
	buf, ok := ep.pendingAcks[src]
	if !ok {
		if n := len(ep.seqBufs) - 1; n >= 0 {
			buf = ep.seqBufs[n]
			ep.seqBufs[n] = nil
			ep.seqBufs = ep.seqBufs[:n]
		}
	}
	buf = append(buf, seq)
	ep.pendingAcks[src] = buf
	return len(buf)
}

// takeAcks removes and returns src's pending seqs, parking the buffer on
// the free list (the caller must finish with the slice before the next
// queueAck can hand it out again — coalesce copies it immediately).
func (ep *Endpoint) takeAcks(src int) []uint64 {
	seqs := ep.pendingAcks[src]
	if len(seqs) == 0 {
		return nil
	}
	delete(ep.pendingAcks, src)
	ep.seqBufs = append(ep.seqBufs, seqs[:0])
	return seqs
}

// attachAcks piggybacks every pending acknowledgement for pkt.Dst.
func (ep *Endpoint) attachAcks(pkt *myrinet.Packet) {
	seqs := ep.takeAcks(pkt.Dst)
	if len(seqs) == 0 {
		return
	}
	ep.cpu.Advance(ep.p.HostAckBuild)
	pkt.Acks = coalesce(pkt.Acks[:0], seqs)
	ep.stats.AcksPiggybacked++
	ep.stats.SeqsAcked += uint64(len(seqs))
}

// pushFrame moves one frame to the LANai via the configured SBus
// architecture, blocking for space as needed.
func (ep *Endpoint) pushFrame(pkt *myrinet.Packet) {
	if ep.cfg.SBusMode == AllDMA {
		ep.pushFrameAllDMA(pkt)
		return
	}
	// Hybrid (Section 4.3): the host copies the frame directly into the
	// LANai send queue and updates the hostsent counter — one
	// synchronization, no memory-to-memory copy.
	if ep.cfg.BufferMgmt {
		ep.cpu.Advance(ep.p.HostBufMgmtSend)
		ep.ensureSpace(ep.dev.SendQ, &ep.cachedSendConsumed)
	} else {
		for ep.dev.SendQ.Full() {
			ep.cpu.Wait(ep.dev.SendFreed)
		}
	}
	ep.cpu.PIOWrite(pkt.WireBytes())
	ep.dev.SendQ.Push(pkt)
	ep.cpu.ControlWrite() // hostsent++
	ep.dev.HostDoorbell()
}

// pushFrameAllDMA stages the frame in the DMA region for the LANai's
// host-DMA engine to pull: a memory-to-memory copy plus two
// synchronizations (Section 4.3's all-DMA architecture).
func (ep *Endpoint) pushFrameAllDMA(pkt *myrinet.Packet) {
	if ep.cfg.BufferMgmt {
		ep.cpu.Advance(ep.p.HostBufMgmtSend)
		ep.ensureSpace(ep.dev.HostOutQ, &ep.cachedOutConsumed)
	} else {
		for ep.dev.HostOutQ.Full() {
			ep.cpu.Wait(ep.dev.SendFreed)
		}
	}
	ep.cpu.Memcpy(pkt.WireBytes())
	ep.dev.HostOutQ.Push(pkt)
	ep.cpu.ControlWrite() // message pointer
	ep.cpu.ControlWrite() // send trigger
	ep.cpu.StatusRead()   // second synchronization: confirm acceptance
	ep.dev.HostDoorbell()
}

// ensureSpace implements the paper's cached-counter protocol: the host
// owns the produced counter and caches the LANai's consumed counter,
// paying an expensive SBus status read only when its cached view says the
// queue is full ("allowing each to own its respective counter reduces the
// amount of synchronization", Section 4.4).
func (ep *Endpoint) ensureSpace(q *ring.Ring[*myrinet.Packet], cached *uint64) {
	for {
		if q.Produced()-*cached < uint64(q.Cap()) {
			if !q.Full() {
				return
			}
			// Cached view was stale in the unsafe direction; fall
			// through to refresh. (Cannot happen with a single producer,
			// kept for defense.)
		}
		ep.cpu.StatusRead()
		*cached = q.Consumed()
		if !q.Full() {
			return
		}
		ep.cpu.Wait(ep.dev.SendFreed)
	}
}

// coalesce turns a set of sequence numbers into sorted inclusive ranges,
// appending to dst (pass dst[:0] to reuse a packet's ack buffer). seqs is
// sorted in place; the caller is discarding it.
func coalesce(dst []myrinet.SeqRange, seqs []uint64) []myrinet.SeqRange {
	slices.Sort(seqs)
	for _, s := range seqs {
		if n := len(dst); n > 0 && dst[n-1].Hi+1 == s {
			dst[n-1].Hi = s
			continue
		}
		dst = append(dst, myrinet.SeqRange{Lo: s, Hi: s})
	}
	return dst
}
