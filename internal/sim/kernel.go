package sim

import (
	"fmt"
	"sort"
)

// Kernel is the event loop at the heart of a simulation. It owns the
// virtual clock and the event queue and coordinates process scheduling.
// A Kernel (and everything scheduled on it) must be driven from a single
// goroutine; process goroutines are synchronized internally so that only
// one of them is ever runnable at a time.
//
// Scheduling is symmetric: there is no dedicated scheduler goroutine
// that every process handoff must bounce through. Whichever goroutine
// holds control — the Run caller initially, afterwards whichever process
// last blocked — drives the event loop itself (see drive), and hands the
// baton directly to the next process to wake. A process-to-process
// switch therefore costs one channel rendezvous instead of two, and a
// process whose own wake event is next continues without any rendezvous
// at all. Event order is untouched: the queue pops in the same (at, seq)
// order regardless of which goroutine is driving.
type Kernel struct {
	now     Time
	q       ladder
	seq     uint64
	horizon Time
	stopped bool
	failure error

	// wake is the deferred process-resume slot: the rare event callbacks
	// that wake a process from inside arbitrary code (WaitTimeout's
	// timer, via requestWake) record it here, and the drive loop
	// performs the actual baton handoff in tail position. The hot wake
	// form is a nil-fn event handled directly by drive. At most one
	// event callback runs at a time and each wakes at most one process,
	// so a single slot suffices.
	wake *Proc

	// yield is the handoff channel on which the goroutine that completes
	// (or tears down) a run returns control to the Run caller. It is
	// unbuffered: every transfer is a strict rendezvous.
	yield chan struct{}

	// parked holds processes blocked on a Signal (as opposed to a timed
	// sleep, which keeps a pending event alive). Stop uses it to unwind
	// their goroutines.
	parked map[*Proc]struct{}

	procs     int // live process count
	nextProc  int
	trace     *Trace
	eventsRun uint64
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsRun reports how many events the kernel has executed, which is a
// useful determinism fingerprint in tests.
func (k *Kernel) EventsRun() uint64 { return k.eventsRun }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) At(t Time, fn func()) {
	k.AtArg(t, callClosure, fn)
}

// AtArg schedules fn(arg) at absolute time t. This is the
// allocation-free form of At: hot schedule sites pass a package-level
// function and a pointer argument instead of building a closure per
// event. arg must not be retained by the caller in a way that outlives
// the event unless that is intended.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	if e := (event{at: t, seq: k.seq, fn: fn, arg: arg}); !k.q.pushFast(e) {
		k.q.pushSlow(e)
	}
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now.Add(d), fn)
}

// AfterArg schedules fn(arg) to run d after the current time (the
// allocation-free form of After).
func (k *Kernel) AfterArg(d Duration, fn func(any), arg any) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.AtArg(k.now.Add(d), fn, arg)
}

// drive outcomes.
const (
	// driveHanded: the baton went to another process; the calling
	// goroutine must park (or exit, if its process has terminated).
	driveHanded = iota
	// driveSelf: the next event resumed the driving process itself; it
	// simply keeps running — no rendezvous happened.
	driveSelf
	// driveDone: the run is complete (queue empty, horizon reached, or a
	// failure recorded); control belongs back with the Run caller.
	driveDone
)

// drive executes events until the run completes or a process other than
// self must be resumed, in which case it sends the baton and returns
// driveHanded. self is the process whose goroutine is driving (nil for
// the Run caller or a terminated process); a wake addressed to self
// returns driveSelf without any channel traffic.
//
// Process wakes appear in two forms: as wake events (fn == nil, arg =
// *Proc — the hot form Sleep, Pulse, and Spawn schedule, handled here
// without any dispatch), and as the deferred wake slot filled by event
// callbacks (WaitTimeout's timer).
//
// Events sharing a timestamp drain in an inner batch loop: the clock is
// written once and the horizon is not re-checked, because an event at
// time t can only be followed at t by events that were already in order
// behind it (including any it schedules itself, which take later seq
// numbers and sort behind pending same-instant events exactly as they
// did under the binary heap).
func (k *Kernel) drive(self *Proc) int {
	q := &k.q
	for {
		if p := k.wake; p != nil {
			k.wake = nil
			if p == self {
				return driveSelf
			}
			p.resume <- struct{}{}
			return driveHanded
		}
		if k.failure != nil || q.count == 0 {
			return driveDone
		}
		if q.PeekAt() > k.horizon {
			return driveDone
		}
		// Hand-inlined pops: PeekAt has refilled the near tier for the
		// first, NextIsAt guarantees a pending event for the rest.
		e := q.near[q.head]
		q.head++
		q.count--
		if q.head >= nearKeep && q.head*2 >= len(q.near) {
			q.maintainNear()
		}
		k.now = e.at
		for {
			k.eventsRun++
			if e.fn == nil {
				p := e.arg.(*Proc)
				if p == self {
					return driveSelf
				}
				p.resume <- struct{}{}
				return driveHanded
			}
			e.call()
			if k.wake != nil || k.failure != nil || !q.NextIsAt(k.now) {
				break
			}
			e = q.near[q.head]
			q.head++
			q.count--
			if q.head >= nearKeep && q.head*2 >= len(q.near) {
				q.maintainNear()
			}
		}
	}
}

// scheduleWake schedules the hot-form wake event for p at absolute time
// t: fn == nil marks it for direct handoff in the drive loop.
func (k *Kernel) scheduleWake(t Time, p *Proc) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling wake at %v before now %v", t, k.now))
	}
	k.seq++
	if e := (event{at: t, seq: k.seq, arg: p}); !k.q.pushFast(e) {
		k.q.pushSlow(e)
	}
}

// requestWake records p for resumption by the drive loop. Event
// callbacks must use this instead of touching the process directly so
// the handoff happens in tail position, after the callback has returned.
func (k *Kernel) requestWake(p *Proc) {
	if k.wake != nil {
		panic("sim: one event woke two processes")
	}
	k.wake = p
}

// Run executes events until the queue is empty or the horizon is reached,
// then unwinds any processes still parked on signals. horizon may be
// MaxTime for an unbounded run. It returns the first process failure, if
// any process panicked.
func (k *Kernel) Run(horizon Time) error {
	k.Step(horizon)
	k.stopParked()
	return k.failure
}

// RunAll is Run with an unbounded horizon.
func (k *Kernel) RunAll() error { return k.Run(MaxTime) }

// Step executes events up to and including horizon, leaving every
// process and pending event intact so the run can be continued with a
// later horizon. It is the windowed form of Run that the shard runtime
// drives barrier-to-barrier; a completed sequence of Steps must end
// with Finish to unwind parked processes. It returns the first process
// failure, if any.
func (k *Kernel) Step(horizon Time) error {
	k.horizon = horizon
	if k.drive(nil) == driveHanded {
		// The baton is out with the processes; park until whichever
		// goroutine completes the window hands it back.
		<-k.yield
	}
	return k.failure
}

// Finish ends a Step sequence: it unwinds any processes still parked on
// signals or timed sleeps, exactly as Run does after its horizon, and
// returns the first recorded failure.
func (k *Kernel) Finish() error {
	k.stopParked()
	return k.failure
}

// NextEventAt returns the time of the earliest pending event, with ok
// false when the queue is empty. The shard runtime uses it to pick each
// window's base time.
func (k *Kernel) NextEventAt() (Time, bool) {
	if k.q.Len() == 0 {
		return 0, false
	}
	return k.q.PeekAt(), true
}

// stopParked wakes every process blocked on a signal with the stop
// sentinel so its goroutine can exit. Timed sleepers are abandoned (their
// wake events were drained or are beyond the horizon); their goroutines
// are released the same way if their events remain.
func (k *Kernel) stopParked() {
	k.stopped = true
	for len(k.parked) > 0 {
		// Deterministic order: lowest process id first.
		ps := make([]*Proc, 0, len(k.parked))
		for p := range k.parked {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
		for _, p := range ps {
			if _, still := k.parked[p]; still {
				delete(k.parked, p)
				k.rendezvous(p)
			}
		}
	}
	// Any remaining timed sleepers still hold pending wake events; run
	// them so the goroutines observe stopped and unwind.
	for k.q.Len() > 0 {
		e := k.q.Pop()
		// Do not advance the clock during teardown. A failed run can
		// leave stale wakes for processes that already unwound (e.g. a
		// Pulse drained here naming a dead waiter); skip those — a dead
		// process's goroutine is gone and cannot take a rendezvous.
		if e.fn == nil {
			if p := e.arg.(*Proc); !p.dead {
				k.rendezvous(p)
			}
			continue
		}
		e.call()
		if p := k.wake; p != nil {
			k.wake = nil
			if !p.dead {
				k.rendezvous(p)
			}
		}
	}
}

// rendezvous transfers control to p and waits for it to give control
// back on the yield channel. It is the teardown-path handoff: during a
// run, transfers go through drive instead, which does not take control
// back.
func (k *Kernel) rendezvous(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// fail records the first process failure; the run loop stops on the next
// iteration.
func (k *Kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
}
