package core_test

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
)

// The complete Table 1 API: FM_send_4, FM_send, FM_extract, on a
// two-workstation Myrinet cluster.
func Example() {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())

	got := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, payload []byte) {
			w0, w1, w2, w3 := core.DecodeWords(payload)
			fmt.Printf("four words from node %d: %d %d %d %d\n", src, w0, w1, w2, w3)
			got++
		})
		ep.RegisterHandler(1, func(src int, payload []byte) {
			fmt.Printf("message from node %d: %s\n", src, payload)
			got++
		})
		for got < 2 {
			ep.WaitIncoming()
			ep.Extract() // FM_extract: dequeue and run handlers
		}
	})
	c.Start(0, func(ep *core.Endpoint) {
		ep.Send4(1, 0, 1, 2, 3, 4)                // FM_send_4
		_ = ep.Send(1, 1, []byte("one FM frame")) // FM_send
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	// Output:
	// four words from node 0: 1 2 3 4
	// message from node 0: one FM frame
}

// Handlers may send: an echo service in one handler, as in Active
// Messages — but without FM imposing request-reply coupling.
func ExampleEndpoint_Send() {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())

	c.Start(1, func(ep *core.Endpoint) {
		served := false
		ep.RegisterHandler(0, func(src int, payload []byte) {
			_ = ep.Send(src, 0, append(payload, '!')) // reply from inside the handler
			served = true
		})
		for !served {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, payload []byte) {
			fmt.Printf("echoed: %s\n", payload)
		})
		_ = ep.Send(1, 0, []byte("hello"))
		for ep.Stats().Delivered == 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	// Output:
	// echoed: hello!
}
