package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fm/internal/sim"
)

func TestSeriesWindowMembership(t *testing.T) {
	s := NewSeries(10 * sim.Microsecond)
	// Window bounds are half-open: [0,10us) is window 0, t=10us opens
	// window 1.
	s.Arrival(0)
	s.Arrival(sim.Time(10*sim.Microsecond) - 1)
	s.Arrival(sim.Time(10 * sim.Microsecond))
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Window(0).Offered != 2 || s.Window(1).Offered != 1 {
		t.Errorf("offered = %d,%d, want 2,1", s.Window(0).Offered, s.Window(1).Offered)
	}
	if s.Start(1) != sim.Time(10*sim.Microsecond) {
		t.Errorf("start(1) = %v", s.Start(1))
	}
}

func TestSeriesGrowsWithEmptyWindows(t *testing.T) {
	s := NewSeries(sim.Microsecond)
	s.Delivery(sim.Time(5*sim.Microsecond)+1, 3*sim.Microsecond, 128)
	if s.Len() != 6 {
		t.Fatalf("len = %d, want 6 (five empty windows plus the hit)", s.Len())
	}
	for i := 0; i < 5; i++ {
		w := s.Window(i)
		if w.Offered != 0 || w.Delivered != 0 || w.Lat.Count() != 0 {
			t.Errorf("window %d not empty", i)
		}
		// Empty-window percentiles are zeros, not panics.
		if w.Lat.Percentile(0.99) != 0 {
			t.Errorf("window %d p99 = %v", i, w.Lat.Percentile(0.99))
		}
	}
	w := s.Window(5)
	if w.Delivered != 1 || w.Bytes != 128 || w.Lat.Count() != 1 {
		t.Errorf("delivery window wrong: %+v", w)
	}
}

func TestSeriesInFlightBacklog(t *testing.T) {
	s := NewSeries(sim.Microsecond)
	// Three arrivals in window 0, one delivery in window 1, two in
	// window 3: the backlog curve is 3, 2, 2, 0.
	for i := 0; i < 3; i++ {
		s.Arrival(sim.Time(i) * 100)
	}
	s.Delivery(sim.Time(sim.Microsecond), sim.Microsecond, 64)
	s.Delivery(sim.Time(3*sim.Microsecond), 3*sim.Microsecond, 64)
	s.Delivery(sim.Time(3*sim.Microsecond)+5, 3*sim.Microsecond, 64)
	want := []int64{3, 2, 2, 0}
	for i, w := range want {
		if got := s.InFlight(i); got != w {
			t.Errorf("InFlight(%d) = %d, want %d", i, got, w)
		}
	}
	// Past the end the backlog stays at its final value.
	if got := s.InFlight(10); got != 0 {
		t.Errorf("InFlight(10) = %d, want 0", got)
	}
}

func TestSeriesRetransmitsZeroNoop(t *testing.T) {
	s := NewSeries(sim.Microsecond)
	s.Retransmits(sim.Time(100*sim.Microsecond), 0)
	if s.Len() != 0 {
		t.Error("zero retransmits extended the series")
	}
	s.Retransmits(sim.Time(2*sim.Microsecond), 7)
	if s.Len() != 3 || s.Window(2).Retrans != 7 {
		t.Error("retransmit attribution wrong")
	}
}

func TestSeriesTotals(t *testing.T) {
	s := NewSeries(sim.Microsecond)
	s.Arrival(0)
	s.Arrival(sim.Time(4 * sim.Microsecond))
	s.Delivery(sim.Time(2*sim.Microsecond), sim.Microsecond, 100)
	s.Retransmits(sim.Time(3*sim.Microsecond), 2)
	off, del, bytes, retr := s.Totals()
	if off != 2 || del != 1 || bytes != 100 || retr != 2 {
		t.Errorf("totals = %d,%d,%d,%d", off, del, bytes, retr)
	}
}

func TestSeriesWidthMismatchPanics(t *testing.T) {
	a := NewSeries(sim.Microsecond)
	b := NewSeries(2 * sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("expected width-mismatch panic")
		}
	}()
	a.Merge(b)
}

func TestSeriesNegativeInstantPanics(t *testing.T) {
	s := NewSeries(sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("expected negative-instant panic")
		}
	}()
	s.Arrival(-1)
}

func TestSeriesZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected zero-width panic")
		}
	}()
	NewSeries(0)
}

// seriesEvent is one randomized sample for the partition/merge property.
type seriesEvent struct {
	kind    int // 0 arrival, 1 delivery, 2 retransmits
	at      sim.Time
	sojourn sim.Duration
	bytes   int
	n       uint64
}

func applyEvent(s *Series, e seriesEvent) {
	switch e.kind {
	case 0:
		s.Arrival(e.at)
	case 1:
		s.Delivery(e.at, e.sojourn, e.bytes)
	default:
		s.Retransmits(e.at, e.n)
	}
}

func seriesEqual(a, b *Series) bool {
	if a.Width() != b.Width() || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if *a.Window(i) != *b.Window(i) {
			return false
		}
	}
	return true
}

// TestSeriesMergePartition pins the property the sharded soak pipeline
// leans on: partition a random event stream into k sub-streams (the
// "per-shard" views), window each independently, then merge the parts
// in random order — the result must equal the Series of the whole
// stream exactly, windows, histograms, backlog curve and all.
func TestSeriesMergePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := sim.Duration(1+rng.Intn(50)) * sim.Microsecond
		n := 200 + rng.Intn(800)
		events := make([]seriesEvent, n)
		horizon := int64(2 * sim.Millisecond)
		for i := range events {
			events[i] = seriesEvent{
				kind:    rng.Intn(3),
				at:      sim.Time(rng.Int63n(horizon)),
				sojourn: sim.Duration(rng.Int63n(int64(sim.Millisecond))),
				bytes:   rng.Intn(4096),
				n:       uint64(rng.Intn(5)),
			}
		}

		whole := NewSeries(width)
		for _, e := range events {
			applyEvent(whole, e)
		}

		k := 1 + rng.Intn(8)
		parts := make([]*Series, k)
		for i := range parts {
			parts[i] = NewSeries(width)
		}
		for _, e := range events {
			applyEvent(parts[rng.Intn(k)], e)
		}

		// Merge the parts in a random order into a fresh series.
		merged := NewSeries(width)
		for _, i := range rng.Perm(k) {
			merged.Merge(parts[i])
		}
		if !seriesEqual(whole, merged) {
			return false
		}
		// InFlight agrees at every window too (it is derived, but pin it).
		for i := 0; i < whole.Len(); i++ {
			if whole.InFlight(i) != merged.InFlight(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
