// Package rpc provides request/reply messaging over FM handlers — the
// fine-grained runtime-system use case behind the paper's third target,
// the Illinois Concert runtime, "a fine-grained programming system which
// depends critically on low-cost high performance communication"
// (Section 7).
//
// Unlike Active Messages, FM imposes no request-reply coupling (Section
// 3.1), so this layer builds its own: requests carry a correlation id,
// the service procedure runs inside the server's FM_extract, and the
// reply is sent from within the handler (FM handlers may send). Calls may
// be pipelined: Go starts a call without blocking, Call is the
// synchronous convenience.
package rpc

import (
	"encoding/binary"
	"fmt"

	"fm/internal/core"
)

// wire format: [kind u8][proc u8][reqID u64] + body
const headerBytes = 10

const (
	kindRequest = 1
	kindReply   = 2
)

// Proc is a service procedure: it receives the caller's node id and the
// argument bytes and returns the reply bytes. It runs on the server's
// host process during Extract, so its cost should be charged by the
// application via the endpoint's CPU if it models real work.
type Proc func(src int, args []byte) []byte

// Call is an in-flight request.
type Call struct {
	peer  *Peer
	id    uint64
	done  bool
	reply []byte
}

// Done reports whether the reply has arrived.
func (c *Call) Done() bool { return c.done }

// Wait pumps the messaging layer until the reply arrives and returns it.
func (c *Call) Wait() []byte {
	for !c.done {
		c.peer.ep.WaitIncoming()
		c.peer.ep.Extract()
	}
	return c.reply
}

// Peer is one node's RPC engine: client and server at once.
type Peer struct {
	ep      *core.Endpoint
	handler int
	procs   map[uint8]Proc
	pending map[uint64]*Call
	nextID  uint64
	served  uint64
}

// New attaches an RPC peer to ep, owning FM handler id h.
func New(ep *core.Endpoint, h int) *Peer {
	p := &Peer{
		ep:      ep,
		handler: h,
		procs:   make(map[uint8]Proc),
		pending: make(map[uint64]*Call),
	}
	ep.RegisterHandler(h, p.onMessage)
	return p
}

// Register installs a service procedure under id proc.
func (p *Peer) Register(proc uint8, fn Proc) { p.procs[proc] = fn }

// Served returns how many requests this peer has serviced.
func (p *Peer) Served() uint64 { return p.served }

// MaxArgs returns the largest argument/reply size a single-frame call can
// carry.
func (p *Peer) MaxArgs() int { return p.ep.Config().FramePayload - headerBytes }

// Go starts a call without waiting for the reply.
func (p *Peer) Go(dst int, proc uint8, args []byte) (*Call, error) {
	if len(args) > p.MaxArgs() {
		return nil, fmt.Errorf("rpc: args %d exceed frame capacity %d", len(args), p.MaxArgs())
	}
	p.nextID++
	call := &Call{peer: p, id: p.nextID}
	p.pending[call.id] = call
	if err := p.send(dst, kindRequest, proc, call.id, args); err != nil {
		delete(p.pending, call.id)
		return nil, err
	}
	return call, nil
}

// Call performs a synchronous request and returns the reply.
func (p *Peer) Call(dst int, proc uint8, args []byte) ([]byte, error) {
	c, err := p.Go(dst, proc, args)
	if err != nil {
		return nil, err
	}
	return c.Wait(), nil
}

// Poll services any received traffic without blocking (server pump).
func (p *Peer) Poll() { p.ep.Extract() }

// ServeUntil pumps the layer until stop returns true (server main loop).
func (p *Peer) ServeUntil(stop func() bool) {
	for !stop() {
		p.ep.WaitIncoming()
		p.ep.Extract()
	}
}

func (p *Peer) send(dst int, kind, proc uint8, id uint64, body []byte) error {
	frame := make([]byte, headerBytes+len(body))
	frame[0] = kind
	frame[1] = proc
	binary.LittleEndian.PutUint64(frame[2:], id)
	copy(frame[headerBytes:], body)
	return p.ep.Send(dst, p.handler, frame)
}

func (p *Peer) onMessage(src int, payload []byte) {
	if len(payload) < headerBytes {
		panic("rpc: runt message")
	}
	kind, proc := payload[0], payload[1]
	id := binary.LittleEndian.Uint64(payload[2:])
	body := payload[headerBytes:]
	switch kind {
	case kindRequest:
		fn, ok := p.procs[proc]
		if !ok {
			panic(fmt.Sprintf("rpc: node %d has no procedure %d", p.ep.NodeID(), proc))
		}
		p.served++
		reply := fn(src, body)
		if len(reply) > p.MaxArgs() {
			panic(fmt.Sprintf("rpc: reply %d exceeds frame capacity %d", len(reply), p.MaxArgs()))
		}
		if err := p.send(src, kindReply, proc, id, reply); err != nil {
			panic(fmt.Sprintf("rpc: reply to %d: %v", src, err))
		}
	case kindReply:
		call, ok := p.pending[id]
		if !ok {
			panic(fmt.Sprintf("rpc: unmatched reply id %d on node %d", id, p.ep.NodeID()))
		}
		delete(p.pending, id)
		// The FM buffer dies with the handler: copy the reply out.
		call.reply = append([]byte(nil), body...)
		call.done = true
	default:
		panic(fmt.Sprintf("rpc: unknown message kind %d", kind))
	}
}
