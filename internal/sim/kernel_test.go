package sim

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30*Time(Nanosecond), func() { got = append(got, 3) })
	k.At(10*Time(Nanosecond), func() { got = append(got, 1) })
	k.At(20*Time(Nanosecond), func() { got = append(got, 2) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*Time(Nanosecond) {
		t.Fatalf("final time = %v", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(Time(Microsecond), func() { got = append(got, i) })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-instant events not FIFO: %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(Time(Microsecond), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var stamps []Time
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			stamps = append(stamps, p.Now())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Time{10 * Time(Microsecond), 20 * Time(Microsecond), 30 * Time(Microsecond)} {
		if stamps[i] != want {
			t.Fatalf("stamp[%d] = %v, want %v", i, stamps[i], want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		order = append(order, "a10")
		p.Sleep(20 * Nanosecond) // wakes at 30
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20 * Nanosecond)
		order = append(order, "b20")
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalPulseWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	woke := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Wait(s)
			woke++
		})
	}
	k.After(Microsecond, s.Pulse)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestSignalNoMemory(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	s.Pulse() // no waiters: lost
	woke := false
	k.Spawn("w", func(p *Proc) {
		ok := p.WaitTimeout(s, 5*Microsecond)
		woke = ok
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke {
		t.Fatal("waiter observed a pulse that happened before it waited")
	}
	if k.Now() != 5*Time(Microsecond) {
		t.Fatalf("timeout did not advance clock to 5us: %v", k.Now())
	}
}

func TestWaitTimeoutSignaledFirst(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	var ok bool
	var at Time
	k.Spawn("w", func(p *Proc) {
		ok = p.WaitTimeout(s, 100*Microsecond)
		at = p.Now()
	})
	k.After(3*Microsecond, s.Pulse)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected signal before timeout")
	}
	if at != 3*Time(Microsecond) {
		t.Fatalf("woke at %v, want 3us", at)
	}
}

func TestWaitTimeoutThenLaterPulseHarmless(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	wakes := 0
	k.Spawn("w", func(p *Proc) {
		if p.WaitTimeout(s, Microsecond) {
			t.Error("unexpected signal")
		}
		wakes++
		p.Wait(s) // wait again; the later pulse should wake exactly once
		wakes++
	})
	k.After(10*Microsecond, s.Pulse)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
}

func TestWaitFor(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s")
	counter := 0
	k.Spawn("w", func(p *Proc) {
		p.WaitFor(s, func() bool { return counter >= 3 })
		if p.Now() != 3*Time(Microsecond) {
			t.Errorf("condition met at %v, want 3us", p.Now())
		}
	})
	for i := 1; i <= 3; i++ {
		k.At(Time(i)*Time(Microsecond), func() { counter++; s.Pulse() })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if counter != 3 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	var ends []Time
	for i := 0; i < 3; i++ {
		k.Spawn("u", func(p *Proc) {
			p.Use(r, 10*Microsecond)
			ends = append(ends, p.Now())
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Time(Microsecond), 20 * Time(Microsecond), 30 * Time(Microsecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.BusyTime() != 30*Microsecond {
		t.Fatalf("busy = %v", r.BusyTime())
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestResourceReserveNonBlocking(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dma")
	k.At(0, func() {
		s1, e1 := r.Reserve(5 * Microsecond)
		s2, e2 := r.Reserve(5 * Microsecond)
		if s1 != 0 || e1 != 5*Time(Microsecond) {
			t.Errorf("first grant [%v,%v]", s1, e1)
		}
		if s2 != 5*Time(Microsecond) || e2 != 10*Time(Microsecond) {
			t.Errorf("second grant [%v,%v]", s2, e2)
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicSurfaces(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	err := k.RunAll()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

// TestCallbackPanicAttribution pins failure blame under symmetric
// scheduling: a panic inside a plain event callback that happens to run
// on a driving process's goroutine must be reported as a callback
// failure, not as that process panicking.
func TestCallbackPanicAttribution(t *testing.T) {
	k := NewKernel()
	k.Spawn("innocent", func(p *Proc) { p.Sleep(10 * Microsecond) })
	k.At(Time(Microsecond), func() { panic("callback boom") })
	err := k.RunAll()
	if err == nil {
		t.Fatal("expected error from panicking callback")
	}
	if !strings.Contains(err.Error(), "event callback panicked") {
		t.Fatalf("callback panic misattributed: %v", err)
	}
}

func TestStopUnwindsParkedProcs(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "never")
	cleaned := false
	k.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Wait(s) // never pulsed; Run teardown must unwind this goroutine
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("parked process was not unwound")
	}
}

// TestDeterminism runs a randomized workload twice from the same seed and
// requires identical schedules.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, Time, int) {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		s := NewSignal(k, "s")
		r := NewResource(k, "r")
		total := 0
		for i := 0; i < 20; i++ {
			d := Duration(rng.Intn(1000)+1) * Nanosecond
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(d)
					p.Use(r, d/2+1)
					total++
					s.Pulse()
				}
			})
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return k.EventsRun(), k.Now(), total
	}
	e1, t1, n1 := run(42)
	e2, t2, n2 := run(42)
	if e1 != e2 || t1 != t2 || n1 != n2 {
		t.Fatalf("nondeterministic: (%d,%v,%d) vs (%d,%v,%d)", e1, t1, n1, e2, t2, n2)
	}
}

// ladderKey is the (at, seq) order key the ladder oracle sorts by.
type ladderKey struct {
	at  Time
	seq uint64
}

func sortKeys(keys []ladderKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].at != keys[j].at {
			return keys[i].at < keys[j].at
		}
		return keys[i].seq < keys[j].seq
	})
}

// TestLadderProperty checks the ladder queue against a sort-based oracle
// (the successor of the seed's TestHeapProperty): for random push sets
// the queue must pop in exact (at, seq) order. The time mask keeps many
// equal timestamps in play so seq tie-breaking is exercised, and the
// population sizes cross the spill/split thresholds so far-tier paths
// run too.
func TestLadderProperty(t *testing.T) {
	f := func(times []int64) bool {
		var q ladder
		var keys []ladderKey
		for i, ti := range times {
			at := Time(ti & 0xFFFFF) // small, non-negative, heavy on ties
			q.Push(event{at: at, seq: uint64(i)})
			keys = append(keys, ladderKey{at, uint64(i)})
		}
		sortKeys(keys)
		for _, want := range keys {
			if q.PeekAt() != want.at {
				return false
			}
			got := q.Pop()
			if got.at != want.at || got.seq != want.seq {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLadderPushDuringPop drains a randomized queue while concurrently
// pushing new events at or after the current pop time — the kernel's
// actual access pattern (event callbacks scheduling follow-ups) — and
// checks the merged sequence against the oracle. Pushes land on every
// side of bucket-split and near-tier boundaries, including exact
// same-timestamp ties with in-flight events.
func TestLadderPushDuringPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var q ladder
		var pending []ladderKey
		var seq uint64
		push := func(at Time) {
			seq++
			q.Push(event{at: at, seq: seq})
			pending = append(pending, ladderKey{at, seq})
		}
		// Seed population: wide spread to build rungs plus dense ties.
		n := 200 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			push(Time(rng.Int63n(1 << (10 + rng.Intn(30)))))
		}
		var got []ladderKey
		for q.Len() > 0 {
			e := q.Pop()
			got = append(got, ladderKey{e.at, e.seq})
			// Schedule follow-ups relative to the current instant, as
			// event callbacks do: same-instant ties, near-future, and
			// far-future beyond any existing tier boundary.
			if rng.Intn(3) == 0 && len(got) < 3*n {
				switch rng.Intn(4) {
				case 0:
					push(e.at) // same-timestamp tie: must pop after equal-at pending
				case 1:
					push(e.at + Time(rng.Int63n(64)))
				case 2:
					push(e.at + Time(rng.Int63n(1<<20)))
				default:
					push(e.at + Time(rng.Int63n(1<<40)))
				}
			}
		}
		sortKeys(pending)
		if len(got) != len(pending) {
			t.Fatalf("trial %d: popped %d of %d events", trial, len(got), len(pending))
		}
		for i := range pending {
			if got[i] != pending[i] {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got[i], pending[i])
			}
		}
	}
}

// TestLadderSameInstantBurst pins the pure tie-breaking path: a large
// burst at one instant (well past the spill threshold) must come back in
// seq order, and a second burst pushed mid-drain must follow the first.
func TestLadderSameInstantBurst(t *testing.T) {
	var q ladder
	const at = Time(12345)
	for i := 0; i < 3000; i++ {
		q.Push(event{at: at, seq: uint64(i)})
	}
	for i := 0; i < 1500; i++ {
		if e := q.Pop(); e.at != at || e.seq != uint64(i) {
			t.Fatalf("pop %d = (%v, %d)", i, e.at, e.seq)
		}
	}
	for i := 3000; i < 3100; i++ {
		q.Push(event{at: at, seq: uint64(i)})
	}
	for i := 1500; i < 3100; i++ {
		if e := q.Pop(); e.at != at || e.seq != uint64(i) {
			t.Fatalf("pop %d = (%v, %d)", i, e.at, e.seq)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestLadderSplitBoundaries forces the lazy bucket-split machinery
// (population just above splitThreshold packed into one coarse bucket)
// and verifies exact order across the split boundaries.
func TestLadderSplitBoundaries(t *testing.T) {
	var q ladder
	var keys []ladderKey
	var seq uint64
	push := func(at Time) {
		seq++
		q.Push(event{at: at, seq: seq})
		keys = append(keys, ladderKey{at, seq})
	}
	// Overflow the near tier with a wide spread: the spill carves a rung
	// with coarse buckets (width ~ span/rungBuckets).
	for i := 0; i <= nearSpill; i++ {
		push(Time(1_000_000 + i*10_000))
	}
	// Then land a dense cluster — more than splitThreshold events across
	// a few distinct timestamps — inside a single coarse bucket of that
	// rung. Its first touch during the drain must split it into a finer
	// rung.
	for i := 0; i < 4*splitThreshold; i++ {
		push(Time(1_800_000 + i%100))
	}
	sortKeys(keys)
	for i, want := range keys {
		got := q.Pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("pop %d = (%v,%d), want (%v,%d)", i, got.at, got.seq, want.at, want.seq)
		}
	}
	if q.splits == 0 {
		t.Fatal("workload never exercised a bucket split")
	}
	if q.spills == 0 {
		t.Fatal("workload never exercised a near-tier spill")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{12500 * Picosecond, "12.5ns"},
		{3500 * Nanosecond, "3.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(10 * Microsecond)
	b := a.Add(5 * Microsecond)
	if b.Sub(a) != 5*Microsecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
	if Ns(12).Nanoseconds() != 12 {
		t.Fatal("Ns")
	}
	if Us(3) != 3*Microsecond {
		t.Fatal("Us")
	}
	if NsF(12.5) != 12500*Picosecond {
		t.Fatal("NsF")
	}
}

// countArg is a package-level event callback for the allocation test.
func countArg(a any) { *(a.(*int))++ }

// TestSteadyStateSchedulingAllocs pins the kernel's allocation
// discipline: once the event heap has reached its high-water capacity,
// scheduling and running argument-style events allocates nothing, and
// the heap's backing array is reused across Run generations.
func TestSteadyStateSchedulingAllocs(t *testing.T) {
	k := NewKernel()
	count := 0
	// Warm up the heap to its high-water mark.
	for i := 0; i < 128; i++ {
		k.AtArg(k.Now().Add(Microsecond), countArg, &count)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 128; i++ {
			k.AtArg(k.Now().Add(Microsecond), countArg, &count)
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state scheduling allocates %.1f objects per generation, want 0", allocs)
	}
}

// TestLadderExhaustedRungRouting pins the scale-sweep regression where
// an event was routed into an exhausted rung (transfer cursor at the
// end, but the rung not yet released) and silently parked behind the
// cursor, never to pop. The geometry reproduces it: a spill builds a
// coarse rung whose last bucket holds a dense cluster; touching that
// bucket splits it into a finer rung and exhausts the parent; a push
// landing between the finer rung's span and the parent's nominal end
// must then route past the exhausted parent to the top tier.
func TestLadderExhaustedRungRouting(t *testing.T) {
	var q ladder
	var keys []ladderKey
	var seq uint64
	push := func(at Time) {
		seq++
		q.Push(event{at: at, seq: seq})
		keys = append(keys, ladderKey{at, seq})
	}
	for i := 0; i <= nearSpill; i++ {
		push(Time(1_000_000 + i*10_000)) // wide spread: spill into a coarse rung
	}
	for i := 0; i < 2*splitThreshold+8; i++ {
		push(Time(2_271_000 + i%100)) // dense cluster in the rung's last bucket
	}
	var got []ladderKey
	pushedLate := false
	for q.Len() > 0 {
		e := q.Pop()
		got = append(got, ladderKey{e.at, e.seq})
		if !pushedLate && e.at >= 2_271_000 {
			// The split has happened and the parent rung is exhausted;
			// this lands past the finer rung's span (which ends just
			// above the cluster) but below the parent's nominal end.
			pushedLate = true
			push(Time(2_283_000))
		}
	}
	sortKeys(keys)
	if len(got) != len(keys) {
		t.Fatalf("popped %d of %d events (exhausted rung swallowed %d)",
			len(got), len(keys), len(keys)-len(got))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, got[i], keys[i])
		}
	}
	if q.splits == 0 {
		t.Fatal("scenario no longer exercises a bucket split; rebuild the geometry")
	}
}

// TestLadderBucketReuse extends the high-water allocation discipline to
// the ladder's far tiers: once a generation of far-future scheduling has
// grown the rungs, bucket arrays, and top tier to capacity, subsequent
// identical generations must run allocation-free — rung structs and
// bucket arrays are recycled, not reallocated.
func TestLadderBucketReuse(t *testing.T) {
	k := NewKernel()
	count := 0
	generation := func() {
		// Spread far enough apart to defeat the near tier (forcing
		// spills, rungs, and top-tier rebucketing) and big enough to
		// split buckets.
		base := k.Now()
		for i := 0; i < 3000; i++ {
			at := base.Add(Duration(1+i%7) * Microsecond * Duration(1+i%53)).Add(Duration(i) * 40 * Millisecond)
			k.AtArg(at, countArg, &count)
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	generation() // reach high-water capacity
	generation()
	allocs := testing.AllocsPerRun(10, generation)
	if allocs != 0 {
		t.Errorf("steady-state far-tier scheduling allocates %.1f objects per generation, want 0", allocs)
	}
	if k.q.transfers == 0 || k.q.spills == 0 {
		t.Fatalf("workload did not exercise the far tiers (transfers=%d spills=%d)", k.q.transfers, k.q.spills)
	}
}

// TestSignalWaitReuse exercises the embedded wait registration: a
// process that waits on two different signals in alternation must never
// see a cross-wired wake.
func TestSignalWaitReuse(t *testing.T) {
	k := NewKernel()
	a := NewSignal(k, "a")
	b := NewSignal(k, "b")
	var wokeA, wokeB int
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(a)
			wokeA++
			p.Wait(b)
			wokeB++
		}
	})
	k.Spawn("pulser", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Microsecond)
			a.Pulse()
			p.Sleep(Microsecond)
			// A stale pulse on a must not wake the waiter off b.
			a.Pulse()
			b.Pulse()
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wokeA != 10 || wokeB != 10 {
		t.Fatalf("wokeA=%d wokeB=%d, want 10/10", wokeA, wokeB)
	}
}
