// Package bench regenerates every quantitative table and figure in the
// paper's evaluation (Figures 3, 4, 7, 8, 9; Table 4; the Section 1/5
// headline numbers) plus the ablations its Discussion calls for.
//
// Each experiment sweeps packet sizes across layer configurations,
// measuring latency by 50-round ping-pong and bandwidth by streaming a
// fixed packet count, then fits the Table 2 metrics (t0, r_inf, n1/2).
// Individual simulation runs are deterministic and single-threaded; the
// harness fans independent runs out over a worker pool.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"fm/internal/metrics"
)

// Options controls sweep geometry and effort.
type Options struct {
	// Sizes is the payload sweep for FM-level experiments (the paper
	// plots 0-600 bytes).
	Sizes []int
	// APISizes extends the sweep for the Myrinet API, whose n1/2 lies in
	// the thousands of bytes.
	APISizes []int
	// Packets per bandwidth stream. The paper uses 65,535; the default
	// is smaller (converged) for quicker runs — use PaperExact for the
	// full count.
	Packets int
	// Rounds per ping-pong latency measurement (paper: 50).
	Rounds int
	// Workers bounds harness parallelism: the number of concurrent
	// measurement simulations. Results are independent of the value (see
	// pool.go); it only changes wall-clock time.
	Workers int
	// FabricNodes sizes the fabric-comparison experiment (all-to-all and
	// bisection traffic on crossbar vs. line vs. Clos).
	FabricNodes int
	// PatternNodes sizes the workload-pattern sweep (every pattern on
	// crossbar vs. line vs. Clos at raw, FM, and MPI stack levels).
	PatternNodes int
	// ScaleNodes is the Clos node-count sweep for the scale experiment.
	ScaleNodes []int
	// ScalePattern names the traffic pattern the scale sweep's raw and
	// FM legs drive (see scalePattern for the catalog; default
	// all-to-all, whose output is byte-identical to builds predating
	// the knob). The bisection leg always runs bisection traffic.
	ScalePattern string
	// Shards splits each scale-experiment simulation across this many
	// shard kernels (conservative parallel DES; DESIGN.md "Parallel
	// engine"). 1, the default, is the single-kernel path and stays
	// byte-identical to runs predating the sharded engine. Only the
	// scale experiment's 2-level Clos sweeps partition; fmbench
	// validates the value against every selected experiment (see
	// ShardSupport) before anything runs.
	Shards int
	// ShardTiming appends a per-shard runtime breakdown (events run,
	// busy wall time, barrier windows) to sharded reports. fmbench ties
	// it to -timing, so default outputs stay byte-identical.
	ShardTiming bool
	// FaultNodes sizes the faults experiment's Clos fabric (default 32).
	FaultNodes int
	// FaultSeed derives the faults experiment's random fault plan; the
	// whole plan is a pure function of the seed and the fabric shape, so
	// a seed replays byte-identically at any Workers/Shards setting.
	// Seed 0 means the empty plan (clean baseline, nothing injected).
	FaultSeed uint64
	// FaultPlan, when non-empty, is a hand-written plan in the
	// workload.ParseFaultPlan text format ("kind index startUs endUs"
	// events joined by semicolons) and overrides FaultSeed.
	FaultPlan string
	// SoakSource selects the soak experiment's open-loop arrival
	// process: "poisson" (seeded exponential interarrivals) or "fixed"
	// (strict clock, ranks phase-staggered).
	SoakSource string
	// SoakPattern names the base traffic pattern the soak source cycles
	// through (see soakBase for the catalog; default uniform-random).
	SoakPattern string
	// SoakNodes sizes the soak experiment's 2-level Clos (default 64).
	SoakNodes int
	// SoakLoads are the offered-load sweep points in MB/s per node.
	SoakLoads []float64
	// SoakHorizonUs is the arrival horizon in virtual microseconds;
	// SoakWindowUs the series window width.
	SoakHorizonUs int
	SoakWindowUs  int
	// SoakSeed derives the Poisson source's per-rank arrival streams.
	SoakSeed uint64
	// SoakDrain switches the reported span from the fixed horizon
	// (default) to the full timeline through quiescence.
	SoakDrain bool
}

// DefaultOptions returns a sweep that reproduces every curve shape in a
// few seconds of wall time.
func DefaultOptions() Options {
	return Options{
		Sizes:        []int{4, 8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 600},
		APISizes:     []int{16, 64, 128, 256, 512, 600, 1024, 2048, 3072, 4096},
		Packets:      16384,
		Rounds:       metrics.PaperPingPongRounds,
		Workers:      defaultWorkers(),
		FabricNodes:  64,
		PatternNodes: 32,
		ScaleNodes:   []int{64, 128, 256, 512, 1024, 2048, 4096},
		ScalePattern: "all-to-all",
		Shards:       1,
		FaultNodes:   32,
		FaultSeed:    1995,
		SoakSource:   "poisson",
		SoakPattern:  "uniform-random",
		SoakNodes:    64,
		// Contended 112B uniform-random traffic on clos-64 services
		// ~2-2.5 MB/s per node (per-message host overhead dominates —
		// Table 4's ~21 MB/s r_inf is a streamed pingpong figure), so
		// this ladder straddles the knee: p50/p99 are flat through
		// 1.5 MB/s and the last points sit past saturation, where the
		// windowed p99 and the horizon-bell backlog blow up.
		SoakLoads:     []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 6},
		SoakHorizonUs: 1500,
		SoakWindowUs:  150,
		SoakSeed:      1995,
	}
}

// PaperExact returns the paper's measurement lengths (65,535 packets).
func PaperExact() Options {
	o := DefaultOptions()
	o.Packets = metrics.PaperStreamPackets
	return o
}

// Curve is one plotted series: a layer configuration swept over sizes.
type Curve struct {
	Name string
	Lat  []metrics.LatPoint
	BW   []metrics.BWPoint
	Fit  metrics.Fit
	// RefRInf, when set, is the externally supplied r_inf used for this
	// curve's n1/2 (the API methodology, footnote 3).
	RefRInf float64
}

// Row is one Table 4 line: measured metrics next to the paper's.
type Row struct {
	Name    string
	T0us    float64
	RInf    float64
	NHalf   float64
	Extrap  bool
	PaperT0 string
	PaperR  string
	PaperN  string
}

// KV is one headline comparison line: a named metric, measured vs. paper.
type KV struct {
	Metric   string
	Measured string
	Paper    string
}

// Table is a free-form grid for sweep matrices that fit neither the
// Table 4 row shape nor KV pairs (the patterns experiment's
// pattern x fabric x stack-level matrix).
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// SeriesRow is one fixed-width virtual-time window of a TimeSeries.
type SeriesRow struct {
	StartUs   float64 // window opening instant
	Offered   uint64  // open-loop arrivals scheduled in the window
	Delivered uint64  // deliveries completed in the window
	MBps      float64 // delivered payload bandwidth over the window
	P50us     float64 // sojourn-latency percentiles of the window's
	P99us     float64 // deliveries (zero for an idle window)
	P999us    float64
	InFlight  int64  // backlog at window close (cumulative offered-delivered)
	Retrans   uint64 // retransmissions attributed to the window
}

// TimeSeries is one windowed timeline — the report shape streaming
// experiments render, text and CSV, alongside the batch tables.
type TimeSeries struct {
	Name    string
	WidthUs float64
	Rows    []SeriesRow
}

// Report is one regenerated figure or table.
type Report struct {
	ID     string
	Title  string
	Curves []Curve
	Rows   []Row
	KVs    []KV
	Tables []Table
	Series []TimeSeries
	Notes  []string
}

// Experiment binds an ID to its regeneration function. Desc is the
// one-line what-it-measures description `fmbench -list` prints under
// the title.
type Experiment struct {
	ID    string
	Title string
	Desc  string
	Run   func(Options) *Report
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Figure 3: LANai-to-LANai performance (baseline vs. streamed vs. theoretical peak)",
			"latency/BW size sweep on the bare LANai path, three firmware variants against the 80 MB/s link peak", Fig3},
		{"fig4", "Figure 4: Minimal host-to-host performance (hybrid vs. all-DMA SBus management)",
			"host-to-host size sweep isolating the SBus transfer policy: programmed-I/O hybrid vs. all-DMA", Fig4},
		{"fig7", "Figure 7: Host-to-host performance with buffer management (and switch() interpretation)",
			"adds receive-buffer management to fig4's path; reproduces both readings of the paper's switch() cost", Fig7},
		{"fig8", "Figure 8: Fast Messages layer performance with flow control",
			"the complete FM 1.0 API: handler dispatch plus window flow control, latency and BW vs. size", Fig8},
		{"fig9", "Figure 9: Fast Messages vs. Myricom's API",
			"FM against the vendor API it replaced, including the API's thousands-of-bytes n1/2 sweep", Fig9},
		{"table4", "Table 4: Summary of FM 1.0 performance data",
			"fits t0, r_inf, and n1/2 for every layer configuration next to the paper's published values", Table4},
		{"headline", "Headline numbers (Sections 1 and 5)",
			"the abstract's claims as one table: short-message latency, peak BW, n1/2 vs. the paper", Headline},
		{"ablations", "Ablations: frame size, flow control, DMA aggregation, ack piggybacking, hardware what-ifs",
			"design-choice sweeps the Discussion calls for, each knob toggled on the full stack", Ablations},
		{"fabrics", "Fabric scaling: all-to-all and bisection traffic on crossbar vs. line vs. Clos",
			"64-node all-to-all and bisection totals across three topologies at raw and FM stack levels (-fabric-nodes)", Fabrics},
		{"mpi", "MPI on FM: the cost of layering (tagged matching vs. raw FM, crossbar and Clos)",
			"MPI-on-FM size sweep vs. raw FM with t0/r_inf/n1/2 fits, on a crossbar and a cross-leaf Clos path", MPILayering},
		{"patterns", "Workload patterns: the traffic catalog x crossbar/line/Clos x raw/FM/MPI stack levels",
			"every traffic pattern on every fabric at every stack depth, one completion/BW/latency matrix (-pattern-nodes)", Patterns},
	}
}

// Extended returns experiments that are registered but excluded from
// All() — and therefore from `-experiment all` — because their runtime
// dwarfs the paper reproductions. Run them by id.
func Extended() []Experiment {
	return []Experiment{
		{"scale", "Clos scaling sweep: 64 to 4096 nodes, raw fabric and full FM stack (~30 min; trim with -scale-nodes)",
			"full-bisection Clos sweep driving all-to-all and bisection traffic at raw and FM levels; shards with -shards", Scale},
		{"faults", "Resilience: seeded fault injection (outages, loss, corruption) on a Clos — degraded bisection BW, retransmits, recovery (-fault-seed/-fault-plan/-fault-nodes)",
			"injects a deterministic fault plan mid-traffic and reports delivery proof, degraded BW, and recovery time", Faults},
		{"soak", "Soak: open-loop offered-load sweep with windowed time series on a Clos (-soak-*)",
			"streams Poisson or fixed-rate arrivals through the FM stack across an offered-load ladder; windowed p50/p99/p999 and backlog expose the saturation knee (-soak-source/-soak-pattern/-soak-nodes/-soak-loads/-soak-horizon-us/-soak-window-us/-soak-seed/-soak-drain; -fault-plan overlays recovery transients)", Soak},
	}
}

// Registry returns every known experiment: the paper set plus the
// extended set.
func Registry() []Experiment { return append(All(), Extended()...) }

// IDs returns every valid experiment id, in registry order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// ByID looks an experiment up; ok is false for unknown IDs.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- Output ---

// WriteText renders the report as aligned text tables.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, c := range r.Curves {
		fmt.Fprintf(w, "\n-- %s --\n", c.Name)
		fmt.Fprintf(w, "%8s  %14s  %14s\n", "bytes", "latency (us)", "bw (MB/s)")
		sizes := curveSizes(c)
		for _, n := range sizes {
			lat, hasLat := latAt(c, n)
			bw, hasBW := bwAt(c, n)
			ls, bs := "-", "-"
			if hasLat {
				ls = fmt.Sprintf("%.2f", lat)
			}
			if hasBW {
				bs = fmt.Sprintf("%.2f", bw)
			}
			fmt.Fprintf(w, "%8d  %14s  %14s\n", n, ls, bs)
		}
		if len(c.BW) >= 2 {
			fmt.Fprintf(w, "fit: t0=%.1fus  r_inf=%.1fMB/s  n1/2=%s\n",
				c.Fit.T0.Microseconds(), c.Fit.RInf, nhalfString(c.Fit))
		}
	}
	if len(r.Rows) > 0 {
		fmt.Fprintf(w, "\n%-44s %10s %10s %10s   %s\n",
			"configuration", "t0 (us)", "r_inf", "n1/2 (B)", "paper (t0 / r_inf / n1/2)")
		for _, row := range r.Rows {
			n := fmt.Sprintf("%.0f", row.NHalf)
			if row.Extrap {
				n += "*"
			}
			if math.IsInf(row.NHalf, 1) {
				n = "inf"
			}
			fmt.Fprintf(w, "%-44s %10.1f %10.1f %10s   %s / %s / %s\n",
				row.Name, row.T0us, row.RInf, n, row.PaperT0, row.PaperR, row.PaperN)
		}
		fmt.Fprintln(w, "(* = extrapolated beyond the sweep)")
	}
	if len(r.KVs) > 0 {
		fmt.Fprintf(w, "\n%-46s %16s %16s\n", "metric", "measured", "paper")
		for _, kv := range r.KVs {
			fmt.Fprintf(w, "%-46s %16s %16s\n", kv.Metric, kv.Measured, kv.Paper)
		}
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n-- %s --\n", t.Name)
		widths := make([]int, len(t.Header))
		for c, h := range t.Header {
			widths[c] = len(h)
		}
		for _, row := range t.Rows {
			for c, cell := range row {
				if c < len(widths) && len(cell) > widths[c] {
					widths[c] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for c, cell := range cells {
				if c > 0 {
					fmt.Fprint(w, "  ")
				}
				switch {
				case c >= len(widths): // ragged row: no width to pad to
					fmt.Fprint(w, cell)
				case c == 0:
					fmt.Fprintf(w, "%-*s", widths[c], cell)
				default:
					fmt.Fprintf(w, "%*s", widths[c], cell)
				}
			}
			fmt.Fprintln(w)
		}
		writeRow(t.Header)
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n-- %s (%.0fus windows) --\n", s.Name, s.WidthUs)
		fmt.Fprintf(w, "%8s %8s %10s %9s %9s %9s %9s %9s %8s\n",
			"t (us)", "offered", "delivered", "MB/s", "p50 (us)", "p99 (us)", "p999(us)", "inflight", "retrans")
		for _, row := range s.Rows {
			fmt.Fprintf(w, "%8.0f %8d %10d %9.2f %9.1f %9.1f %9.1f %9d %8d\n",
				row.StartUs, row.Offered, row.Delivered, row.MBps,
				row.P50us, row.P99us, row.P999us, row.InFlight, row.Retrans)
		}
	}
	for _, note := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes one CSV per curve plus a rows.csv into dir.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range r.Curves {
		f, err := os.Create(filepath.Join(dir, r.ID+"_"+sanitize(c.Name)+".csv"))
		if err != nil {
			return err
		}
		cw := csv.NewWriter(f)
		_ = cw.Write([]string{"bytes", "latency_us", "bandwidth_MBps"})
		for _, n := range curveSizes(c) {
			rec := []string{strconv.Itoa(n), "", ""}
			if lat, ok := latAt(c, n); ok {
				rec[1] = fmt.Sprintf("%.4f", lat)
			}
			if bw, ok := bwAt(c, n); ok {
				rec[2] = fmt.Sprintf("%.4f", bw)
			}
			_ = cw.Write(rec)
		}
		cw.Flush()
		if err := f.Close(); err != nil {
			return err
		}
	}
	if len(r.Rows) > 0 {
		f, err := os.Create(filepath.Join(dir, r.ID+"_rows.csv"))
		if err != nil {
			return err
		}
		cw := csv.NewWriter(f)
		_ = cw.Write([]string{"configuration", "t0_us", "rinf_MBps", "nhalf_bytes", "extrapolated",
			"paper_t0", "paper_rinf", "paper_nhalf"})
		for _, row := range r.Rows {
			_ = cw.Write([]string{row.Name,
				fmt.Sprintf("%.2f", row.T0us), fmt.Sprintf("%.2f", row.RInf),
				fmt.Sprintf("%.0f", row.NHalf), strconv.FormatBool(row.Extrap),
				row.PaperT0, row.PaperR, row.PaperN})
		}
		cw.Flush()
		if err := f.Close(); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		f, err := os.Create(filepath.Join(dir, r.ID+"_"+sanitize(t.Name)+".csv"))
		if err != nil {
			return err
		}
		cw := csv.NewWriter(f)
		_ = cw.Write(t.Header)
		for _, row := range t.Rows {
			_ = cw.Write(row)
		}
		cw.Flush()
		if err := f.Close(); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		f, err := os.Create(filepath.Join(dir, r.ID+"_"+sanitize(s.Name)+".csv"))
		if err != nil {
			return err
		}
		cw := csv.NewWriter(f)
		_ = cw.Write([]string{"t_us", "offered", "delivered", "MBps",
			"p50_us", "p99_us", "p999_us", "inflight", "retransmits"})
		for _, row := range s.Rows {
			_ = cw.Write([]string{
				fmt.Sprintf("%.0f", row.StartUs),
				strconv.FormatUint(row.Offered, 10),
				strconv.FormatUint(row.Delivered, 10),
				fmt.Sprintf("%.4f", row.MBps),
				fmt.Sprintf("%.4f", row.P50us),
				fmt.Sprintf("%.4f", row.P99us),
				fmt.Sprintf("%.4f", row.P999us),
				strconv.FormatInt(row.InFlight, 10),
				strconv.FormatUint(row.Retrans, 10),
			})
		}
		cw.Flush()
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func nhalfString(f metrics.Fit) string {
	if math.IsInf(f.NHalf, 1) {
		return "inf"
	}
	s := fmt.Sprintf("%.0fB", f.NHalf)
	if f.NHalfExtrapolated {
		s += "*"
	}
	return s
}

func curveSizes(c Curve) []int {
	set := map[int]bool{}
	for _, p := range c.Lat {
		set[p.N] = true
	}
	for _, p := range c.BW {
		set[p.N] = true
	}
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

func latAt(c Curve, n int) (float64, bool) {
	for _, p := range c.Lat {
		if p.N == n {
			return p.OneWay.Microseconds(), true
		}
	}
	return 0, false
}

func bwAt(c Curve, n int) (float64, bool) {
	for _, p := range c.BW {
		if p.N == n {
			return p.MBps, true
		}
	}
	return 0, false
}
