package metrics

import (
	"math"
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

func fmPair(cfg core.Config) Pair {
	c := cluster.NewFM(2, cfg, cost.Default())
	return Pair{
		A:      c.EPs[0],
		B:      c.EPs[1],
		StartA: func(app func()) { c.CPUs[0].Start(app) },
		StartB: func(app func()) { c.CPUs[1].Start(app) },
		Run:    c.Run,
	}
}

func TestPingPongProducesPlausibleLatency(t *testing.T) {
	lat, err := PingPong(fmPair(core.DefaultConfig()), 16, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Full FM one-way latency for a 4-word message should land in the
	// tens of microseconds (paper: 25 us); sanity-check the band.
	us := lat.Microseconds()
	if us < 5 || us > 80 {
		t.Errorf("one-way latency = %.2f us, expected 5-80", us)
	}
}

func TestStreamBandwidthMonotonicInSize(t *testing.T) {
	var prev float64
	for _, size := range []int{16, 64, 128} {
		_, bw, err := Stream(fmPair(core.DefaultConfig()), size, 400)
		if err != nil {
			t.Fatal(err)
		}
		if bw <= prev {
			t.Errorf("bandwidth at %dB = %.2f not above %.2f", size, bw, prev)
		}
		prev = bw
	}
	if prev > 25 {
		t.Errorf("128B bandwidth %.2f MB/s exceeds the SBus ceiling", prev)
	}
}

func TestBandwidth(t *testing.T) {
	// 1 MiB in 1 second = 1 MB/s.
	if bw := Bandwidth(MiB, 1, sim.Second); math.Abs(bw-1) > 1e-9 {
		t.Errorf("Bandwidth = %v", bw)
	}
	if Bandwidth(100, 10, 0) != 0 {
		t.Error("zero elapsed should yield 0")
	}
}

func TestFitRecoversSyntheticModel(t *testing.T) {
	// Synthesize t(N) = 4 us + N * 45 ns (i.e. r_inf ~= 21.2 MB/s).
	var pts []BWPoint
	for _, n := range []int{16, 64, 128, 256, 512} {
		per := 4*sim.Microsecond + sim.Duration(n)*sim.NsF(45)
		pts = append(pts, BWPoint{N: n, PerPacket: per, MBps: Bandwidth(n, 1, per)})
	}
	f := FitSweep(pts, 0)
	if us := f.T0.Microseconds(); math.Abs(us-4) > 0.01 {
		t.Errorf("t0 = %.3f us, want 4", us)
	}
	wantR := 1e9 / 45.0 / MiB
	if math.Abs(f.RInf-wantR) > 0.05 {
		t.Errorf("rInf = %.2f, want %.2f", f.RInf, wantR)
	}
	// Analytic n1/2 for the linear model is t0 * rInf.
	want := 4e-6 * wantR * MiB
	if math.Abs(f.NHalf-want)/want > 0.15 {
		t.Errorf("n1/2 = %.0f, want ~%.0f", f.NHalf, want)
	}
}

func TestFitNHalfExtrapolation(t *testing.T) {
	// Sweep only tiny sizes so half power is never reached; n1/2 must be
	// extrapolated and flagged.
	var pts []BWPoint
	for _, n := range []int{4, 8, 16} {
		per := 100*sim.Microsecond + sim.Duration(n)*sim.NsF(45)
		pts = append(pts, BWPoint{N: n, PerPacket: per, MBps: Bandwidth(n, 1, per)})
	}
	f := FitSweep(pts, 0)
	if !f.NHalfExtrapolated {
		t.Error("expected extrapolated n1/2")
	}
	if f.NHalf < 100e-6/45e-9*0.8 {
		t.Errorf("extrapolated n1/2 = %.0f too small", f.NHalf)
	}
}

func TestFitWithReferenceRInf(t *testing.T) {
	// The API methodology: n1/2 measured against an externally supplied
	// r_inf (footnote 3), not the fitted asymptote.
	var pts []BWPoint
	for _, n := range []int{512, 2048, 8192} {
		per := 100*sim.Microsecond + sim.Duration(n)*sim.NsF(50)
		pts = append(pts, BWPoint{N: n, PerPacket: per, MBps: Bandwidth(n, 1, per)})
	}
	fDefault := FitSweep(pts, 0)
	fRef := FitSweep(pts, 23.9)
	if fRef.NHalf <= 0 || math.IsInf(fRef.NHalf, 1) {
		t.Fatalf("reference n1/2 = %v", fRef.NHalf)
	}
	if fDefault.NHalf == fRef.NHalf {
		t.Error("reference r_inf had no effect")
	}
}

func TestInterp(t *testing.T) {
	pts := []BWPoint{{N: 0, MBps: 0}, {N: 100, MBps: 10}, {N: 200, MBps: 15}}
	if got := Interp(pts, 50); math.Abs(got-5) > 1e-9 {
		t.Errorf("Interp(50) = %v", got)
	}
	if got := Interp(pts, 150); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("Interp(150) = %v", got)
	}
	if got := Interp(pts, 999); got != 15 {
		t.Errorf("Interp beyond range = %v", got)
	}
	if got := Interp(pts, -5); got != 0 {
		t.Errorf("Interp below range = %v", got)
	}
}
