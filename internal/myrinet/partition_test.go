package myrinet

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"fm/internal/cost"
	"fm/internal/sim"
)

func TestPartitionClosAssignment(t *testing.T) {
	p := cost.Default()
	f := NewClos(sim.NewKernel(), p, 4, 8, 4, 16) // 8 leaves x 4 nodes, 4 spines
	topo := f.Topology()

	if got := topo.LeafGroups(); got != 8 {
		t.Fatalf("LeafGroups = %d, want 8", got)
	}
	if got := topo.MaxShards(); got != 8 {
		t.Fatalf("MaxShards = %d, want 8", got)
	}
	part, err := topo.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	// Leaves (switch indices 0..7) deal into contiguous blocks of two;
	// spines (8..11) deal round-robin.
	for l := 0; l < 8; l++ {
		if want := l * 4 / 8; part.SwitchShard[l] != want {
			t.Fatalf("leaf %d on shard %d, want %d", l, part.SwitchShard[l], want)
		}
	}
	for s := 0; s < 4; s++ {
		if want := s % 4; part.SwitchShard[8+s] != want {
			t.Fatalf("spine %d on shard %d, want %d", s, part.SwitchShard[8+s], want)
		}
	}
	// Nodes inherit their leaf's shard, and every shard owns some.
	counts := make([]int, 4)
	for id := 0; id < 32; id++ {
		leaf := id / 4
		if part.NodeShard[id] != part.SwitchShard[leaf] {
			t.Fatalf("node %d on shard %d, leaf %d on %d", id, part.NodeShard[id], leaf, part.SwitchShard[leaf])
		}
		counts[part.NodeShard[id]]++
	}
	for s, n := range counts {
		if n != 8 {
			t.Fatalf("shard %d owns %d nodes, want 8", s, n)
		}
	}
}

func TestPartitionRejectsUnsupportedShapes(t *testing.T) {
	p := cost.Default()

	// Crossbar: one leaf group, so only 1 shard.
	xbar := NewCrossbar(sim.NewKernel(), p, 8, 8).Topology()
	if got := xbar.MaxShards(); got != 1 {
		t.Fatalf("crossbar MaxShards = %d, want 1", got)
	}
	if _, err := xbar.Partition(2); err == nil || !strings.Contains(err.Error(), "leaf group") {
		t.Fatalf("crossbar Partition(2) error = %v, want a leaf-group bound", err)
	}

	// Line: leaf-to-leaf trunks, not two-level.
	line := NewLine(sim.NewKernel(), p, 4, 2, 4).Topology()
	if got := line.MaxShards(); got != 1 {
		t.Fatalf("line MaxShards = %d, want 1", got)
	}
	if _, err := line.Partition(2); err == nil || !strings.Contains(err.Error(), "node-hosting") {
		t.Fatalf("line Partition(2) error = %v, want the two-level explanation", err)
	}

	// Shard count beyond the leaf groups.
	clos := NewClos(sim.NewKernel(), p, 2, 4, 2, 8).Topology()
	if _, err := clos.Partition(5); err == nil || !strings.Contains(err.Error(), "supports 1..4") {
		t.Fatalf("Partition(5) on 4 leaves error = %v, want the supported range", err)
	}

	// The trivial partition always works.
	for _, topo := range []*Topology{xbar, line, clos} {
		if _, err := topo.Partition(1); err != nil {
			t.Fatalf("Partition(1) failed: %v", err)
		}
	}
}

// delivery is one observed packet arrival for trace comparison.
type delivery struct {
	src, dst int
	at       sim.Time
}

// shardedClos builds one Clos fabric replica per shard on a fresh
// ShardGroup and wires the cross-shard continuation path.
func shardedClos(p *cost.Params, shards, spines, leaves, npl, ports int) (*sim.ShardGroup, []*Fabric, *Partition) {
	g := sim.NewShardGroup(shards, p.SwitchLatency)
	fabs := make([]*Fabric, shards)
	for s := 0; s < shards; s++ {
		fabs[s] = NewClos(g.Shard(s).Kernel(), p, spines, leaves, npl, ports)
	}
	part, err := fabs[0].Topology().Partition(shards)
	if err != nil {
		panic(err)
	}
	for s := 0; s < shards; s++ {
		s := s
		fabs[s].SetShard(part, s, func(owner int, at sim.Time, pkt *Packet) {
			g.Shard(s).Post(owner, at, fabs[owner].ResumeCross, pkt)
		})
	}
	return g, fabs, part
}

// injection is one scheduled packet for the sharded-vs-single harness.
type injection struct {
	src, dst int
	at       sim.Time
	size     int
}

func runShardedClos(t *testing.T, shards int, injs []injection) []delivery {
	t.Helper()
	p := cost.Default()
	g, fabs, part := shardedClos(p, shards, 4, 8, 4, 16)
	got := make([][]delivery, shards)
	for id := 0; id < 32; id++ {
		s := part.NodeShard[id]
		f := fabs[s]
		f.Attach(id, SinkFunc(func(pkt *Packet) {
			got[s] = append(got[s], delivery{src: pkt.Src, dst: pkt.Dst, at: f.Kernel().Now()})
			f.Release(pkt)
		}))
	}
	for _, in := range injs {
		in := in
		s := part.NodeShard[in.src]
		f := fabs[s]
		g.Shard(s).Kernel().At(in.at, func() {
			pkt := f.NewPacket()
			pkt.Src, pkt.Dst, pkt.Type = in.src, in.dst, Data
			pkt.HeaderBytes = 16
			pkt.SetPayload(make([]byte, in.size))
			f.Inject(pkt)
		})
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	var all []delivery
	for _, d := range got {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	return all
}

func runSingleClos(t *testing.T, injs []injection) []delivery {
	t.Helper()
	p := cost.Default()
	k := sim.NewKernel()
	f := NewClos(k, p, 4, 8, 4, 16)
	var all []delivery
	for id := 0; id < 32; id++ {
		f.Attach(id, SinkFunc(func(pkt *Packet) {
			all = append(all, delivery{src: pkt.Src, dst: pkt.Dst, at: k.Now()})
			f.Release(pkt)
		}))
	}
	for _, in := range injs {
		in := in
		k.At(in.at, func() {
			pkt := f.NewPacket()
			pkt.Src, pkt.Dst, pkt.Type = in.src, in.dst, Data
			pkt.HeaderBytes = 16
			pkt.SetPayload(make([]byte, in.size))
			f.Inject(pkt)
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	return all
}

// TestShardedFabricMatchesSingleKernel drives uncontended random
// traffic — injections spaced so no two packets ever meet at a port —
// through 2-, 4-, and 8-shard replicas of a 32-node Clos and checks
// every delivery lands at exactly the single-kernel instant. With no
// contention, reservation order cannot matter, so any deviation is a
// timing bug in the cross-shard continuation path.
func TestShardedFabricMatchesSingleKernel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var injs []injection
		at := sim.Time(0)
		for i := 0; i < 60; i++ {
			src := rng.Intn(32)
			dst := rng.Intn(32)
			for dst == src {
				dst = rng.Intn(32)
			}
			// 100us spacing: far beyond any packet's end-to-end time.
			at = at.Add(100 * sim.Microsecond)
			injs = append(injs, injection{src: src, dst: dst, at: at, size: rng.Intn(256)})
		}
		ref := runSingleClos(t, injs)
		for _, shards := range []int{2, 4, 8} {
			got := runShardedClos(t, shards, injs)
			if len(got) != len(ref) {
				t.Fatalf("seed %d shards %d: %d deliveries, want %d", seed, shards, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("seed %d shards %d: delivery %d = %+v, single kernel %+v",
						seed, shards, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestShardedFabricDeterministic floods the fabric with same-instant
// contended traffic and requires repeated sharded runs to agree
// delivery for delivery — the determinism invariant for any fixed
// shard count.
func TestShardedFabricDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var injs []injection
	for round := 0; round < 4; round++ {
		for src := 0; src < 32; src++ {
			dst := rng.Intn(32)
			for dst == src {
				dst = rng.Intn(32)
			}
			injs = append(injs, injection{src: src, dst: dst, at: 0, size: 112})
		}
	}
	a := runShardedClos(t, 4, injs)
	b := runShardedClos(t, 4, injs)
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) != len(injs) {
		t.Fatalf("delivered %d of %d packets", len(a), len(injs))
	}
}
