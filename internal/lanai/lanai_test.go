package lanai

import (
	"testing"

	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sbus"
	"fm/internal/sim"
)

func newDev(t *testing.T, qc QueueConfig) (*sim.Kernel, *Device) {
	t.Helper()
	k := sim.NewKernel()
	p := cost.Default()
	fab := myrinet.NewCrossbar(k, p, 2, 8)
	d := New(k, p, sbus.New(k, p, "bus"), fab, 0, qc)
	New(k, p, sbus.New(k, p, "bus1"), fab, 1, qc) // peer sink
	return k, d
}

func TestMemoryBudgetEnforced(t *testing.T) {
	qc := DefaultQueues(616)
	qc.SendSlots = 200
	qc.RecvSlots = 200 // 400 * 616 B ~= 246 KB > 128 KB
	defer func() {
		if recover() == nil {
			t.Error("oversized queues did not panic")
		}
	}()
	newDev(t, qc)
}

func TestDefaultQueuesFitAnyPaperFrame(t *testing.T) {
	for _, frame := range []int{16, 144, 616, 1040} {
		qc := DefaultQueues(frame)
		if fp := qc.lanaiFootprint(); fp > MemoryBytes {
			t.Errorf("frame %d: footprint %d exceeds card memory", frame, fp)
		}
	}
}

func TestArriveBackpressure(t *testing.T) {
	qc := DefaultQueues(144)
	qc.ChannelSlots = 2
	k, d := newDev(t, qc)
	k.At(0, func() {
		for i := 0; i < 5; i++ {
			d.Arrive(&myrinet.Packet{Src: 1, Dst: 0, Seq: uint64(i), HeaderBytes: 16})
		}
		if !d.RxAvailable() {
			t.Error("expected staged packets")
		}
	})
	k.At(sim.Time(sim.Us(1)), func() {
		// Pops admit the stalled arrivals in order.
		for i := 0; i < 5; i++ {
			if got := d.PopRx().Seq; got != uint64(i) {
				t.Errorf("pop %d returned seq %d", i, got)
			}
		}
		if d.RxAvailable() {
			t.Error("channel should be empty")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().NetStalls != 3 {
		t.Errorf("stalls = %d, want 3", d.Stats().NetStalls)
	}
}

func TestHostRecvFreeIsConservative(t *testing.T) {
	qc := DefaultQueues(144)
	qc.HostRecvSlots = 4
	k, d := newDev(t, qc)
	k.At(0, func() {
		if d.HostRecvFree() != 4 {
			t.Errorf("initial free = %d", d.HostRecvFree())
		}
		d.DeliverToHost([]*myrinet.Packet{{Src: 1, Dst: 0, HeaderBytes: 16}})
		d.DeliverToHost([]*myrinet.Packet{{Src: 1, Dst: 0, HeaderBytes: 16}})
		// Two delivered, host has not refreshed its counter.
		if d.HostRecvFree() != 2 {
			t.Errorf("free = %d, want 2", d.HostRecvFree())
		}
		d.HostUpdateRecvConsumed(2)
		if d.HostRecvFree() != 4 {
			t.Errorf("free after refresh = %d, want 4", d.HostRecvFree())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverToHostCompletionAndOrder(t *testing.T) {
	k, d := newDev(t, DefaultQueues(144))
	p1 := &myrinet.Packet{Src: 1, Dst: 0, Seq: 1, HeaderBytes: 16, Payload: make([]byte, 100)}
	p2 := &myrinet.Packet{Src: 1, Dst: 0, Seq: 2, HeaderBytes: 16}
	var end sim.Time
	k.At(0, func() {
		end = d.DeliverToHost([]*myrinet.Packet{p1, p2})
		if !d.HostRecvQ.Empty() {
			t.Error("packets visible before DMA completion")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 116 + 16 wire bytes at the SBus DMA rate plus startup.
	want := sim.Time(d.P.SBusDMATime(132))
	if end != want {
		t.Errorf("completion at %v, want %v", end, want)
	}
	if d.HostRecvQ.Len() != 2 || d.HostRecvQ.Pop().Seq != 1 {
		t.Error("delivery order broken")
	}
	if d.Stats().HostDMABatches != 1 || d.Stats().HostDMAPackets != 2 {
		t.Errorf("stats = %+v", d.Stats())
	}
}

func TestDeliverEmptyBatchPanics(t *testing.T) {
	k, d := newDev(t, DefaultQueues(144))
	k.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("empty batch did not panic")
			}
		}()
		d.DeliverToHost(nil)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPullFromHostFreesStagingOnCompletion(t *testing.T) {
	k, d := newDev(t, DefaultQueues(144))
	pkt := &myrinet.Packet{Src: 0, Dst: 1, HeaderBytes: 16, Payload: make([]byte, 64)}
	freed := false
	k.Spawn("watch", func(pr *sim.Proc) {
		pr.Wait(d.SendFreed)
		freed = true
		if !d.HostOutQ.Empty() {
			t.Error("staging not freed at pulse")
		}
	})
	k.At(0, func() {
		d.HostOutQ.Push(pkt)
		got, ready := d.PullFromHost()
		if got != pkt {
			t.Error("pulled wrong packet")
		}
		if ready != sim.Time(d.P.SBusDMATime(80)) {
			t.Errorf("ready at %v", ready)
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !freed {
		t.Error("SendFreed never pulsed")
	}
}

func TestSyntheticGenerator(t *testing.T) {
	k, d := newDev(t, DefaultQueues(144))
	k.At(0, func() {
		d.SetSynthetic(2, 32)
		if !d.SyntheticPending() {
			t.Fatal("no synthetic work")
		}
		p := d.NextSynthetic(1)
		if p.Dst != 1 || len(p.Payload) != 32 || p.HeaderBytes != d.P.FMHeaderBytes {
			t.Errorf("synthetic packet %+v", p)
		}
		d.NextSynthetic(1)
		if d.SyntheticPending() {
			t.Error("count not exhausted")
		}
		d.AddSynthetic(1)
		if !d.SyntheticPending() {
			t.Error("AddSynthetic had no effect")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}
