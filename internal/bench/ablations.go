package bench

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/sim"
	"fm/internal/workload"
)

// Ablations regenerates the design-choice studies the paper's Discussion
// and Conclusion call for:
//
//   - A1 frame size: "it may be most advantageous to pick frame sizes
//     which deliver 80-90% of the achievable bandwidth" (Section 5) —
//     the justification for FM 1.0's 128-byte frame.
//   - A2 flow control: return-to-sender vs. a traditional sliding window
//     under a multi-sender hotspot (Section 5 future study), including
//     the receiver-memory scaling argument.
//   - A3 hardware what-ifs: burst-mode PIO across the MBus-SBus
//     interface and a faster LANai (Section 6's "two minor changes").
//   - A4 DMA aggregation: matching queue structures lets short messages
//     share host-DMA transfers (Section 4.4).
//   - A5 ack piggybacking (Section 4.5).
func Ablations(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "ablations", Title: "Design-choice ablations"}

	var frameKVs, flowKVs, hwRows, aggKVs, ackKVs any
	jobs := []func(){
		func() { frameKVs = frameSizeStudy(p, opt) },
		func() { flowKVs = flowControlStudy(p, opt) },
		func() { hwRows = hardwareStudy(p, opt) },
		func() { aggKVs = aggregationStudy(p, opt) },
		func() { ackKVs = piggybackStudy(p, opt) },
	}
	runParallel(opt.Workers, jobs)

	r.KVs = append(r.KVs, frameKVs.([]KV)...)
	r.KVs = append(r.KVs, flowKVs.([]KV)...)
	r.KVs = append(r.KVs, aggKVs.([]KV)...)
	r.KVs = append(r.KVs, ackKVs.([]KV)...)
	r.Rows = hwRows.([]Row)
	return r
}

// frameSizeStudy locates the frame sizes achieving 80% and 90% of peak
// bandwidth on the full FM layer.
func frameSizeStudy(p *cost.Params, opt Options) []KV {
	sizes := []int{16, 32, 64, 128, 192, 256, 384, 512, 768, 1024}
	c := hostCurve("FM frame sweep", fmMaker(cfgFullFM(), p), sizes, serial(opt), false, 0)
	find := func(frac float64) int {
		target := c.Fit.RInf * frac
		for _, pt := range c.BW {
			if pt.MBps >= target {
				return pt.N
			}
		}
		return sizes[len(sizes)-1]
	}
	n80, n90 := find(0.8), find(0.9)
	bw128 := metrics.Interp(c.BW, 128)
	return []KV{
		{"A1 frame size for 80% of peak bandwidth (B)", fmt.Sprintf("%d", n80), "~128 (FM 1.0's choice)"},
		{"A1 frame size for 90% of peak bandwidth (B)", fmt.Sprintf("%d", n90), "few hundred"},
		{"A1 bandwidth at 128B frames (MB/s)", fmt.Sprintf("%.1f (%.0f%% of peak)", bw128, 100*bw128/c.Fit.RInf), "16.2 (~80%)"},
	}
}

// hotspotResult summarizes one multi-sender hotspot run.
type hotspotResult struct {
	elapsed     sim.Duration
	rejects     uint64
	retransmits uint64
	maxQueue    int
}

// hotspot drives `senders` nodes streaming at one slow receiver (node
// 0) — the workload incast pattern generates the traffic; the receiver
// stays hand-built because the study samples flow-control internals
// (queue depth, rejects) no generic driver exposes.
func hotspot(cfg core.Config, p *cost.Params, senders, packets, size int, recvDelay sim.Duration) hotspotResult {
	c := cluster.NewFM(senders+1, cfg.WithFrame(size), p)
	pattern := workload.Incast{Target: 0, Packets: packets}
	total := workload.Total(pattern, senders+1)
	got := 0
	maxQ := 0
	c.Start(0, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(int, []byte) {
			got++
			if recvDelay > 0 {
				ep.CPU().Advance(recvDelay)
			}
		})
		for got < total {
			ep.WaitIncoming()
			if q := c.Devs[0].HostRecvQ.Len(); q > maxQ {
				maxQ = q
			}
			ep.Extract()
		}
		ep.Extract()
	})
	for s := 1; s <= senders; s++ {
		sends := pattern.Gen(s, senders+1)
		c.Start(s, func(ep *core.Endpoint) {
			buf := make([]byte, size)
			for _, snd := range sends {
				if err := ep.Send(snd.Dst, 0, buf); err != nil {
					panic(err)
				}
			}
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	if got != total {
		panic(fmt.Sprintf("hotspot delivered %d/%d", got, total))
	}
	res := hotspotResult{elapsed: sim.Duration(c.K.Now()), maxQueue: maxQ}
	res.rejects = c.EPs[0].Stats().RejectsSent
	for s := 1; s <= senders; s++ {
		res.retransmits += c.EPs[s].Stats().Retransmits
	}
	return res
}

// flowControlStudy compares return-to-sender against a sliding window on
// a 4-senders-1-receiver hotspot with a slow consumer, and states the
// buffer-memory scaling argument quantitatively.
func flowControlStudy(p *cost.Params, opt Options) []KV {
	const senders = 4
	const size = 128
	packets := opt.Packets / 16
	if packets > 2048 {
		packets = 2048
	}
	delay := 12 * sim.Microsecond

	rts := cfgFullFM()
	rts.DrainLimit = 8
	rts.HostRecvSlots = 64
	rts.RejectThreshold = 48
	win := rts
	win.Protocol = core.SlidingWindow
	win.WindowPerDest = 16
	win.HostRecvSlots = senders*win.WindowPerDest + 8 // per-sender reservation
	win.RejectThreshold = 0

	a := hotspot(rts, p, senders, packets, size, delay)
	b := hotspot(win, p, senders, packets, size, delay)

	// Receiver pinned-buffer requirement: constant for return-to-sender
	// (the reject queue lives at the *senders*), linear in senders for
	// windows. Scale the comparison to the paper's context.
	frame := size + p.FMHeaderBytes
	winMem := func(n int) int { return n * win.WindowPerDest * frame }
	return []KV{
		{"A2 hotspot throughput, return-to-sender (MB/s)",
			fmt.Sprintf("%.1f", metrics.Bandwidth(size, senders*packets, a.elapsed)), "-"},
		{"A2 hotspot throughput, sliding window (MB/s)",
			fmt.Sprintf("%.1f", metrics.Bandwidth(size, senders*packets, b.elapsed)), "-"},
		{"A2 rejects+retransmits (RTS)", fmt.Sprintf("%d+%d", a.rejects, a.retransmits), ">0 under overload"},
		{"A2 rejects (window — must be zero)", fmt.Sprintf("%d", b.rejects), "0"},
		{"A2 receiver pinned memory, window, 4 senders (B)", fmt.Sprintf("%d", winMem(senders)), "grows with senders"},
		{"A2 receiver pinned memory, window, 64 senders (B)", fmt.Sprintf("%d", winMem(64)), "grows with senders"},
		{"A2 receiver pinned memory, RTS, any senders (B)", fmt.Sprintf("%d", rts.HostRecvSlots*frame), "constant"},
	}
}

// hardwareStudy refits the full FM layer under the Conclusion's two
// hardware improvements.
func hardwareStudy(p *cost.Params, opt Options) []Row {
	variants := []struct {
		name  string
		par   *cost.Params
		paper [3]string
	}{
		{"FM on 1995 hardware", p, [3]string{"4.1", "21.4", "54"}},
		{"FM + burst-mode PIO (MBus-SBus write buffer)", p.WithBurstPIO(), [3]string{"-", "-> streamed-like r_inf", "-"}},
		{"FM + 2x faster LANai", p.WithFasterLANai(2), [3]string{"-", "lower t0", "-"}},
		{"FM + both improvements", p.WithBurstPIO().WithFasterLANai(2), [3]string{"-", "-", "-"}},
	}
	// Workers=1: hardwareStudy already runs inside one of Ablations'
	// parallel jobs (the serial() convention), so a nested full-width
	// pool would only oversubscribe the CPUs.
	return mapN(1, len(variants), func(i int) Row {
		v := variants[i]
		c := hostCurve(v.name, fmMaker(cfgFullFM(), v.par), opt.Sizes, serial(opt), false, 0)
		return Row{
			Name: "A3 " + v.name, T0us: c.Fit.T0.Microseconds(), RInf: c.Fit.RInf,
			NHalf: c.Fit.NHalf, Extrap: c.Fit.NHalfExtrapolated,
			PaperT0: v.paper[0], PaperR: v.paper[1], PaperN: v.paper[2],
		}
	})
}

// aggregationStudy measures the receive path with and without host-DMA
// aggregation under converging senders.
func aggregationStudy(p *cost.Params, opt Options) []KV {
	const senders = 2
	const size = 256
	packets := opt.Packets / 16
	if packets > 2048 {
		packets = 2048
	}
	run := func(aggregate bool) (sim.Duration, float64) {
		cfg := cfgFullFM()
		cfg.Aggregate = aggregate
		c := cluster.NewFM(senders+1, cfg.WithFrame(size), p)
		total := senders * packets
		got := 0
		c.Start(0, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) { got++ })
			for got < total {
				ep.WaitIncoming()
				ep.Extract()
			}
			ep.Extract()
		})
		for s := 1; s <= senders; s++ {
			c.Start(s, func(ep *core.Endpoint) {
				buf := make([]byte, size)
				for i := 0; i < packets; i++ {
					if err := ep.Send(0, 0, buf); err != nil {
						panic(err)
					}
				}
				for ep.Outstanding() > 0 {
					ep.WaitIncoming()
					ep.Extract()
				}
			})
		}
		if err := c.Run(); err != nil {
			panic(err)
		}
		st := c.Devs[0].Stats()
		batch := float64(st.HostDMAPackets) / float64(st.HostDMABatches)
		return sim.Duration(c.K.Now()), batch
	}
	tOn, bOn := run(true)
	tOff, bOff := run(false)
	return []KV{
		{"A4 aggregated: avg packets per host DMA", fmt.Sprintf("%.2f", bOn), ">1 under load"},
		{"A4 unaggregated: avg packets per host DMA", fmt.Sprintf("%.2f", bOff), "1"},
		{"A4 hotspot completion, aggregated (ms)", fmt.Sprintf("%.2f", float64(tOn)/float64(sim.Millisecond)), "-"},
		{"A4 hotspot completion, unaggregated (ms)", fmt.Sprintf("%.2f", float64(tOff)/float64(sim.Millisecond)), "slower"},
	}
}

// piggybackStudy compares ack traffic with piggybacking on and off under
// bidirectional (ping-pong) load.
func piggybackStudy(p *cost.Params, opt Options) []KV {
	run := func(piggyback bool) (sim.Duration, uint64, uint64) {
		cfg := cfgFullFM()
		cfg.PiggybackAcks = piggyback
		c := cluster.NewFM(2, cfg.WithFrame(128), p)
		pair := metrics.Pair{
			A:      c.EPs[0],
			B:      c.EPs[1],
			StartA: func(app func()) { c.CPUs[0].Start(app) },
			StartB: func(app func()) { c.CPUs[1].Start(app) },
			Run:    c.Run,
		}
		lat, err := metrics.PingPong(pair, 128, opt.Rounds)
		if err != nil {
			panic(err)
		}
		s0, s1 := c.EPs[0].Stats(), c.EPs[1].Stats()
		return lat, s0.AcksSent + s1.AcksSent, s0.AcksPiggybacked + s1.AcksPiggybacked
	}
	latOn, standaloneOn, piggyOn := run(true)
	latOff, standaloneOff, _ := run(false)
	return []KV{
		{"A5 piggyback on: one-way latency (us)", fmt.Sprintf("%.1f", latOn.Microseconds()), "-"},
		{"A5 piggyback on: standalone/piggybacked acks", fmt.Sprintf("%d/%d", standaloneOn, piggyOn), "mostly piggybacked"},
		{"A5 piggyback off: one-way latency (us)", fmt.Sprintf("%.1f", latOff.Microseconds()), "-"},
		{"A5 piggyback off: standalone acks", fmt.Sprintf("%d", standaloneOff), "one per message batch"},
	}
}
