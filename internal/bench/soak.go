package bench

import (
	"fmt"
	"sort"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/stats"
	"fm/internal/workload"
)

// The soak experiment: sustained open-loop load through the full FM
// stack, reported as a windowed time series per offered-load point.
// Batch experiments average a run into one summary; the soak ladder
// sweeps offered load across the FM host path's service capacity and
// shows, window by window, where the saturation knee sits — delivered
// bandwidth flattening while sojourn p99 and backlog blow up.
//
// The timeline is always computed on the canonical single-kernel
// engine, whatever -shards says. A sharded engine is deterministic for
// a fixed shard count, but under contention it grants switch output
// ports in merged head-arrival order where the single kernel grants
// them in injection order — and a saturation study is contended by
// definition. Pinning the one canonical engine is what makes this
// report byte-identical at any accepted -workers and -shards value.

// soakSize is the soak payload: the paper's 128B frame minus the 16B
// header, matching the fabrics/patterns experiments.
const soakSize = 112

// soakBase resolves the named base pattern the source cycles through.
// The catalog is the deterministic subset of the pattern vocabulary
// that makes sense under sustained load (every rank keeps sending).
func soakBase(name string) (workload.Pattern, error) {
	switch name {
	case "uniform-random":
		return workload.UniformRandom{Seed: patternSeed, Packets: 16}, nil
	case "all-to-all":
		return workload.AllToAll{Rounds: 1}, nil
	case "tornado":
		return workload.Tornado{Packets: 16}, nil
	case "neighbor":
		return workload.Neighbor{Rounds: 16, Wrap: true}, nil
	case "bisection":
		return workload.Bisection{Packets: 16}, nil
	case "incast":
		return workload.Incast{Target: 0, Packets: 16}, nil
	}
	return nil, fmt.Errorf("unknown -soak-pattern %q (valid: uniform-random, all-to-all, tornado, neighbor, bisection, incast)", name)
}

// soakGap converts one offered-load point (MB/s per node) into the
// per-rank mean interarrival gap for soakSize-byte messages.
func soakGap(loadMBps float64) sim.Duration {
	return sim.Duration(float64(soakSize) / (loadMBps * metrics.MiB) * float64(sim.Second))
}

// soakSource builds the arrival process for one load point.
func soakSource(opt Options, base workload.Pattern, loadMBps float64) workload.Source {
	horizon := sim.Duration(opt.SoakHorizonUs) * sim.Microsecond
	gap := soakGap(loadMBps)
	if opt.SoakSource == "fixed" {
		return workload.FixedRateSource{Base: base, Gap: gap, Horizon: horizon}
	}
	return workload.PoissonSource{Base: base, Seed: opt.SoakSeed, MeanGap: gap, Horizon: horizon}
}

// soakFaults compiles the optional -fault-plan against the soak fabric.
// Only an explicit plan applies — the faults experiment's seed default
// must not leak fault traffic into a load study nobody asked it of.
func soakFaults(opt Options, n int) ([]myrinet.FaultWindow, error) {
	if opt.FaultPlan == "" {
		return nil, nil
	}
	plan, err := workload.ParseFaultPlan(opt.FaultPlan)
	if err != nil {
		return nil, err
	}
	topo := workload.ClosSpec(n).Build(sim.NewKernel(), cost.Default()).Topology()
	return plan.Windows(topo, int64(opt.SoakHorizonUs))
}

// soakNodes resolves the experiment's (adjusted) node count.
func soakNodes(opt Options, base workload.Pattern) int {
	n := opt.SoakNodes
	if n == 0 {
		n = DefaultOptions().SoakNodes
	}
	if n < 8 {
		n = 8
	}
	return workload.AdjustNodes(base, n)
}

// ValidateSoak checks every -soak-* setting (and the optional fault
// plan) before anything runs, so fmbench can reject a bad combination
// without costing a partial sweep.
func ValidateSoak(opt Options) error {
	if opt.SoakSource != "poisson" && opt.SoakSource != "fixed" {
		return fmt.Errorf("unknown -soak-source %q (valid: poisson, fixed)", opt.SoakSource)
	}
	base, err := soakBase(opt.SoakPattern)
	if err != nil {
		return err
	}
	if len(opt.SoakLoads) == 0 {
		return fmt.Errorf("-soak-loads is empty: need at least one offered-load point (MB/s per node)")
	}
	for _, l := range opt.SoakLoads {
		if l <= 0 {
			return fmt.Errorf("-soak-loads entry %g: offered load must be positive MB/s per node", l)
		}
	}
	if opt.SoakHorizonUs <= 0 {
		return fmt.Errorf("-soak-horizon-us %d: the arrival horizon must be positive", opt.SoakHorizonUs)
	}
	if opt.SoakWindowUs <= 0 {
		return fmt.Errorf("-soak-window-us %d: the series window must be positive", opt.SoakWindowUs)
	}
	if opt.SoakWindowUs > opt.SoakHorizonUs {
		return fmt.Errorf("-soak-window-us %d exceeds -soak-horizon-us %d: a soak needs at least one full window",
			opt.SoakWindowUs, opt.SoakHorizonUs)
	}
	_, err = soakFaults(opt, soakNodes(opt, base))
	return err
}

// Soak regenerates the open-loop load study: one windowed time series
// per offered-load point plus the cross-load knee table.
func Soak(opt Options) *Report {
	p := cost.Default()
	cfg := core.DefaultConfig()
	base, err := soakBase(opt.SoakPattern)
	if err != nil {
		panic(fmt.Sprintf("bench: soak: %v", err))
	}
	n := soakNodes(opt, base)
	ws, err := soakFaults(opt, n)
	if err != nil {
		panic(fmt.Sprintf("bench: soak: %v", err))
	}
	spec := workload.ClosSpec(n)
	mode := workload.TerminateHorizon
	if opt.SoakDrain {
		mode = workload.TerminateDrain
	}
	sopt := workload.SoakOptions{
		Width:  sim.Duration(opt.SoakWindowUs) * sim.Microsecond,
		Mode:   mode,
		Faults: ws,
	}

	loads := append([]float64(nil), opt.SoakLoads...)
	sort.Float64s(loads)
	results := make([]workload.SoakResult, len(loads))
	jobs := make([]func(), len(loads))
	for i, load := range loads {
		i, load := i, load
		jobs[i] = func() {
			results[i] = workload.SoakDriveFM(spec, cfg, p, soakSource(opt, base, load), soakSize, sopt)
		}
	}
	runParallel(opt.Workers, jobs)

	r := &Report{ID: "soak", Title: fmt.Sprintf("Open-loop soak on clos-%d: %s arrivals over %s, %dus horizon",
		n, opt.SoakSource, opt.SoakPattern, opt.SoakHorizonUs)}

	us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
	horizon := sim.Duration(opt.SoakHorizonUs) * sim.Microsecond
	knee := Table{Name: "offered-load ladder", Header: []string{
		"offered (MB/s/node)", "arrivals", "delivered (MB/s/node)",
		"p50 (us)", "p99 (us)", "p999 (us)", "backlog@bell", "retrans", "drain (us)"}}
	for i, load := range loads {
		res := &results[i]
		series := res.Series
		rows := res.ReportWindows()
		ts := TimeSeries{
			Name:    fmt.Sprintf("offered %g MB/s per node (%s)", load, res.Pattern),
			WidthUs: us(series.Width()),
		}
		for w := 0; w < rows; w++ {
			win := series.Window(w)
			ts.Rows = append(ts.Rows, SeriesRow{
				StartUs:   us(sim.Duration(series.Start(w))),
				Offered:   win.Offered,
				Delivered: win.Delivered,
				MBps:      float64(win.Bytes) / metrics.MiB / series.Width().Seconds(),
				P50us:     us(win.Lat.Percentile(0.50)),
				P99us:     us(win.Lat.Percentile(0.99)),
				P999us:    us(win.Lat.Percentile(0.999)),
				InFlight:  series.InFlight(w),
				Retrans:   win.Retrans,
			})
		}
		r.Series = append(r.Series, ts)

		_, _, bytes, retrans := series.Totals()
		drain := res.Elapsed - horizon
		if drain < 0 {
			drain = 0
		}
		knee.Rows = append(knee.Rows, []string{
			fmt.Sprintf("%g", load),
			fmt.Sprintf("%d", res.Messages),
			// Delivered rate over the span it took to deliver: capped at
			// service capacity however hard the source pushes.
			fmt.Sprintf("%.2f", float64(bytes)/float64(n)/metrics.MiB/res.Elapsed.Seconds()),
			fmt.Sprintf("%.1f", us(res.Latency.Percentile(0.50))),
			fmt.Sprintf("%.1f", us(res.Latency.Percentile(0.99))),
			fmt.Sprintf("%.1f", us(res.Latency.Percentile(0.999))),
			fmt.Sprintf("%d", series.InFlight(res.HorizonWindows()-1)),
			fmt.Sprintf("%d", retrans),
			fmt.Sprintf("%.0f", us(drain)),
		})
	}
	r.Tables = append(r.Tables, knee)

	// Steady-state estimates: the same ladder with the warm-up trimmed
	// off. The untrimmed percentiles above fold the cold start — empty
	// queues, unprimed credit windows — into the distribution, biasing
	// the tail low at the knee and the median low everywhere. Trim rule:
	// with W whole horizon windows, drop the first k = W/4 windows,
	// clamped to [1, W-1] (so at least one window is dropped and at
	// least one kept) when W >= 2, and k = 0 when a single window is all
	// there is. The trimmed columns aggregate windows [k, W) only —
	// deliveries landing in the post-horizon drain are excluded, so this
	// table estimates the sustained-load plateau, not the cleanup.
	steady := Table{Name: "steady state (warm-up trimmed)", Header: []string{
		"offered (MB/s/node)", "trim (windows)", "steady delivered (MB/s/node)",
		"trim p50 (us)", "trim p99 (us)", "full p50 (us)", "full p99 (us)"}}
	for i, load := range loads {
		res := &results[i]
		series := res.Series
		W := res.HorizonWindows()
		k := 0
		if W >= 2 {
			k = W / 4
			if k < 1 {
				k = 1
			}
			if k > W-1 {
				k = W - 1
			}
		}
		var lat stats.Histogram
		var bytes uint64
		for w := k; w < W; w++ {
			win := series.Window(w)
			lat.Merge(&win.Lat)
			bytes += win.Bytes
		}
		span := sim.Duration(W-k) * series.Width()
		steady.Rows = append(steady.Rows, []string{
			fmt.Sprintf("%g", load),
			fmt.Sprintf("%d/%d", k, W),
			fmt.Sprintf("%.2f", float64(bytes)/float64(n)/metrics.MiB/span.Seconds()),
			fmt.Sprintf("%.1f", us(lat.Percentile(0.50))),
			fmt.Sprintf("%.1f", us(lat.Percentile(0.99))),
			fmt.Sprintf("%.1f", us(res.Latency.Percentile(0.50))),
			fmt.Sprintf("%.1f", us(res.Latency.Percentile(0.99))),
		})
	}
	r.Tables = append(r.Tables, steady)

	r.Notes = append(r.Notes,
		"steady state: windows [k, W) of the W-window horizon, k = W/4 clamped to [1, W-1] (0 when W < 2); drain-period deliveries excluded — the trimmed columns estimate the sustained plateau",
		"open loop: arrivals follow the source's schedule whether or not the system keeps up; latency is sojourn (scheduled arrival to delivery), source-queue wait included",
		"the knee is where delivered MB/s stops tracking offered MB/s: past it the backlog at the horizon bell and the sojourn p99 grow without bound",
		fmt.Sprintf("termination: %s — every arrival is still delivered (the drain column is the post-horizon cleanup time)", sopt.Mode),
		"deterministic: the timeline is computed on the canonical single-kernel engine, so this report is byte-identical at any -workers and -shards setting",
	)
	if len(ws) > 0 {
		r.Notes = append(r.Notes, "fault plan overlaid on every load point (-fault-plan): recovery transients show as delivery dips and retransmit bursts in the windows")
	}
	return r
}
