package cluster

import (
	"testing"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

func TestNewFMWiring(t *testing.T) {
	c := NewFM(4, core.DefaultConfig(), cost.Default())
	if len(c.EPs) != 4 || len(c.Devs) != 4 || len(c.CPUs) != 4 || len(c.Buses) != 4 {
		t.Fatal("incomplete wiring")
	}
	for i, ep := range c.EPs {
		if ep.NodeID() != i {
			t.Errorf("endpoint %d has id %d", i, ep.NodeID())
		}
	}
	if c.Fab.Nodes() != 4 {
		t.Errorf("fabric nodes = %d", c.Fab.Nodes())
	}
}

func TestLargeClusterGetsEnoughPorts(t *testing.T) {
	// 16 nodes exceed the default 8-port switch; NewFM must widen it.
	c := NewFM(16, core.DefaultConfig(), cost.Default())
	done := false
	c.Start(15, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(int, []byte) { done = true })
		for !done {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *core.Endpoint) { ep.Send4(15, 0, 1, 2, 3, 4) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("cross-cluster send failed")
	}
}

// TestFMOverMultiSwitchFabric: the full layer works across a 3-switch
// line with multi-hop source routing, and latency grows with hop count.
func TestFMOverMultiSwitchFabric(t *testing.T) {
	p := cost.Default()
	cfg := core.DefaultConfig()
	k := sim.NewKernel()
	fab := myrinet.NewLine(k, p, 3, 2, 8) // nodes 0,1 | 2,3 | 4,5
	c := NewFMOnFabric(k, p, fab, cfg)

	oneWay := func(a, b, rounds int) sim.Duration {
		got := 0
		var start, end sim.Time
		c.Start(b, func(ep *core.Endpoint) {
			echoed := 0
			ep.RegisterHandler(0, func(src int, payload []byte) {
				echoed++
				ep.Send(src, 0, payload)
			})
			for echoed < rounds {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
		c.Start(a, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) { got++ })
			start = ep.Now()
			buf := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				ep.Send(b, 0, buf)
				for got < i+1 {
					ep.WaitIncoming()
					ep.Extract()
				}
			}
			end = ep.Now()
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return end.Sub(start) / sim.Duration(2*rounds)
	}

	near := oneWay(0, 1, 20) // same switch: 1 hop
	// Fresh fabric for the far measurement (apps finished; reuse nodes 4,5
	// on a new cluster to keep state clean).
	k2 := sim.NewKernel()
	fab2 := myrinet.NewLine(k2, p, 3, 2, 8)
	c2 := NewFMOnFabric(k2, p, fab2, cfg)
	cOld := c
	c = c2
	far := oneWay(0, 5, 20) // across all three switches
	c = cOld

	if far <= near {
		t.Errorf("3-hop latency (%v) not above 1-hop (%v)", far, near)
	}
	// The minimum gap is two extra switch latencies; software noise may
	// add more, but never less.
	if far-near < 2*p.SwitchLatency {
		t.Errorf("hop gap %v below 2 switch latencies", far-near)
	}
}

// TestFMOverClosFabric: the full layer runs across a 2-level Clos, and
// cross-leaf latency exceeds same-leaf latency by at least the two extra
// switch crossings.
func TestFMOverClosFabric(t *testing.T) {
	p := cost.Default()
	cfg := core.DefaultConfig()

	oneWay := func(a, b, rounds int) sim.Duration {
		c := NewFMClos(2, 2, 2, 8, cfg, p) // nodes 0,1 | 2,3
		got := 0
		var start, end sim.Time
		c.Start(b, func(ep *core.Endpoint) {
			echoed := 0
			ep.RegisterHandler(0, func(src int, payload []byte) {
				echoed++
				ep.Send(src, 0, payload)
			})
			for echoed < rounds {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
		c.Start(a, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) { got++ })
			start = ep.Now()
			buf := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				ep.Send(b, 0, buf)
				for got < i+1 {
					ep.WaitIncoming()
					ep.Extract()
				}
			}
			end = ep.Now()
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return end.Sub(start) / sim.Duration(2*rounds)
	}

	near := oneWay(0, 1, 20) // same leaf: 1 hop
	far := oneWay(0, 3, 20)  // leaf -> spine -> leaf: 3 hops
	if far <= near {
		t.Errorf("cross-leaf latency (%v) not above same-leaf (%v)", far, near)
	}
	if far-near < 2*p.SwitchLatency {
		t.Errorf("hop gap %v below 2 switch latencies", far-near)
	}
}

// closScenarioEvents runs a fixed 8-node Clos scenario (every node sends
// 4 messages to its cross-leaf partner) and returns the kernel's event
// count, the simulation's determinism fingerprint.
func closScenarioEvents(t *testing.T) uint64 {
	t.Helper()
	c := NewFMClos(2, 2, 4, 8, core.DefaultConfig(), cost.Default())
	const msgs = 4
	n := c.Fab.Nodes()
	for id := 0; id < n; id++ {
		id := id
		peer := (id + n/2) % n
		c.Start(id, func(ep *core.Endpoint) {
			got := 0
			ep.RegisterHandler(0, func(int, []byte) { got++ })
			buf := make([]byte, 64)
			for i := 0; i < msgs; i++ {
				if err := ep.Send(peer, 0, buf); err != nil {
					t.Error(err)
				}
			}
			for got < msgs || ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c.K.EventsRun()
}

// TestClosScenarioDeterminism pins the exact event count of a fixed
// scenario. Two fresh runs must agree with each other and with the
// pinned value; any drift means nondeterminism crept into the kernel or
// the layers above it. Update the constant only for intentional protocol
// or cost-model changes.
func TestClosScenarioDeterminism(t *testing.T) {
	const pinned = 808
	a := closScenarioEvents(t)
	b := closScenarioEvents(t)
	if a != b {
		t.Fatalf("identical scenarios ran %d vs %d events", a, b)
	}
	if a != pinned {
		t.Errorf("EventsRun = %d, pinned %d (update only for intentional changes)", a, pinned)
	}
}

func TestRunForHorizon(t *testing.T) {
	c := NewFM(2, core.DefaultConfig(), cost.Default())
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; ; i++ {
			ep.CPU().Advance(10 * sim.Microsecond)
		}
	})
	if err := c.RunFor(sim.Us(100)); err != nil {
		t.Fatal(err)
	}
	if c.K.Now() > sim.Time(sim.Us(100)) {
		t.Errorf("clock ran past the horizon: %v", c.K.Now())
	}
}
