package core_test

import (
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

// Direct unit tests for the endpoint's resilience paths: a fabric
// bounce (fault-generated Reject) must park the frame and resend it
// after the retry backoff, bounced acknowledgements must be resent as
// acknowledgements, and the (src, seq) screen must swallow a duplicate
// delivery without running the handler twice.

// faultedPair builds a 2-node FM cluster on a crossbar with the given
// fault timeline installed.
func faultedPair(cfg core.Config, p *cost.Params, ws []myrinet.FaultWindow) *cluster.FM {
	return cluster.NewFMFrom(func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
		f := myrinet.NewCrossbar(k, p, 2, 8)
		f.ApplyFaults(ws)
		return f
	}, cfg, p)
}

// settlePoll keeps a rank alive servicing late bounces until `until`.
func settlePoll(ep *core.Endpoint, until sim.Time) {
	for ep.Now() < until {
		ep.CPU().Advance(10 * sim.Microsecond)
		ep.Extract()
	}
}

// TestNetBounceTimeoutResend: the receiver's interface dies mid-burst.
// Every frame addressed to it during the outage comes back as a fabric
// bounce; the sender must requeue each one, wait out RetryDelay, resend,
// and end with every message delivered exactly once.
func TestNetBounceTimeoutResend(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.RetryDelay = 15 * sim.Microsecond
	p := cost.Default()
	// Node 1's interface is down 5-80us: long enough that several of the
	// sender's frames (and some of the receiver's acks) bounce.
	ws := []myrinet.FaultWindow{{Kind: myrinet.NodeFault, Index: 1,
		Start: sim.Time(5 * sim.Microsecond), End: sim.Time(80 * sim.Microsecond)}}
	c := faultedPair(cfg, p, ws)

	const n = 40
	settle := sim.Time(80*sim.Microsecond + 8*15*sim.Microsecond + 200*sim.Microsecond)
	recv := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, payload []byte) { recv++ })
		for recv < n {
			ep.WaitIncoming()
			ep.Extract()
		}
		settlePoll(ep, settle)
	})
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
		settlePoll(ep, settle)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != n {
		t.Fatalf("received %d/%d", recv, n)
	}
	sst, rst := c.EPs[0].Stats(), c.EPs[1].Stats()
	if sst.NetBounces == 0 {
		t.Fatal("no frames bounced: the outage missed the burst")
	}
	if sst.Retransmits == 0 {
		t.Fatal("bounced frames were never retransmitted")
	}
	if sst.Duplicates != 0 || rst.Duplicates != 0 {
		t.Fatalf("duplicates delivered: sender %d receiver %d", sst.Duplicates, rst.Duplicates)
	}
	if fs := c.Fab.FaultStats(); fs.NodeDowns != 1 || fs.Recoveries != 1 {
		t.Fatalf("fault toggles = %+v, want one down and one recovery", fs)
	}
	if c.Fab.PendingStranded() != 0 {
		t.Fatalf("%d frames stranded", c.Fab.PendingStranded())
	}
}

// TestBouncedAckResentAsAck: the *receiver's* standalone acknowledgements
// are what bounce (its interface dies after the data has arrived). A
// bounced Ack must be requeued and resent as an Ack — not mutated into a
// data retransmit — or the sender's window never drains.
func TestBouncedAckResentAsAck(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.PiggybackAcks = false // force standalone acks
	cfg.AckBatch = 1          // ack every packet immediately
	cfg.RetryDelay = 15 * sim.Microsecond
	p := cost.Default()
	// The outage opens a little after the data burst lands, so the
	// bursts of standalone acks are what cross the dead interface.
	ws := []myrinet.FaultWindow{{Kind: myrinet.NodeFault, Index: 0,
		Start: sim.Time(8 * sim.Microsecond), End: sim.Time(60 * sim.Microsecond)}}
	c := faultedPair(cfg, p, ws)

	const n = 30
	settle := sim.Time(60*sim.Microsecond + 8*15*sim.Microsecond + 200*sim.Microsecond)
	recv := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, payload []byte) { recv++ })
		for recv < n {
			ep.WaitIncoming()
			ep.Extract()
		}
		settlePoll(ep, settle)
	})
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
		settlePoll(ep, settle)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != n {
		t.Fatalf("received %d/%d", recv, n)
	}
	rst := c.EPs[1].Stats()
	if rst.NetBounces == 0 {
		t.Fatal("no acknowledgement bounced: the outage missed the ack stream")
	}
	if out := c.EPs[0].Outstanding(); out != 0 {
		t.Fatalf("sender still has %d outstanding: bounced acks never arrived", out)
	}
	if c.Fab.PendingStranded() != 0 {
		t.Fatalf("%d frames stranded", c.Fab.PendingStranded())
	}
}

// TestDuplicateDeliveryScreened forges a wire-level duplicate — the same
// (src, seq) delivered twice — and checks the endpoint's screen drops it:
// the handler runs once, Duplicates counts one. Under the real protocol
// duplicates cannot happen (a frame is accepted or rejected, never both),
// so the screen can only be exercised by injecting one by hand.
func TestDuplicateDeliveryScreened(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckInvariants = false // the forged duplicate must count, not panic
	p := cost.Default()
	c := cluster.NewFM(2, cfg, p)

	// Forge a second copy of the first message (seq 1) from node 0 well after the original
	// has been delivered and acknowledged.
	fab := c.Fab
	fab.Kernel().AtArg(sim.Time(200*sim.Microsecond), func(any) {
		pkt := fab.NewPacket()
		pkt.Src, pkt.Dst = 0, 1
		pkt.Type = myrinet.Retransmit
		pkt.Handler = 0
		pkt.Seq = 1 // ep.Send assigns 1 to the first packet
		pkt.HeaderBytes = p.FMHeaderBytes
		pkt.SetPayload(make([]byte, 16))
		fab.Inject(pkt)
	}, nil)

	recv := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, payload []byte) { recv++ })
		// Serve the original, then stay alive past the forged copy.
		for recv < 1 {
			ep.WaitIncoming()
			ep.Extract()
		}
		settlePoll(ep, sim.Time(300*sim.Microsecond))
	})
	c.Start(0, func(ep *core.Endpoint) {
		ep.Send4(1, 0, 7, 0, 0, 0)
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
		settlePoll(ep, sim.Time(300*sim.Microsecond))
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 1 {
		t.Fatalf("handler ran %d times, want exactly once", recv)
	}
	rst := c.EPs[1].Stats()
	if rst.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want the forged copy screened", rst.Duplicates)
	}
	if rst.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1", rst.Delivered)
	}
}
