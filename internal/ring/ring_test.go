package ring

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	r := New[int]("q", 4)
	for i := 0; i < 4; i++ {
		r.Push(i)
	}
	if !r.Full() {
		t.Fatal("expected full")
	}
	for i := 0; i < 4; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if !r.Empty() {
		t.Fatal("expected empty")
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int]("q", 3)
	next := 0
	for round := 0; round < 10; round++ {
		r.Push(next)
		r.Push(next + 1)
		if got := r.Pop(); got != next {
			t.Fatalf("round %d: Pop = %d, want %d", round, got, next)
		}
		if got := r.Pop(); got != next+1 {
			t.Fatalf("round %d: Pop = %d, want %d", round, got, next+1)
		}
		next += 2
	}
}

func TestCountersTrail(t *testing.T) {
	r := New[string]("q", 8)
	r.Push("a")
	r.Push("b")
	r.Pop()
	if r.Produced() != 2 || r.Consumed() != 1 {
		t.Fatalf("produced=%d consumed=%d", r.Produced(), r.Consumed())
	}
	// The paper: the consumer counter "always trails the hostsent counter
	// by the number of packets in the queue."
	if r.Produced()-r.Consumed() != uint64(r.Len()) {
		t.Fatal("counter invariant violated")
	}
}

func TestPushFullPanics(t *testing.T) {
	r := New[int]("q", 1)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Push(2)
}

func TestPopEmptyPanics(t *testing.T) {
	r := New[int]("q", 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Pop()
}

func TestTryVariants(t *testing.T) {
	r := New[int]("q", 1)
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty should fail")
	}
	if !r.TryPush(7) {
		t.Fatal("TryPush on empty should succeed")
	}
	if r.TryPush(8) {
		t.Fatal("TryPush on full should fail")
	}
	v, ok := r.TryPop()
	if !ok || v != 7 {
		t.Fatalf("TryPop = (%d,%v)", v, ok)
	}
}

func TestPeek(t *testing.T) {
	r := New[int]("q", 4)
	r.Push(10)
	r.Push(20)
	if r.Peek() != 10 {
		t.Fatal("Peek should see oldest")
	}
	if r.PeekAt(1) != 20 {
		t.Fatal("PeekAt(1) should see second-oldest")
	}
	if r.Len() != 2 {
		t.Fatal("Peek must not consume")
	}
}

func TestPeekAtOutOfRangePanics(t *testing.T) {
	r := New[int]("q", 4)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.PeekAt(1)
}

func TestDrain(t *testing.T) {
	r := New[int]("q", 4)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	got := r.Drain()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Drain = %v", got)
	}
	if !r.Empty() {
		t.Fatal("Drain must empty the ring")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New[int]("q", 0)
}

func TestReset(t *testing.T) {
	r := New[int]("q", 4)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if !r.Empty() {
		t.Fatal("Reset must empty")
	}
	if r.Produced() != 2 || r.Consumed() != 2 {
		t.Fatal("Reset must preserve monotonic counters")
	}
}

// Property: a ring behaves exactly like a bounded slice-based FIFO under
// an arbitrary push/pop program.
func TestRingMatchesOracle(t *testing.T) {
	f := func(ops []uint8, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		r := New[int]("q", capacity)
		var oracle []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 { // push
				ok := r.TryPush(next)
				wantOK := len(oracle) < capacity
				if ok != wantOK {
					return false
				}
				if ok {
					oracle = append(oracle, next)
				}
				next++
			} else { // pop
				v, ok := r.TryPop()
				wantOK := len(oracle) > 0
				if ok != wantOK {
					return false
				}
				if ok {
					if v != oracle[0] {
						return false
					}
					oracle = oracle[1:]
				}
			}
			if r.Len() != len(oracle) || r.Free() != capacity-len(oracle) {
				return false
			}
			if r.Produced()-r.Consumed() != uint64(len(oracle)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
