// Package metrics implements the paper's measurement methodology
// (Section 4.1): one-way latency from 50 ping-pong round trips, bandwidth
// from the time to stream a fixed packet count, and the derived
// performance metrics of Table 2 — r_inf (peak bandwidth), t0 (startup
// overhead), and n1/2 (the half-power packet size).
//
// Bandwidths are in MB/s with 1 MB = 2^20 bytes, as the paper specifies,
// and message length always refers to payload (header overhead is
// included in the measured time but not the byte count).
package metrics

import (
	"fmt"

	"fm/internal/sim"
)

// PaperPingPongRounds is the paper's latency measurement length.
const PaperPingPongRounds = 50

// PaperStreamPackets is the paper's bandwidth measurement length.
const PaperStreamPackets = 65535

// MiB is the paper's megabyte (2^20 bytes).
const MiB = 1 << 20

// Messenger is the layer-neutral surface both FM and the Myrinet API
// comparator expose to the drivers.
type Messenger interface {
	NodeID() int
	RegisterHandler(id int, h func(src int, payload []byte))
	Send(dst, handler int, payload []byte) error
	Extract() int
	WaitIncoming()
}

// Pair binds two endpoints to their host processes and the simulation
// run loop, hiding the cluster wiring from the drivers.
type Pair struct {
	A, B   Messenger
	StartA func(app func())
	StartB func(app func())
	Run    func() error
}

// PingPong measures one-way latency: a size-byte message bounces between
// A and B for the given number of round trips; the result is total time
// divided by 2*rounds, matching the paper's methodology. Time is measured
// "from the FM_send() call until the (essentially empty) handler returns"
// (Section 4.3).
func PingPong(p Pair, size, rounds int) (sim.Duration, error) {
	const h = 0
	var start, end sim.Time
	got := 0

	p.StartB(func() {
		echoed := 0
		p.B.RegisterHandler(h, func(src int, payload []byte) {
			echoed++
			if err := p.B.Send(src, h, payload); err != nil {
				panic(err)
			}
		})
		for echoed < rounds {
			p.B.WaitIncoming()
			p.B.Extract()
		}
	})
	p.StartA(func() {
		p.A.RegisterHandler(h, func(int, []byte) { got++ })
		buf := make([]byte, size)
		start = now(p.A)
		for i := 0; i < rounds; i++ {
			if err := p.A.Send(p.B.NodeID(), h, buf); err != nil {
				panic(err)
			}
			target := i + 1
			for got < target {
				p.A.WaitIncoming()
				p.A.Extract()
			}
		}
		end = now(p.A)
	})
	if err := p.Run(); err != nil {
		return 0, err
	}
	if got != rounds {
		return 0, fmt.Errorf("metrics: ping-pong completed %d/%d rounds", got, rounds)
	}
	return end.Sub(start) / sim.Duration(2*rounds), nil
}

// Stream measures bandwidth: A sends `packets` messages of `size` bytes
// as fast as the layer allows; the elapsed time runs to the last
// handler return at B. Returns the elapsed time and the payload
// bandwidth in MB/s.
func Stream(p Pair, size, packets int) (sim.Duration, float64, error) {
	const h = 0
	var start, end sim.Time
	got := 0

	p.StartB(func() {
		p.B.RegisterHandler(h, func(int, []byte) {
			got++
			if got == packets {
				end = now(p.B)
			}
		})
		for got < packets {
			p.B.WaitIncoming()
			p.B.Extract()
		}
		p.B.Extract() // flush trailing protocol work (acks)
	})
	p.StartA(func() {
		buf := make([]byte, size)
		start = now(p.A)
		for i := 0; i < packets; i++ {
			if err := p.A.Send(p.B.NodeID(), h, buf); err != nil {
				panic(err)
			}
		}
	})
	if err := p.Run(); err != nil {
		return 0, 0, err
	}
	if got != packets {
		return 0, 0, fmt.Errorf("metrics: stream delivered %d/%d packets", got, packets)
	}
	elapsed := end.Sub(start)
	return elapsed, Bandwidth(size, packets, elapsed), nil
}

// Bandwidth converts a transfer into MB/s (1 MB = 2^20).
func Bandwidth(size, packets int, elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(size) * float64(packets) / MiB / elapsed.Seconds()
}

// now reads virtual time through the messenger if it exposes it.
func now(m Messenger) sim.Time {
	type clocked interface{ Now() sim.Time }
	if c, ok := m.(clocked); ok {
		return c.Now()
	}
	panic("metrics: messenger does not expose virtual time")
}
