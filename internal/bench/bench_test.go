package bench

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fm/internal/cost"
	"fm/internal/myriapi"
	"fm/internal/workload"
)

// tiny returns sweep options small enough for unit tests.
func tiny() Options {
	o := DefaultOptions()
	o.Sizes = []int{16, 64, 128, 256}
	o.APISizes = []int{128, 1024, 4096}
	o.Packets = 400
	o.Rounds = 10
	o.Workers = 2
	return o
}

func TestRegistry(t *testing.T) {
	ids := []string{"fig3", "fig4", "fig7", "fig8", "fig9", "table4", "headline", "ablations", "fabrics", "mpi", "patterns"}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
	if len(All()) != len(ids) {
		t.Errorf("All() has %d experiments", len(All()))
	}
	// The extended registry adds scale (not part of `all`).
	if _, ok := ByID("scale"); !ok {
		t.Error("extended experiment scale missing from registry")
	}
	if want := len(ids) + len(Extended()); len(IDs()) != want {
		t.Errorf("IDs() lists %d experiments, want %d", len(IDs()), want)
	}
}

func TestMPIShapeClaims(t *testing.T) {
	r := MPILayering(tiny())
	if len(r.Curves) != 5 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	raw, layered := r.Curves[0], r.Curves[1]
	rawClos, layeredClos := r.Curves[2], r.Curves[3]
	// Layering costs latency and bandwidth at every size, on both
	// fabrics.
	for i := range raw.BW {
		if layered.BW[i].MBps >= raw.BW[i].MBps {
			t.Errorf("at %dB MPI bandwidth (%.1f) not below raw FM (%.1f)",
				raw.BW[i].N, layered.BW[i].MBps, raw.BW[i].MBps)
		}
		if layered.Lat[i].OneWay <= raw.Lat[i].OneWay {
			t.Errorf("at %dB MPI latency not above raw FM", raw.Lat[i].N)
		}
		if layeredClos.BW[i].MBps >= rawClos.BW[i].MBps {
			t.Errorf("at %dB Clos MPI bandwidth not below raw FM", raw.BW[i].N)
		}
	}
	// The Clos pair pays extra switch hops in latency.
	if rawClos.Lat[0].OneWay <= raw.Lat[0].OneWay {
		t.Error("cross-leaf Clos latency not above crossbar latency")
	}
	// The layering cost in t0 is a fixed software cost: a few us.
	dt0 := layered.Fit.T0.Microseconds() - raw.Fit.T0.Microseconds()
	if dt0 <= 0 || dt0 > 10 {
		t.Errorf("layering t0 cost %.1fus outside (0, 10]", dt0)
	}
}

func TestMPIDeterminism(t *testing.T) {
	opt := tiny()
	opt.Sizes = []int{16, 128}
	opt.Workers = 1
	a := MPILayering(opt)
	opt.Workers = 5
	b := MPILayering(opt)
	var ta, tb bytes.Buffer
	a.WriteText(&ta)
	b.WriteText(&tb)
	if ta.String() != tb.String() {
		t.Error("mpi experiment output depends on worker count")
	}
}

func TestFig3ShapeClaims(t *testing.T) {
	r := Fig3(tiny())
	if len(r.Curves) != 3 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	base, stream, theo := r.Curves[0], r.Curves[1], r.Curves[2]
	// Streamed strictly dominates baseline; theory dominates both.
	for i := range base.BW {
		if stream.BW[i].MBps < base.BW[i].MBps {
			t.Errorf("at %dB streamed (%.1f) below baseline (%.1f)",
				base.BW[i].N, stream.BW[i].MBps, base.BW[i].MBps)
		}
		if theo.BW[i].MBps < stream.BW[i].MBps {
			t.Errorf("at %dB theory below streamed", base.BW[i].N)
		}
	}
	if stream.Fit.T0 >= base.Fit.T0 {
		t.Errorf("streamed t0 %v not below baseline %v", stream.Fit.T0, base.Fit.T0)
	}
	// Both approach link bandwidth asymptotically.
	if base.Fit.RInf < 70 || base.Fit.RInf > 82 {
		t.Errorf("baseline r_inf = %.1f, want ~76.3", base.Fit.RInf)
	}
}

func TestFig4CrossoverClaim(t *testing.T) {
	opt := tiny()
	opt.Sizes = []int{16, 64, 512}
	r := Fig4(opt)
	hybrid, alldma := r.Curves[0], r.Curves[1]
	// Hybrid wins short messages, all-DMA wins long ones (Section 4.3).
	if hybrid.BW[0].MBps <= alldma.BW[0].MBps {
		t.Errorf("at 16B hybrid (%.2f) not above all-DMA (%.2f)",
			hybrid.BW[0].MBps, alldma.BW[0].MBps)
	}
	last := len(opt.Sizes) - 1
	if alldma.BW[last].MBps <= hybrid.BW[last].MBps {
		t.Errorf("at 512B all-DMA (%.2f) not above hybrid (%.2f)",
			alldma.BW[last].MBps, hybrid.BW[last].MBps)
	}
	// Latency: hybrid lower at small sizes.
	if hybrid.Lat[0].OneWay >= alldma.Lat[0].OneWay {
		t.Error("hybrid latency not below all-DMA at 16B")
	}
}

func TestFig7InterpretationClaim(t *testing.T) {
	opt := tiny()
	opt.Sizes = []int{16, 64, 128}
	r := Fig7(opt)
	buf, sw := r.Curves[1], r.Curves[2]
	if sw.Fit.T0 <= buf.Fit.T0 {
		t.Errorf("switch() t0 %v not above buffer-mgmt %v", sw.Fit.T0, buf.Fit.T0)
	}
	if sw.Fit.NHalf <= buf.Fit.NHalf {
		t.Errorf("switch() n1/2 %.0f not above buffer-mgmt %.0f", sw.Fit.NHalf, buf.Fit.NHalf)
	}
}

func TestFig9OrdersOfMagnitudeClaim(t *testing.T) {
	opt := tiny()
	r := Fig9(opt)
	fm, api := r.Curves[0], r.Curves[1]
	// The central claim: API n1/2 is orders of magnitude above FM's.
	if api.Fit.NHalf < 20*fm.Fit.NHalf {
		t.Errorf("API n1/2 (%.0f) not >> FM n1/2 (%.0f)", api.Fit.NHalf, fm.Fit.NHalf)
	}
	// And API latency is ~two orders above FM at short sizes.
	if api.Lat[0].OneWay < 3*fm.Lat[0].OneWay {
		t.Errorf("API latency %v not far above FM %v", api.Lat[0].OneWay, fm.Lat[0].OneWay)
	}
}

func TestTheoreticalCurveMatchesAppendixA(t *testing.T) {
	p := cost.Default()
	c := theoreticalCurve(p, []int{16, 112}) // 112+16 header = 128 wire bytes
	// l = 320 + 12.5*128 + 550 = 2470 ns.
	want := 2470.0
	if got := c.Lat[1].OneWay.Nanoseconds(); math.Abs(got-want) > 1 {
		t.Errorf("theoretical latency = %.0f ns, want %.0f", got, want)
	}
}

func TestFabricsExperiment(t *testing.T) {
	opt := tiny()
	opt.FabricNodes = 8
	r := Fabrics(opt)
	if len(r.KVs) < 11 {
		t.Fatalf("fabrics produced %d KVs", len(r.KVs))
	}
	// KVs come in threes per topology: a2a BW, bisection BW, mean hops.
	bw := func(i int) float64 {
		var v float64
		if _, err := fmt.Sscanf(r.KVs[i].Measured, "%f", &v); err != nil {
			t.Fatalf("unparseable KV %q", r.KVs[i].Measured)
		}
		return v
	}
	crossA2A, lineA2A, closA2A := bw(0), bw(3), bw(6)
	crossBis, lineBis, closBis := bw(1), bw(4), bw(7)
	// The crossbar is the upper bound; the Clos must beat the line on both
	// patterns and the line's bisection must be far below the crossbar's.
	if lineA2A >= crossA2A || closA2A > crossA2A {
		t.Errorf("all-to-all ordering wrong: crossbar %.0f line %.0f clos %.0f",
			crossA2A, lineA2A, closA2A)
	}
	if closA2A <= lineA2A || closBis <= lineBis {
		t.Errorf("clos (%0.f/%0.f) not above line (%0.f/%0.f)",
			closA2A, closBis, lineA2A, lineBis)
	}
	if lineBis > crossBis/2 {
		t.Errorf("line bisection %.0f not trunk-bottlenecked vs crossbar %.0f", lineBis, crossBis)
	}
}

// TestScaleExperimentSmall runs the scale sweep at toy sizes: every
// point must produce its five metrics, and the report must be identical
// at any worker count (the same guarantee the paper experiments carry).
func TestScaleExperimentSmall(t *testing.T) {
	opt := DefaultOptions()
	opt.ScaleNodes = []int{8, 16}
	parallel := Scale(opt)
	if got, want := len(parallel.KVs), 5*len(opt.ScaleNodes); got != want {
		t.Fatalf("scale produced %d metrics, want %d", got, want)
	}
	opt.Workers = 1
	serial := Scale(opt)
	for i := range parallel.KVs {
		if parallel.KVs[i] != serial.KVs[i] {
			t.Errorf("worker-dependent result: %v vs %v", parallel.KVs[i], serial.KVs[i])
		}
	}
}

// TestPatternsExperiment checks the sweep's shape (every pattern x
// fabric cell present, in catalog order) and the workload-layer
// guarantee: the report is byte-identical at any worker count and
// across repeated runs.
func TestPatternsExperiment(t *testing.T) {
	opt := tiny()
	opt.PatternNodes = 8
	render := func(workers int) string {
		opt.Workers = workers
		var buf bytes.Buffer
		Patterns(opt).WriteText(&buf)
		return buf.String()
	}
	serial := render(1)
	if parallel := render(6); parallel != serial {
		t.Fatalf("patterns output depends on worker count:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if again := render(1); again != serial {
		t.Fatal("patterns output not reproducible across runs")
	}

	r := Patterns(opt)
	if len(r.Tables) != 1 {
		t.Fatalf("patterns produced %d tables", len(r.Tables))
	}
	tab := r.Tables[0]
	pats := patternCatalog()
	specs := workload.Specs(8)
	if want := len(pats) * len(specs); len(tab.Rows) != want {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), want)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tab.Header))
		}
		if want := pats[i/len(specs)].Name(); row[0] != want {
			t.Errorf("row %d pattern %q, want %q", i, row[0], want)
		}
		if want := specs[i%len(specs)].Name; row[1] != want {
			t.Errorf("row %d fabric %q, want %q", i, row[1], want)
		}
	}
}

func TestFabricGeometry(t *testing.T) {
	for _, tc := range []struct{ n, g, groups int }{
		{64, 8, 8}, {16, 4, 4}, {8, 2, 4}, {4, 2, 2}, {7, 1, 7},
	} {
		g, groups := workload.Geometry(tc.n)
		if g != tc.g || groups != tc.groups {
			t.Errorf("workload.Geometry(%d) = (%d,%d), want (%d,%d)", tc.n, g, groups, tc.g, tc.groups)
		}
	}
}

// The engine guarantee: a parallel sweep renders byte-identically to the
// serial one. Simulations are deterministic and jobs write disjoint
// slots, so worker count must be invisible in the output.
func TestParallelSweepMatchesSerialByteForByte(t *testing.T) {
	render := func(workers int) string {
		opt := tiny()
		opt.Workers = workers
		opt.FabricNodes = 8
		var buf bytes.Buffer
		for _, r := range []*Report{Fig8(opt), Fabrics(opt)} {
			r.WriteText(&buf)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// A panicking job surfaces on the caller's goroutine, and the
// lowest-indexed failure wins regardless of scheduling.
func TestRunParallelPropagatesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "job 3") {
			t.Errorf("recovered %v, want first failing job (3)", r)
		}
	}()
	jobs := make([]func(), 10)
	for i := range jobs {
		i := i
		jobs[i] = func() {
			if i >= 3 {
				panic(fmt.Sprintf("boom %d", i))
			}
		}
	}
	runParallel(2, jobs)
}

// TestRunParallelLowestIndexWinsWithJobZero pins the documented
// lowest-index-wins rule in its corner case: when job 0 panics alongside
// a higher-indexed job, the re-raised panic must be job 0's, at any
// worker count — the reported failure may not depend on which worker
// happened to hit its panic first.
func TestRunParallelLowestIndexWinsWithJobZero(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				s, ok := r.(string)
				if !ok || !strings.Contains(s, "job 0") || !strings.Contains(s, "boom zero") {
					t.Errorf("workers=%d: recovered %v, want job 0's panic", workers, r)
				}
				if strings.Contains(s, "boom five") {
					t.Errorf("workers=%d: job 5's panic reported instead of job 0's", workers)
				}
			}()
			jobs := make([]func(), 8)
			for i := range jobs {
				i := i
				jobs[i] = func() {
					switch i {
					case 0:
						panic("boom zero")
					case 5:
						panic("boom five")
					}
				}
			}
			runParallel(workers, jobs)
		}()
	}
}

func TestMapNOrdersResults(t *testing.T) {
	got := mapN(4, 50, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("mapN[%d] = %d", i, v)
		}
	}
}

func TestRunParallelCompletesAllJobs(t *testing.T) {
	results := make([]int, 100)
	var jobs []func()
	for i := range results {
		i := i
		jobs = append(jobs, func() { results[i] = i + 1 })
	}
	runParallel(7, jobs)
	for i, v := range results {
		if v != i+1 {
			t.Fatalf("job %d not run", i)
		}
	}
	runParallel(0, []func(){func() {}}) // workers < 1 clamps
}

func TestReportTextAndCSV(t *testing.T) {
	opt := tiny()
	opt.Sizes = []int{16, 64}
	r := Fig8(opt)
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "fig8") || !strings.Contains(out, "flow ctrl") {
		t.Errorf("text output missing content:\n%s", out)
	}
	dir := t.TempDir()
	if err := r.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "fig8_*.csv"))
	if err != nil || len(files) != len(r.Curves) {
		t.Fatalf("csv files = %v (err %v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "bytes,latency_us,bandwidth_MBps") {
		t.Errorf("csv header wrong: %s", data[:40])
	}
}

// Tables render in text and CSV: the -csv path for the patterns
// experiment.
func TestReportTableTextAndCSV(t *testing.T) {
	r := &Report{ID: "pat", Title: "table test", Tables: []Table{{
		Name:   "grid one",
		Header: []string{"pattern", "value"},
		Rows:   [][]string{{"a", "1"}, {"longer-name", "23"}},
	}}}
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"grid one", "pattern", "longer-name"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	dir := t.TempDir()
	if err := r.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "pat_grid_one.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "pattern,value\na,1\nlonger-name,23\n" {
		t.Errorf("table csv = %q", got)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a b/c()1"); got != "a_b_c__1" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestAPIStreamHelperAgainstImmVariant(t *testing.T) {
	p := cost.Default()
	_, bwImm := APIStream(myriapi.SendImm, p, 128, 50)
	if bwImm > 3 {
		t.Errorf("API at 128B delivers %.2f MB/s; should be ~1", bwImm)
	}
}
