package sim

import "fmt"

// stopSentinel is panicked inside a process goroutine when the kernel is
// tearing down, so that blocked processes unwind their stacks and exit.
type stopSentinel struct{}

// procFailure wraps a panic raised by process code so the kernel can
// surface it from Run instead of deadlocking.
type procFailure struct {
	proc string
	val  any
}

func (f procFailure) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", f.proc, f.val)
}

// Proc is a simulated process: a goroutine that advances virtual time by
// blocking on kernel primitives. All Proc methods must be called from
// within the process's own function.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}

	// wreg is the reusable wait registration for plain (untimed) signal
	// waits. A process blocks on at most one signal at a time, and a
	// plain wait's registration leaves the signal's waiter list exactly
	// when the process is woken, so one embedded registration per process
	// suffices — Wait allocates nothing. Timed waits (WaitTimeout) use a
	// fresh registration because their timer event can outlive the wait.
	wreg waitReg
}

// resumeProcArg is the event callback that resumes a blocked process:
// the argument carries the *Proc, so scheduling a wake allocates nothing.
func resumeProcArg(a any) {
	p := a.(*Proc)
	p.k.resumeProc(p)
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process running fn, starting at the current virtual
// time (after already-queued events at this instant).
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	k.nextProc++
	p := &Proc{k: k, id: k.nextProc, name: name, resume: make(chan struct{})}
	k.procs++
	go func() {
		<-p.resume
		defer func() {
			k.procs--
			if r := recover(); r != nil {
				if _, isStop := r.(stopSentinel); !isStop {
					k.fail(procFailure{proc: name, val: r})
				}
			}
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.AtArg(k.now, resumeProcArg, p)
	return p
}

// block returns control to the kernel and waits to be resumed. If the
// kernel has stopped, it unwinds the goroutine.
func (p *Proc) block() {
	p.k.yield <- struct{}{}
	<-p.resume
	if p.k.stopped {
		panic(stopSentinel{})
	}
}

// Sleep advances the process's local time by d, yielding to other
// activities in between. Sleep(0) yields and resumes after other events
// already scheduled at this instant.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.k.AfterArg(d, resumeProcArg, p)
	p.block()
}

// SleepUntil blocks the process until absolute time t. If t is not after
// the current time, it still yields once.
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.AtArg(t, resumeProcArg, p)
	p.block()
}

// park records the process as signal-blocked and yields. The waker is
// responsible for removing it from the parked set before resuming.
func (p *Proc) park() {
	p.k.parked[p] = struct{}{}
	p.block()
}
