package workload

import (
	"fmt"
	"strconv"
	"strings"

	"fm/internal/myrinet"
	"fm/internal/sim"
)

// Fault plans. A FaultPlan is the workload-level description of every
// component outage a run injects: which links, switches, and node
// interfaces go down (or run loss/corruption bursts), and when, in
// virtual microseconds. Plans are pure data — they come from a seed
// (RandomFaultPlan) or from text (ParseFaultPlan), compile to
// myrinet.FaultWindow timelines against a concrete topology, and carry
// no randomness of their own at run time, so a plan replays
// byte-identically at any -workers or -shards setting.

// FaultEvent is one outage: component Index of class Kind is down (or
// bursting) from StartUs to EndUs in virtual microseconds, end
// exclusive.
type FaultEvent struct {
	Kind    myrinet.FaultKind
	Index   int
	StartUs int64
	EndUs   int64
}

// String renders the event in the plan text format.
func (e FaultEvent) String() string {
	return fmt.Sprintf("%s %d %d %d", e.Kind, e.Index, e.StartUs, e.EndUs)
}

// FaultPlan is an ordered list of fault events plus the seed that
// generated it (zero for hand-written plans). Event order is
// insignificant to the simulation — the fabric sorts windows per
// component — but is preserved so String round-trips.
type FaultPlan struct {
	Seed   uint64
	Events []FaultEvent
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool { return len(p.Events) == 0 }

// String renders the plan in the text format ParseFaultPlan accepts:
// events joined by "; ".
func (p FaultPlan) String() string {
	var b strings.Builder
	for i, e := range p.Events {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// ParseFaultPlan decodes the plan text format: events separated by
// semicolons or newlines, each "kind index startUs endUs" with kind one
// of link, switch, node, loss, corrupt. Blank events and #-comments are
// ignored. The decoder validates shape only (a plan is written against
// a topology it cannot see); index range and window sanity are checked
// when the plan is compiled by Windows. It never panics on any input.
func ParseFaultPlan(s string) (FaultPlan, error) {
	var p FaultPlan
	split := func(r rune) bool { return r == ';' || r == '\n' }
	for _, ev := range strings.FieldsFunc(s, split) {
		if i := strings.IndexByte(ev, '#'); i >= 0 {
			ev = ev[:i]
		}
		fields := strings.Fields(ev)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 4 {
			return FaultPlan{}, fmt.Errorf("workload: fault event %q: want \"kind index startUs endUs\"", strings.TrimSpace(ev))
		}
		var kind myrinet.FaultKind
		switch fields[0] {
		case "link":
			kind = myrinet.LinkFault
		case "switch":
			kind = myrinet.SwitchFault
		case "node":
			kind = myrinet.NodeFault
		case "loss":
			kind = myrinet.LossBurst
		case "corrupt":
			kind = myrinet.CorruptBurst
		default:
			return FaultPlan{}, fmt.Errorf("workload: fault event %q: unknown kind %q", strings.TrimSpace(ev), fields[0])
		}
		idx, err := strconv.Atoi(fields[1])
		if err != nil {
			return FaultPlan{}, fmt.Errorf("workload: fault event %q: bad index: %v", strings.TrimSpace(ev), err)
		}
		start, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return FaultPlan{}, fmt.Errorf("workload: fault event %q: bad start: %v", strings.TrimSpace(ev), err)
		}
		end, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return FaultPlan{}, fmt.Errorf("workload: fault event %q: bad end: %v", strings.TrimSpace(ev), err)
		}
		p.Events = append(p.Events, FaultEvent{Kind: kind, Index: idx, StartUs: start, EndUs: end})
	}
	return p, nil
}

// Windows compiles the plan against a concrete topology, validating
// every event: indices must name real components and windows must be
// non-empty, non-negative, and end by the horizon (a window that never
// closes could strand bounced frames forever, breaking the
// zero-undelivered guarantee). Returns the fabric-level timeline for
// myrinet.Fabric.ApplyFaults.
func (p FaultPlan) Windows(t *myrinet.Topology, horizonUs int64) ([]myrinet.FaultWindow, error) {
	if p.Empty() {
		return nil, nil
	}
	ws := make([]myrinet.FaultWindow, 0, len(p.Events))
	for _, e := range p.Events {
		var limit int
		switch e.Kind {
		case myrinet.LinkFault, myrinet.LossBurst, myrinet.CorruptBurst:
			limit = t.NumLinks()
		case myrinet.SwitchFault:
			limit = t.NumSwitches()
		case myrinet.NodeFault:
			limit = t.NumNodes()
		default:
			return nil, fmt.Errorf("workload: fault event %v: unknown kind", e)
		}
		if e.Index < 0 || e.Index >= limit {
			return nil, fmt.Errorf("workload: fault event %v: index out of range (%d %s components)", e, limit, e.Kind)
		}
		if e.StartUs < 0 || e.EndUs <= e.StartUs {
			return nil, fmt.Errorf("workload: fault event %v: empty or negative window", e)
		}
		if horizonUs > 0 && e.EndUs > horizonUs {
			return nil, fmt.Errorf("workload: fault event %v: window open past horizon %dus", e, horizonUs)
		}
		ws = append(ws, myrinet.FaultWindow{
			Kind:  e.Kind,
			Index: e.Index,
			Start: sim.Time(0).Add(sim.Us(e.StartUs)),
			End:   sim.Time(0).Add(sim.Us(e.EndUs)),
		})
	}
	return ws, nil
}

// RandomFaultPlan derives a fault plan from a single seed against a
// topology: n outage windows over components that exist, all opening
// inside the middle of the [0, horizonUs] horizon and closing before
// it ends (so traffic in flight when a fault lands gets bounced, and
// every window's recovery releases whatever it stranded). The draw
// sequence depends only on (seed, topology shape, n, horizonUs), never
// on scheduling, so the same arguments give the same plan on every
// run, worker count, and shard count.
//
// Kind mix: mostly link outages and loss/corruption bursts, with
// occasional node-interface churn, and switch outages only where a
// non-leaf (spine) switch exists — killing a leaf would disconnect its
// nodes outright, which is a different experiment.
func RandomFaultPlan(seed uint64, t *myrinet.Topology, n int, horizonUs int64) FaultPlan {
	if n <= 0 || horizonUs < 16 {
		return FaultPlan{Seed: seed}
	}
	r := newSplitMix64(seed, 0x0fa1175)
	var spines []int
	for sw := 0; sw < t.NumSwitches(); sw++ {
		if !t.HostsNodes(sw) {
			spines = append(spines, sw)
		}
	}
	p := FaultPlan{Seed: seed}
	for i := 0; i < n; i++ {
		// Window: starts in [h/8, h/2), lasts [h/16, h/4) — mid-run, and
		// always recovered well before the horizon.
		start := horizonUs/8 + int64(r.next()%uint64(3*horizonUs/8))
		dur := horizonUs/16 + int64(r.next()%uint64(3*horizonUs/16))
		e := FaultEvent{StartUs: start, EndUs: start + dur}
		switch pick := r.next() % 10; {
		case pick < 4 && t.NumLinks() > 0:
			e.Kind = myrinet.LinkFault
			e.Index = int(r.next() % uint64(t.NumLinks()))
		case pick < 6 && t.NumLinks() > 0:
			e.Kind = myrinet.LossBurst
			e.Index = int(r.next() % uint64(t.NumLinks()))
		case pick < 8 && t.NumLinks() > 0:
			e.Kind = myrinet.CorruptBurst
			e.Index = int(r.next() % uint64(t.NumLinks()))
		case pick < 9 && len(spines) > 0:
			e.Kind = myrinet.SwitchFault
			e.Index = spines[r.next()%uint64(len(spines))]
		default:
			e.Kind = myrinet.NodeFault
			e.Index = int(r.next() % uint64(t.NumNodes()))
		}
		p.Events = append(p.Events, e)
	}
	return p
}
