package collective_test

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/collective"
	"fm/internal/core"
	"fm/internal/cost"
)

// Four nodes sum their ranks with one Allreduce over FM short messages.
func ExampleComm_Allreduce() {
	const nodes = 4
	c := cluster.NewFM(nodes, core.DefaultConfig(), cost.Default())

	results := make([]float64, nodes)
	for rank := 0; rank < nodes; rank++ {
		rank := rank
		c.Start(rank, func(ep *core.Endpoint) {
			comm := collective.New(ep, nodes, 0)
			sum := comm.Allreduce([]float64{float64(rank)}, collective.Sum)
			results[rank] = sum[0]
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	fmt.Println(results)
	// Output:
	// [6 6 6 6]
}
