package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

// TestSendExtractDeliversPayload: basic two-node send/extract round with
// payload integrity.
func TestSendExtractDeliversPayload(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckInvariants = true
	c := cluster.NewFM(2, cfg, cost.Default())

	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	var got []byte
	var gotSrc int
	done := false

	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(7, func(src int, p []byte) {
			gotSrc = src
			got = append([]byte(nil), p...)
			done = true
		})
		for !done {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *core.Endpoint) {
		if err := ep.Send(1, 7, payload); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("message not delivered")
	}
	if gotSrc != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("delivered src=%d payload mismatch", gotSrc)
	}
}

// TestSend4Words: FM_send_4 round trip of the four words.
func TestSend4Words(t *testing.T) {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	var w [4]uint32
	done := false
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, p []byte) {
			w[0], w[1], w[2], w[3] = core.DecodeWords(p)
			done = true
		})
		for !done {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *core.Endpoint) {
		ep.Send4(1, 0, 0xdead, 0xbeef, 42, 0xffffffff)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if w != [4]uint32{0xdead, 0xbeef, 42, 0xffffffff} {
		t.Fatalf("words = %x", w)
	}
}

// TestOversizeSendRejected: FM_send takes at most one frame.
func TestOversizeSendRejected(t *testing.T) {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	c.Start(0, func(ep *core.Endpoint) {
		if err := ep.Send(1, 0, make([]byte, 129)); err == nil {
			t.Error("expected error for 129-byte payload on 128-byte frames")
		}
		if err := ep.Send(0, 0, []byte{1}); err == nil {
			t.Error("expected error for self-send")
		}
		if err := ep.Send(1, -1, []byte{1}); err == nil {
			t.Error("expected error for bad handler")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestManyPacketsExactlyOnce: a 2000-packet stream through the full FM
// layer (windowing, acks, counter sync) delivers every packet exactly
// once with intact contents.
func TestManyPacketsExactlyOnce(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckInvariants = true
	c := cluster.NewFM(2, cfg, cost.Default())
	const n = 2000

	recvCount := 0
	seen := make(map[uint32]bool)
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(1, func(src int, p []byte) {
			w0, _, _, _ := core.DecodeWords(p)
			if seen[w0] {
				t.Errorf("duplicate message %d", w0)
			}
			seen[w0] = true
			recvCount++
		})
		for recvCount < n {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 1, uint32(i), 0, 0, 0)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recvCount != n {
		t.Fatalf("received %d/%d", recvCount, n)
	}
	st := c.EPs[0].Stats()
	if st.Duplicates != 0 {
		t.Errorf("duplicates = %d", st.Duplicates)
	}
}

// TestWindowLimitsOutstanding: the sender never exceeds WindowSlots
// unacknowledged packets (the reject-region reservation invariant).
func TestWindowLimitsOutstanding(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.WindowSlots = 8
	cfg.AckBatch = 4
	c := cluster.NewFM(2, cfg, cost.Default())
	const n = 100

	recv := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(int, []byte) { recv++ })
		for recv < n {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	maxOut := 0
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
			if o := ep.Outstanding(); o > maxOut {
				maxOut = o
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != n {
		t.Fatalf("received %d", recv)
	}
	if maxOut > 8 {
		t.Errorf("outstanding reached %d, window is 8", maxOut)
	}
	if c.EPs[0].Stats().SendBlocks == 0 {
		t.Error("a 100-packet burst over an 8-slot window must block sometimes")
	}
}

// TestAcksDrainOutstanding: after quiescence the sender's outstanding set
// is empty — acks (batched or flushed) released every slot.
func TestAcksDrainOutstanding(t *testing.T) {
	cfg := core.DefaultConfig()
	c := cluster.NewFM(2, cfg, cost.Default())
	const n = 37 // deliberately not a multiple of AckBatch

	recv := 0
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(int, []byte) { recv++ })
		for recv < n {
			ep.WaitIncoming()
			ep.Extract()
		}
		// Final extract sweeps to flush trailing acks.
		ep.Extract()
	})
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
		}
		// Wait for the trailing acks.
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.EPs[0].Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after quiescence", got)
	}
	st1 := c.EPs[1].Stats()
	if st1.SeqsAcked != n {
		t.Errorf("receiver acked %d seqs, want %d", st1.SeqsAcked, n)
	}
}

// TestPiggybackOnBidirectionalTraffic: in a ping-pong, acks ride on the
// reply data packets, so standalone acks stay rare.
func TestPiggybackOnBidirectionalTraffic(t *testing.T) {
	cfg := core.DefaultConfig()
	c := cluster.NewFM(2, cfg, cost.Default())
	const rounds = 50

	c.Start(1, func(ep *core.Endpoint) {
		n := 0
		ep.RegisterHandler(0, func(src int, p []byte) {
			n++
			ep.Send(0, 0, p) // echo
		})
		for n < rounds {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *core.Endpoint) {
		got := 0
		ep.RegisterHandler(0, func(int, []byte) { got++ })
		buf := make([]byte, 64)
		for i := 0; i < rounds; i++ {
			ep.Send(1, 0, buf)
			prev := got
			for got == prev {
				ep.WaitIncoming()
				ep.Extract()
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.EPs[1].Stats()
	if st.AcksPiggybacked == 0 {
		t.Error("expected piggybacked acks on echo traffic")
	}
	if st.AcksSent > st.AcksPiggybacked {
		t.Errorf("standalone acks (%d) dominate piggybacked (%d)",
			st.AcksSent, st.AcksPiggybacked)
	}
}

// TestRejectionAndRetransmission: a slow consumer (tiny DrainLimit, small
// queues, low threshold) forces return-to-sender rejects; every message
// still arrives exactly once, proving the retransmission path.
func TestRejectionAndRetransmission(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckInvariants = true
	cfg.HostRecvSlots = 32
	cfg.RejectThreshold = 8
	cfg.DrainLimit = 2
	cfg.WindowSlots = 64
	cfg.AckBatch = 4
	cfg.RetryDelay = 20 * sim.Microsecond
	c := cluster.NewFM(2, cfg, cost.Default())
	const n = 300

	recv := 0
	seen := make(map[uint32]bool)
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, p []byte) {
			w0, _, _, _ := core.DecodeWords(p)
			if seen[w0] {
				t.Errorf("duplicate %d", w0)
			}
			seen[w0] = true
			recv++
			ep.CPU().Advance(30 * sim.Microsecond) // slow consumer
		})
		for recv < n {
			ep.WaitIncoming()
			ep.Extract()
		}
		ep.Extract()
	})
	c.Start(0, func(ep *core.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send4(1, 0, uint32(i), 0, 0, 0)
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != n {
		t.Fatalf("received %d/%d", recv, n)
	}
	sst := c.EPs[0].Stats()
	rst := c.EPs[1].Stats()
	if rst.RejectsSent == 0 {
		t.Error("slow consumer produced no rejects; threshold too lax for the test")
	}
	if sst.RejectsReceived != rst.RejectsSent {
		t.Errorf("rejects sent %d != received %d", rst.RejectsSent, sst.RejectsReceived)
	}
	if sst.Retransmits == 0 {
		t.Error("no retransmissions despite rejects")
	}
	if sst.Duplicates != 0 || rst.Duplicates != 0 {
		t.Error("duplicates detected")
	}
}

// TestVestigialConfigsStillDeliver: the Fig. 4 layers (no buffer
// management costs, no flow control) still move data correctly in both
// SBus modes.
func TestVestigialConfigsStillDeliver(t *testing.T) {
	for _, mode := range []core.SBusMode{core.Hybrid, core.AllDMA} {
		mode := mode
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			cfg := core.VestigialConfig(mode)
			c := cluster.NewFM(2, cfg, cost.Default())
			const n = 200
			recv := 0
			c.Start(1, func(ep *core.Endpoint) {
				ep.RegisterHandler(0, func(int, []byte) { recv++ })
				for recv < n {
					ep.WaitIncoming()
					ep.Extract()
				}
			})
			c.Start(0, func(ep *core.Endpoint) {
				buf := make([]byte, 128)
				for i := 0; i < n; i++ {
					if err := ep.Send(1, 0, buf); err != nil {
						t.Errorf("send %d: %v", i, err)
					}
				}
			})
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			if recv != n {
				t.Fatalf("received %d/%d", recv, n)
			}
		})
	}
}

// TestAllDMAUsesMemcpyNotPIO: the two SBus architectures exercise
// different buses paths (Fig. 4's point): all-DMA moves payload bytes by
// DMA, hybrid by programmed I/O.
func TestAllDMAUsesMemcpyNotPIO(t *testing.T) {
	run := func(mode core.SBusMode) (pio, dma uint64) {
		cfg := core.VestigialConfig(mode)
		c := cluster.NewFM(2, cfg, cost.Default())
		recv := 0
		c.Start(1, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) { recv++ })
			for recv < 50 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
		c.Start(0, func(ep *core.Endpoint) {
			for i := 0; i < 50; i++ {
				ep.Send(1, 0, make([]byte, 128))
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		st := c.Buses[0].Stats()
		return st.PIOBytes, st.DMABytes
	}
	pio, _ := run(core.Hybrid)
	if pio == 0 {
		t.Error("hybrid moved no PIO bytes")
	}
	pioD, dmaD := run(core.AllDMA)
	if pioD != 0 {
		t.Errorf("all-DMA used %d PIO bytes", pioD)
	}
	if dmaD == 0 {
		t.Error("all-DMA moved no DMA bytes on the sender bus")
	}
}

// TestEncodeDecodeWords round-trips.
func TestEncodeDecodeWords(t *testing.T) {
	p := core.EncodeWords(1, 2, 3, 4)
	if len(p) != 16 {
		t.Fatalf("len %d", len(p))
	}
	a, b, cc, d := core.DecodeWords(p)
	if a != 1 || b != 2 || cc != 3 || d != 4 {
		t.Fatal("round trip failed")
	}
}

// TestDeterministicEndToEnd: two identical full-stack runs produce
// identical event counts and finish times.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (uint64, sim.Time) {
		cfg := core.DefaultConfig()
		c := cluster.NewFM(2, cfg, cost.Default())
		recv := 0
		c.Start(1, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(src int, p []byte) {
				recv++
				if recv%3 == 0 {
					ep.Send(0, 0, p[:8])
				}
			})
			for recv < 500 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
		c.Start(0, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) {})
			for i := 0; i < 500; i++ {
				ep.Send(1, 0, make([]byte, 96))
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.K.EventsRun(), c.K.Now()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}
