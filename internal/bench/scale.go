package bench

import (
	"fmt"
	"time"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/workload"
)

// The scale experiment: the fabrics comparison at production sizes. It
// sweeps full-bisection 2-level Clos fabrics from 64 to 4096 nodes and
// drives each with all-to-all and bisection traffic at the raw network
// level, plus a complete-FM-stack all-to-all (hosts, SBus, LANai, LCP,
// flow control on every node). Before the engine went allocation-light
// (pooled packets, closure-free events, demand-cached routes) the
// 1024-node points were impractical to run; the ladder-queue scheduler
// and symmetric process handoff (DESIGN.md "Performance") then bought
// the headroom for 2048 and 4096 — the 4096-node FM point pushes
// ~16.8 million full-stack messages. The sharded engine (-shards,
// DESIGN.md "Parallel engine") splits each simulation across shard
// kernels, one leaf group block per shard, putting points past 4096 in
// reach on multi-core hosts. Trim a run with -scale-nodes, and use
// -timing to see where the wall-clock goes (with -shards > 1 it adds a
// per-shard breakdown).
//
// The experiment is in the extended registry, not `-experiment all`:
// its FM points simulate tens of millions of full-stack messages and
// dominate any all-experiments run.

// scaleSpec returns the full-bisection Clos at n nodes
// (workload.ClosSpec), renamed so panic messages identify the sweep
// point.
func scaleSpec(n int) workload.FabricSpec {
	spec := workload.ClosSpec(n)
	spec.Name = fmt.Sprintf("clos-%d", n)
	return spec
}

// scalePattern resolves the sweep's main traffic pattern. The catalog
// is deliberately small: all-to-all is the historical default (its
// labels and volume are byte-identical to builds predating the knob),
// and neighbor is the light structured pattern that makes very large
// points — 16k nodes and past — tractable, since its message count
// grows linearly in N instead of quadratically. The returned desc
// phrase slots into the report notes ("<desc> ... per node").
func scalePattern(name string) (pat workload.Pattern, desc string, err error) {
	switch name {
	case "", "all-to-all":
		return workload.AllToAll{Rounds: 1}, "one all-to-all round", nil
	case "neighbor":
		return workload.Neighbor{Rounds: 16, Wrap: true}, "16 wrapped neighbor rounds", nil
	}
	return nil, "", fmt.Errorf("unknown -scale-pattern %q (valid: all-to-all, neighbor)", name)
}

// ValidateScale checks the scale sweep's configuration before anything
// runs: the pattern name must be in the catalog, and every node count
// must derive a Clos geometry the fabric layer can actually build
// (myrinet.ClosCheck) — so a bad point at the end of -scale-nodes
// cannot cost the long points before it.
func ValidateScale(opt Options) error {
	if _, _, err := scalePattern(opt.ScalePattern); err != nil {
		return err
	}
	nodes := opt.ScaleNodes
	if len(nodes) == 0 {
		nodes = DefaultOptions().ScaleNodes
	}
	for _, n := range nodes {
		if n < 2 {
			return fmt.Errorf("-scale-nodes %d: a sweep point needs at least 2 nodes", n)
		}
		spines, leaves, npl, ports := workload.ClosGeometry(n)
		if err := myrinet.ClosCheck(spines, leaves, npl, ports); err != nil {
			return fmt.Errorf("-scale-nodes %d: clos(%d spines, %d leaves, %d nodes/leaf, %d ports): %v",
				n, spines, leaves, npl, ports, err)
		}
	}
	return nil
}

// Scale regenerates the scaling sweep over opt.ScaleNodes (default
// 64..1024). Every measurement is an isolated simulation, so the sweep
// points fan out over the worker pool like any other experiment.
func Scale(opt Options) *Report {
	p := cost.Default()
	pat, desc, err := scalePattern(opt.ScalePattern)
	if err != nil {
		panic(fmt.Sprintf("bench: scale: %v", err))
	}
	pname := opt.ScalePattern
	if pname == "" {
		pname = "all-to-all"
	}
	nodes := opt.ScaleNodes
	if len(nodes) == 0 {
		nodes = DefaultOptions().ScaleNodes
	}
	const size = 112 // 112B payload + 16B header = the paper's 128B frame
	r := &Report{ID: "scale", Title: fmt.Sprintf("Clos scaling, %d to %d nodes", nodes[0], nodes[len(nodes)-1])}

	type rawRes struct {
		bw, hops float64
	}
	type fmRes struct {
		bw      float64
		elapsed sim.Duration
	}
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	a2a := make([]rawRes, len(nodes))
	bis := make([]rawRes, len(nodes))
	fm := make([]fmRes, len(nodes))
	fmShards := make([][]sim.ShardStats, len(nodes))
	var jobs []func()
	for i, n := range nodes {
		i, n := i, n
		jobs = append(jobs,
			func() {
				res := workload.DriveRawSharded(scaleSpec(n), p, pat, size, shards)
				a2a[i] = rawRes{bw: metrics.Bandwidth(size, res.Messages, res.Elapsed), hops: res.MeanHops}
			},
			func() {
				res := workload.DriveRawSharded(scaleSpec(n), p, workload.Bisection{Packets: 32}, size, shards)
				bis[i] = rawRes{bw: metrics.Bandwidth(size, res.Messages, res.Elapsed)}
			},
			func() {
				res := workload.DriveFMSharded(scaleSpec(n), core.DefaultConfig(), p, pat, size, shards)
				fm[i] = fmRes{bw: metrics.Bandwidth(size, res.Messages, res.Elapsed), elapsed: res.Elapsed}
				fmShards[i] = res.Shards
			},
		)
	}
	runParallel(opt.Workers, jobs)

	ms := func(d sim.Duration) string {
		return fmt.Sprintf("%.2f", float64(d)/float64(sim.Millisecond))
	}
	for i, n := range nodes {
		g, groups := workload.Geometry(n)
		r.KVs = append(r.KVs,
			KV{fmt.Sprintf("N=%4d raw %s agg. BW (MB/s)", n, pname), fmt.Sprintf("%.0f", a2a[i].bw),
				fmt.Sprintf("%d leaves x %d nodes", groups, g)},
			KV{fmt.Sprintf("N=%4d raw %s mean hops", n, pname), fmt.Sprintf("%.2f", a2a[i].hops), "-"},
			KV{fmt.Sprintf("N=%4d raw bisection BW (MB/s)", n), fmt.Sprintf("%.0f", bis[i].bw), "full bisection"},
			KV{fmt.Sprintf("N=%4d FM %s completion (ms)", n, pname), ms(fm[i].elapsed), "-"},
			KV{fmt.Sprintf("N=%4d FM delivered payload BW (MB/s)", n), fmt.Sprintf("%.1f", fm[i].bw), "-"},
		)
	}

	linkMBps := float64(sim.Second/p.LinkByte) / metrics.MiB
	fmVolume := "N*(N-1) messages"
	if pname == "neighbor" {
		fmVolume = "32*N messages"
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("every fabric is a full-bisection 2-level Clos (spines = leaves); raw link rate %.0f MB/s per cable", linkMBps),
		fmt.Sprintf("raw points: %s and 32 bisection packets per node, no host stack", desc),
		fmt.Sprintf("FM points: %s (%s) through the complete FM 1.0 layer on every node", desc, fmVolume),
	)
	if shards > 1 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"sharded run: every simulation split across %d shard kernels (one leaf-group block per shard, lookahead = switch latency); deterministic, but contention may resolve in a different order than one kernel (DESIGN.md)", shards))
		if opt.ShardTiming {
			for i, n := range nodes {
				line := fmt.Sprintf("shard timing N=%d FM all-to-all:", n)
				for s, st := range fmShards[i] {
					line += fmt.Sprintf("  s%d %.2gMev/%dw/%s", s,
						float64(st.Events)/1e6, st.Windows, st.Busy.Round(time.Millisecond))
				}
				r.Notes = append(r.Notes, line)
			}
			r.Notes = append(r.Notes,
				"shard timing legend: events executed (millions) / barrier windows with work / wall-clock busy in the shard's kernel")
		}
	}
	return r
}
