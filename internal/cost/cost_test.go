package cost

import (
	"testing"

	"fm/internal/sim"
)

func TestAppendixAConstants(t *testing.T) {
	p := Default()
	// Appendix A: DMA setup = 8 cycles * 40 ns = 320 ns.
	if p.DMASetup != sim.Ns(320) {
		t.Errorf("DMASetup = %v, want 320ns", p.DMASetup)
	}
	if got := 8 * p.LANaiCycle; got != p.DMASetup {
		t.Errorf("DMASetup %v != 8 cycles %v", p.DMASetup, got)
	}
	// Appendix A: 12.5 ns/byte.
	if p.LinkByte != sim.NsF(12.5) {
		t.Errorf("LinkByte = %v", p.LinkByte)
	}
	// "spooling a packet of 128 bytes over the channel takes 1.6us"
	if got := p.LinkTime(128); got != sim.Us(1)+sim.Ns(600) {
		t.Errorf("LinkTime(128) = %v, want 1.6us", got)
	}
	if p.SwitchLatency != sim.Ns(550) {
		t.Errorf("SwitchLatency = %v", p.SwitchLatency)
	}
}

func TestLinkBandwidthIs76MiB(t *testing.T) {
	p := Default()
	// 1 MiB over the link should take 2^20 * 12.5 ns = 13.107 ms,
	// i.e. 76.3 MiB/s.
	d := p.LinkTime(1 << 20)
	mibps := 1.0 / d.Seconds()
	if mibps < 76 || mibps > 77 {
		t.Errorf("link bandwidth = %.2f MiB/s, want ~76.3", mibps)
	}
}

func TestPIOBandwidthNear23MB(t *testing.T) {
	p := Default()
	// Pure double-word stores: 8 B / 320 ns = 25 MB/s decimal; with the
	// copy-loop overhead the delivered rate must sit a little above the
	// paper's 21.2 MB/s layer-level figure and below the 23.9 MB/s pure
	// store maximum.
	d := p.PIOTime(1 << 20)
	mibps := 1.0 / d.Seconds()
	if mibps < 19.5 || mibps > 24.5 {
		t.Errorf("PIO bandwidth = %.2f MiB/s, want ~22-24", mibps)
	}
}

func TestMemcpyBandwidthNear34MB(t *testing.T) {
	p := Default()
	d := p.MemcpyTime(1 << 20)
	mibps := 1.0 / d.Seconds()
	if mibps < 32 || mibps > 36 {
		t.Errorf("memcpy bandwidth = %.2f MiB/s, want ~34", mibps)
	}
}

func TestSBusDMABandwidthInRange(t *testing.T) {
	p := Default()
	d := p.SBusDMATime(1 << 20)
	mibps := 1.0 / d.Seconds()
	if mibps < 40 || mibps > 54 {
		t.Errorf("SBus DMA bandwidth = %.2f MiB/s, want 40-54", mibps)
	}
}

func TestInstr(t *testing.T) {
	p := Default()
	// One instruction = 3.5 cycles * 40 ns = 140 ns.
	if got := p.Instr(1); got != sim.Ns(140) {
		t.Errorf("Instr(1) = %v, want 140ns", got)
	}
	if got := p.Instr(10); got != sim.NsF(1400) {
		t.Errorf("Instr(10) = %v", got)
	}
}

func TestBaselineLCPOverheadNearT0(t *testing.T) {
	p := Default()
	// Table 4: baseline t0 = 4.2 us = send instructions + DMA setup.
	t0 := p.Instr(p.LCPBaselineSendInstr) + p.DMASetup
	if t0 < sim.NsF(3900) || t0 > sim.NsF(4500) {
		t.Errorf("baseline LCP t0 = %v, want ~4.2us", t0)
	}
	// Streamed t0 = 3.5 us.
	t0s := p.Instr(p.LCPStreamedSendInstr) + p.DMASetup
	if t0s < sim.NsF(3200) || t0s > sim.NsF(3800) {
		t.Errorf("streamed LCP t0 = %v, want ~3.5us", t0s)
	}
	if t0s >= t0 {
		t.Error("streamed must be cheaper than baseline")
	}
}

func TestVariants(t *testing.T) {
	p := Default()
	b := p.WithBurstPIO()
	if b.SBusPIOWord8 >= p.SBusPIOWord8 {
		t.Error("burst PIO did not speed up stores")
	}
	if p.SBusPIOWord8 != sim.Ns(320) {
		t.Error("WithBurstPIO mutated the receiver")
	}
	f := p.WithFasterLANai(2)
	if f.Instr(10) != p.Instr(10)/2 {
		t.Errorf("faster LANai: %v vs %v", f.Instr(10), p.Instr(10))
	}
	s := p.WithSlowerHost(2)
	if s.HostSendCall != 2*p.HostSendCall {
		t.Error("slower host did not scale send call")
	}
	if s.HostAckBuild != 2*p.HostAckBuild {
		t.Error("slower host did not scale ack build")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Default()
	q := p.Clone()
	q.LinkByte = 1
	if p.LinkByte == 1 {
		t.Error("Clone shares state")
	}
}

func TestPIOTimeRoundsUpToWords(t *testing.T) {
	p := Default()
	if p.PIOTime(1) != p.PIOTime(8) {
		t.Error("1 byte and 8 bytes should both cost one double-word")
	}
	if p.PIOTime(9) != 2*(p.SBusPIOWord8+p.SBusPIOLoop) {
		t.Error("9 bytes should cost two double-words")
	}
	if p.PIOTime(0) != 0 {
		t.Error("zero bytes should be free")
	}
}
