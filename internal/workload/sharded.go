package workload

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/stats"
)

// Sharded drivers: the same measurements as DriveRaw / DriveFM, with
// the single simulation partitioned across N shard kernels (leaf group
// per shard, conservative lookahead = SwitchLatency; see the sim and
// myrinet shard runtimes). A shards value of 1 delegates to the
// single-kernel driver verbatim, so `-shards 1` is byte-identical to
// the unsharded path by construction.
//
// For a fixed shard count the run is deterministic — boundary events
// merge in a canonical order — but a sharded run is not required to
// reproduce the single-kernel timeline exactly: under contention the
// single kernel grants switch output ports in global injection order,
// while shards grant them in merged head-arrival order. Uncontended
// traffic is identical; contended aggregates differ within the
// reservation-order ambiguity the model already has.

// shardedFabrics builds one fabric replica per shard and wires the
// cross-shard continuation path. It panics on an unsupported shard
// count: drivers are called after fmbench's validation, so reaching
// this with a bad count is a programming error.
func shardedFabrics(spec FabricSpec, p *cost.Params, g *sim.ShardGroup) ([]*myrinet.Fabric, *myrinet.Partition) {
	fabs := make([]*myrinet.Fabric, g.Shards())
	for s := range fabs {
		fabs[s] = spec.Build(g.Shard(s).Kernel(), p)
	}
	part, err := fabs[0].Topology().Partition(g.Shards())
	if err != nil {
		panic(fmt.Sprintf("workload: %s: %v", spec.Name, err))
	}
	for s := range fabs {
		s := s
		fabs[s].SetShard(part, s, func(owner int, at sim.Time, pkt *myrinet.Packet) {
			g.Shard(s).Post(owner, at, fabs[owner].ResumeCross, pkt)
		})
	}
	return fabs, part
}

// mergeLatency folds per-shard histograms into the result in shard
// order (bucket merging is order-independent, but a fixed order keeps
// the fingerprint canonical).
func mergeLatency(res *Result, hists []stats.Histogram) {
	for i := range hists {
		res.Latency.Merge(&hists[i])
	}
}

// DriveRawSharded is DriveRaw split over `shards` kernels: every
// source's injector chain runs on the shard owning the source, sinks
// count deliveries on the shard owning the destination, and packet
// heads crossing shard boundaries travel as timestamped inter-shard
// events.
func DriveRawSharded(spec FabricSpec, p *cost.Params, pat Pattern, size, shards int) Result {
	if shards <= 1 {
		return DriveRaw(spec, p, pat, size)
	}
	g := sim.NewShardGroup(shards, p.SwitchLatency)
	fabs, part := shardedFabrics(spec, p, g)
	n := fabs[0].Nodes()

	res, sends, _, maxSize := prepare(spec, pat, size, fabs...)

	// One shared read-only payload buffer; per-shard drive state so no
	// counter is touched by two kernels.
	payload := make([]byte, maxSize)
	hists := make([]stats.Histogram, shards)
	drs := make([]*rawDrive, shards)
	for s := range drs {
		drs[s] = &rawDrive{k: g.Shard(s).Kernel(), f: fabs[s], payload: payload, size: size, lat: &hists[s]}
	}
	for id := 0; id < n; id++ {
		s := part.NodeShard[id]
		fabs[s].Attach(id, drs[s])
	}
	for src := 0; src < n; src++ {
		s := part.NodeShard[src]
		var at sim.Time
		if q := sends[src]; q.Len() > 0 {
			at = sim.Time(q.At(0).At)
		}
		g.Shard(s).Kernel().AtArg(at, injectNext, &rawInjector{dr: drs[s], hdr: p.FMHeaderBytes, src: src, sends: sends[src]})
	}
	if err := g.Run(); err != nil {
		panic(err)
	}

	delivered := 0
	var last sim.Time
	for _, dr := range drs {
		delivered += dr.delivered
		if dr.last > last {
			last = dr.last
		}
	}
	if delivered != res.Messages {
		panic(fmt.Sprintf("workload: %s on %s delivered %d/%d packets",
			pat.Name(), spec.Name, delivered, res.Messages))
	}
	mergeLatency(&res, hists)
	res.Elapsed = sim.Duration(last)
	res.Shards = g.Stats()
	return res
}

// DriveFMSharded is DriveFM split over `shards` kernels: each rank's
// full stack (host, SBus, LANai, LCP, flow control) lives on the shard
// owning its leaf, and only fabric hops between shards cross the
// barrier.
func DriveFMSharded(spec FabricSpec, cfg core.Config, p *cost.Params, pat Pattern, size, shards int) Result {
	if shards <= 1 {
		return DriveFM(spec, cfg, p, pat, size)
	}
	c, err := cluster.NewFMShardedFrom(spec.Build, cfg, p, shards)
	if err != nil {
		panic(fmt.Sprintf("workload: %s: %v", spec.Name, err))
	}
	n := len(c.EPs)

	res, sends, expect, maxSize := prepare(spec, pat, size, c.Fabs...)

	// The slab is shared across shards but each rank writes only its
	// own disjoint slice; latency histograms are per shard and merged
	// after the run.
	slab := make([]byte, n*maxSize)
	hists := make([]stats.Histogram, shards)
	for id := 0; id < n; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			fmRank(ep, sends[id], expect[id], size, slab[id*maxSize:(id+1)*maxSize],
				&hists[c.Part.NodeShard[id]], nil, 0)
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	mergeLatency(&res, hists)
	res.Elapsed = sim.Duration(c.Group.Now())
	res.Shards = c.Group.Stats()
	return res
}
