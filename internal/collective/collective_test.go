package collective

import (
	"bytes"
	"math"
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

const h = 3

// group runs body on every node of an n-node cluster and returns it.
func group(t *testing.T, n int, body func(c *Comm)) *cluster.FM {
	t.Helper()
	cl := cluster.NewFM(n, core.DefaultConfig(), cost.Default())
	for i := 0; i < n; i++ {
		i := i
		cl.Start(i, func(ep *core.Endpoint) {
			body(New(ep, n, h))
			// Drain trailing acks so the run quiesces cleanly.
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		entered := make([]sim.Time, n)
		exited := make([]sim.Time, n)
		group(t, n, func(c *Comm) {
			// Skew the entries so the barrier has real work to do.
			c.ep.CPU().Advance(sim.Duration(c.Rank()) * 40 * sim.Microsecond)
			entered[c.Rank()] = c.ep.Now()
			c.Barrier()
			exited[c.Rank()] = c.ep.Now()
		})
		var lastEnter sim.Time
		for _, e := range entered {
			if e > lastEnter {
				lastEnter = e
			}
		}
		for r, x := range exited {
			if x < lastEnter {
				t.Errorf("n=%d: rank %d left the barrier at %v before the last entry %v",
					n, r, x, lastEnter)
			}
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	count := 0
	group(t, 4, func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
		}
		if c.Rank() == 0 {
			count = 10
		}
	})
	if count != 10 {
		t.Fatal("barriers did not complete")
	}
}

func TestBroadcastSmall(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		msg := []byte("broadcast payload")
		got := make([][]byte, n)
		group(t, n, func(c *Comm) {
			var data []byte
			if c.Rank() == 2%n {
				data = msg
			}
			got[c.Rank()] = c.Broadcast(2%n, data)
		})
		for r := 0; r < n; r++ {
			if !bytes.Equal(got[r], msg) {
				t.Errorf("n=%d rank %d got %q", n, r, got[r])
			}
		}
	}
}

func TestBroadcastMultiFrame(t *testing.T) {
	msg := bytes.Repeat([]byte{7, 13, 42}, 500) // 1500 B > one frame
	got := make([][]byte, 4)
	group(t, 4, func(c *Comm) {
		var data []byte
		if c.Rank() == 0 {
			data = msg
		}
		got[c.Rank()] = c.Broadcast(0, data)
	})
	for r := range got {
		if !bytes.Equal(got[r], msg) {
			t.Errorf("rank %d: %d bytes, want %d", r, len(got[r]), len(msg))
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{2, 4, 7, 8} {
		var result []float64
		group(t, n, func(c *Comm) {
			vals := []float64{float64(c.Rank() + 1), 2}
			if r := c.Reduce(0, vals, Sum); c.Rank() == 0 {
				result = r
			} else if r != nil {
				t.Errorf("non-root rank %d got a result", c.Rank())
			}
		})
		want := float64(n*(n+1)) / 2
		if result[0] != want || result[1] != float64(2*n) {
			t.Errorf("n=%d: reduce = %v, want [%v %v]", n, result, want, 2*n)
		}
	}
}

func TestReduceMaxMinProd(t *testing.T) {
	const n = 6
	var maxV, minV, prodV float64
	group(t, n, func(c *Comm) {
		v := []float64{float64(c.Rank()) - 2}
		if r := c.Reduce(0, v, Max); c.Rank() == 0 {
			maxV = r[0]
		}
		if r := c.Reduce(0, v, Min); c.Rank() == 0 {
			minV = r[0]
		}
		w := []float64{float64(c.Rank() + 1)}
		if r := c.Reduce(0, w, Prod); c.Rank() == 0 {
			prodV = r[0]
		}
	})
	if maxV != 3 || minV != -2 || prodV != 720 {
		t.Errorf("max=%v min=%v prod=%v", maxV, minV, prodV)
	}
}

func TestAllreduce(t *testing.T) {
	const n = 8
	results := make([][]float64, n)
	group(t, n, func(c *Comm) {
		results[c.Rank()] = c.Allreduce([]float64{1, float64(c.Rank())}, Sum)
	})
	for r, got := range results {
		if got[0] != n || got[1] != float64(n*(n-1))/2 {
			t.Errorf("rank %d allreduce = %v", r, got)
		}
	}
}

func TestAllreduceLargeVector(t *testing.T) {
	const n = 4
	const dim = 100 // 800 B of floats: multi-frame reduce + broadcast
	results := make([][]float64, n)
	group(t, n, func(c *Comm) {
		v := make([]float64, dim)
		for i := range v {
			v[i] = float64(c.Rank()*dim + i)
		}
		results[c.Rank()] = c.Allreduce(v, Sum)
	})
	for i := 0; i < dim; i++ {
		want := 0.0
		for r := 0; r < n; r++ {
			want += float64(r*dim + i)
		}
		for r := 0; r < n; r++ {
			if math.Abs(results[r][i]-want) > 1e-9 {
				t.Fatalf("rank %d element %d = %v, want %v", r, i, results[r][i], want)
			}
		}
	}
}

func TestGather(t *testing.T) {
	const n = 5
	var got [][]byte
	group(t, n, func(c *Comm) {
		mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
		if g := c.Gather(1, mine); c.Rank() == 1 {
			got = g
		}
	})
	for r := 0; r < n; r++ {
		want := bytes.Repeat([]byte{byte(r)}, r+1)
		if !bytes.Equal(got[r], want) {
			t.Errorf("gather[%d] = %v, want %v", r, got[r], want)
		}
	}
}

func TestAllToAll(t *testing.T) {
	const n = 4
	results := make([][][]byte, n)
	group(t, n, func(c *Comm) {
		data := make([][]byte, n)
		for j := 0; j < n; j++ {
			data[j] = []byte{byte(c.Rank()), byte(j)}
		}
		results[c.Rank()] = c.AllToAll(data)
	})
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := []byte{byte(i), byte(j)}
			if !bytes.Equal(results[j][i], want) {
				t.Errorf("result[%d][%d] = %v, want %v", j, i, results[j][i], want)
			}
		}
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Phases must keep back-to-back heterogeneous collectives separate.
	const n = 4
	var sum float64
	var bcast []byte
	group(t, n, func(c *Comm) {
		c.Barrier()
		r := c.Allreduce([]float64{1}, Sum)
		c.Barrier()
		b := c.Broadcast(3, []byte{byte(int(r[0]))})
		if c.Rank() == 0 {
			sum = r[0]
			bcast = b
		}
	})
	if sum != n {
		t.Errorf("sum = %v", sum)
	}
	if len(bcast) != 1 || bcast[0] != byte(n) {
		t.Errorf("bcast = %v", bcast)
	}
}
