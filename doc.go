// Module fm is a full reproduction of "High Performance Messaging on
// Workstations: Illinois Fast Messages (FM) for Myrinet" (Pakin, Lauria,
// Chien; SC 1995) as a Go library: the FM 1.0 messaging layer, the
// simulated 1995 hardware substrate it runs on (SPARCstation hosts, SBus,
// LANai network coprocessor, Myrinet wormhole fabric), the Myrinet API
// comparison baseline, and a benchmark harness that regenerates every
// quantitative figure and table in the paper's evaluation.
//
// Beyond the paper, the fabric layer generalizes to arbitrary switch
// graphs (myrinet.Topology) with canned crossbar, line, and 2-level
// Clos constructors, the harness compares them under all-to-all and
// bisection traffic at 64+ nodes, and an MPI-style layer (internal/mpi:
// tagged matching, communicators, nonblocking operations, collectives)
// runs on top of FM to measure the classic cost of layering.
//
// Start with README.md for orientation: the package map, the experiment
// index, and how to run the examples; DESIGN.md walks the architecture
// and EXPERIMENTS.md catalogs the fmbench experiments. The benchmarks
// in bench_test.go regenerate one representative point per paper
// artifact; cmd/fmbench regenerates the complete figures and tables.
package fm
