// Occupancy: return-to-sender flow control under a hotspot.
//
// Six senders stream at one deliberately slow receiver. The receiver's
// host receive queue saturates, the host starts bouncing packets back
// (Section 4.5's rejection at the host), senders park the returns in
// their reject queues and retransmit after a backoff — and every message
// still arrives exactly once. The example prints the protocol's visible
// machinery: rejects, retransmits, queue high-water marks.
//
// Run with: go run ./examples/occupancy
package main

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

const (
	senders   = 6
	perSender = 400
	size      = 96
)

func main() {
	cfg := core.DefaultConfig()
	cfg.CheckInvariants = true // panic on any duplicate delivery
	cfg.HostRecvSlots = 48
	cfg.RejectThreshold = 24 // bounce above this backlog
	cfg.DrainLimit = 4       // the receiver consumes slowly
	cfg.WindowSlots = 64
	cfg.RetryDelay = 30 * sim.Microsecond

	c := cluster.NewFM(senders+1, cfg, cost.Default())
	total := senders * perSender
	received := make(map[int]int) // per-source counts
	got := 0
	maxBacklog := 0

	c.Start(0, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(src int, payload []byte) {
			received[src]++
			got++
			ep.CPU().Advance(20 * sim.Microsecond) // slow consumer
		})
		for got < total {
			ep.WaitIncoming()
			if q := c.Devs[0].HostRecvQ.Len(); q > maxBacklog {
				maxBacklog = q
			}
			ep.Extract()
		}
		ep.Extract() // flush trailing acks
	})
	for s := 1; s <= senders; s++ {
		s := s
		c.Start(s, func(ep *core.Endpoint) {
			buf := make([]byte, size)
			for i := 0; i < perSender; i++ {
				if err := ep.Send(0, 0, buf); err != nil {
					panic(err)
				}
			}
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("%d senders x %d packets of %dB into one slow receiver\n", senders, perSender, size)
	fmt.Printf("all %d packets delivered exactly once in %v virtual time\n\n", got, c.K.Now())

	rs := c.EPs[0].Stats()
	fmt.Printf("receiver: rejected %d packets back to their senders (backlog high-water %d/%d slots)\n",
		rs.RejectsSent, maxBacklog, cfg.HostRecvSlots)
	var retx, blocks uint64
	for s := 1; s <= senders; s++ {
		st := c.EPs[s].Stats()
		retx += st.Retransmits
		blocks += st.SendBlocks
		fmt.Printf("  sender %d: per-source delivered %d, rejects received %d, retransmits %d\n",
			s, received[s], st.RejectsReceived, st.Retransmits)
	}
	fmt.Printf("\ntotals: %d retransmits, %d window stalls; duplicates screened: %d (must be 0)\n",
		retx, blocks, rs.Duplicates)
	fmt.Println("sender-side reject queues bound memory: no per-sender buffers at the receiver (Section 4.5)")
}
