package workload

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/stats"
)

// Soak driver: the streaming counterpart of DriveFM. A batch drive
// injects everything as fast as the layers allow and reports one
// summary; a soak drive runs an open-loop Source against the full FM
// stack and folds the run into fixed-width virtual-time windows
// (stats.Series), so saturation knees, transient congestion, and
// fault-recovery dips are visible as a timeline instead of being
// averaged away.
//
// Latency semantics change with the loop: the payload stamp carries the
// *scheduled arrival* instant, not the send instant, so the receiver's
// reading is the sojourn time — source-queue wait included. Below the
// knee sojourn tracks service latency; past it the backlog grows for as
// long as the source keeps offering, and the windowed p99 blows up.
// That is the signature the batch drivers structurally cannot show.
//
// The soak timeline is always computed on the canonical single-kernel
// engine. Sharded execution is deterministic for a fixed shard count,
// but under contention it grants switch output ports in merged
// head-arrival order where the single kernel grants them in injection
// order, so a contended timeline is not shard-invariant — and a
// saturation study is contended by definition. Running the one
// canonical engine is what makes `fmbench -experiment soak` output
// byte-identical at any accepted -shards value.

// TerminationMode selects how much of the timeline a soak run reports.
type TerminationMode int

const (
	// TerminateDrain reports the full timeline through quiescence: the
	// windows past the source horizon show the backlog draining, and
	// the timeline length therefore depends on offered load.
	TerminateDrain TerminationMode = iota
	// TerminateHorizon fixes the observation span: exactly the windows
	// covering [0, horizon) are reported, whatever the load. The drive
	// still drains to empty after the bell — every scheduled arrival is
	// delivered and counted in the totals — but post-horizon windows
	// are not part of the reported series, so sweep tables keep one
	// shape across loads.
	TerminateHorizon
)

func (m TerminationMode) String() string {
	if m == TerminateHorizon {
		return "horizon"
	}
	return "drain"
}

// SoakOptions configures the windowing of a soak drive.
type SoakOptions struct {
	// Width is the virtual-time window width (required, positive).
	Width sim.Duration
	// Mode picks the reported span; the zero value is TerminateDrain.
	Mode TerminationMode
	// Faults, when non-empty, is a compiled fault timeline installed on
	// the fabric before traffic starts, so recovery transients (delivery
	// dips, retransmit bursts, sojourn spikes) show up in the windowed
	// series. Ranks then stay alive polling until the settle horizon
	// past the last recovery, exactly like the fault drivers.
	Faults []myrinet.FaultWindow
}

// SoakResult is a Result plus the windowed timeline.
type SoakResult struct {
	Result
	// Series is the windowed timeline: offered arrivals, deliveries
	// with sojourn-latency histograms, payload bytes, retransmits. It
	// always spans at least the source horizon (idle tail included) and
	// extends through quiescence.
	Series *stats.Series
	// Horizon is the source's arrival span.
	Horizon sim.Duration
	// Mode is the termination mode the run was asked for.
	Mode TerminationMode
}

// HorizonWindows returns the number of windows covering [0, Horizon).
func (r *SoakResult) HorizonWindows() int {
	w := sim.Time(r.Series.Width())
	return int((sim.Time(r.Horizon) + w - 1) / w)
}

// ReportWindows returns how many leading windows the termination mode
// exposes: every window through quiescence under TerminateDrain, the
// fixed horizon span under TerminateHorizon.
func (r *SoakResult) ReportWindows() int {
	if r.Mode == TerminateHorizon {
		return r.HorizonWindows()
	}
	return r.Series.Len()
}

// soakRank is the per-rank body of a soak drive: fmRank's loop with the
// open-loop stamp (scheduled arrival, not send instant), per-window
// delivery recording, and retransmit-delta attribution after every
// extract. Ranks on one kernel run as coroutines, so sharing one Series
// is deterministic.
func soakRank(ep *core.Endpoint, sends sendSeq, expect, size int, buf []byte,
	series *stats.Series, settleAt sim.Time) {
	got := 0
	var seenRetrans uint64
	poll := func() {
		if r := ep.Stats().Retransmits; r > seenRetrans {
			series.Retransmits(ep.Now(), r-seenRetrans)
			seenRetrans = r
		}
	}
	ep.RegisterHandler(0, func(src int, payload []byte) {
		got++
		if at, ok := stampedAt(payload); ok {
			series.Delivery(ep.Now(), ep.Now().Sub(at), len(payload))
		}
	})
	for j := 0; j < sends.Len(); j++ {
		s := sends.At(j)
		// Poll-wait to the scheduled arrival: unlike the batch drivers'
		// blind waitUntil, an idle open-loop rank keeps extracting, so a
		// lightly loaded receiver's sojourn reflects service latency and
		// not the gap to its own next send.
		for sim.Duration(ep.Now()) < s.At {
			d := s.At - sim.Duration(ep.Now())
			if d > settleQuantum {
				d = settleQuantum
			}
			ep.CPU().Advance(d)
			ep.Extract()
			poll()
		}
		msg := buf[:sendSize(s, size)]
		stamp(msg, sim.Time(s.At))
		if err := ep.Send(s.Dst, 0, msg); err != nil {
			panic(err)
		}
		ep.Extract()
		poll()
	}
	for got < expect || ep.Outstanding() > 0 {
		ep.WaitIncoming()
		ep.Extract()
		poll()
	}
	for ep.Now() < settleAt {
		ep.CPU().Advance(settleQuantum)
		ep.Extract()
		poll()
	}
}

// SoakDriveFM runs an open-loop source through the complete FM 1.0
// stack on the spec's fabric and returns the windowed timeline. Every
// scheduled arrival is delivered before the drive returns (the drain
// guarantee all FM drivers share); the termination mode only selects
// how much of the timeline ReportWindows exposes. Panics if any
// message cannot carry the 8-byte stamp — a soak without sojourn
// readings has no timeline to report.
func SoakDriveFM(spec FabricSpec, cfg core.Config, p *cost.Params, src Source, size int, opt SoakOptions) SoakResult {
	c := cluster.NewFMFrom(spec.Build, cfg, p)
	n := c.Fab.Nodes()
	c.Fab.ApplyFaults(opt.Faults)
	settleAt := settleTime(opt.Faults, cfg.RetryDelay)

	base, sends, expect, maxSize := prepare(spec, src, size, c.Fab)
	res := SoakResult{Result: base, Horizon: src.SourceHorizon(), Mode: opt.Mode}
	series := stats.NewSeries(opt.Width)
	res.Series = series

	// The offered schedule is a property of the source alone — record
	// it before the simulation so arrival windows never depend on how
	// service unfolded.
	for _, q := range sends {
		for j := 0; j < q.Len(); j++ {
			s := q.At(j)
			if sendSize(s, size) < 8 {
				panic(fmt.Sprintf("workload: soak %s on %s: payload %d bytes cannot carry the arrival stamp",
					src.Name(), spec.Name, sendSize(s, size)))
			}
			series.Arrival(sim.Time(s.At))
		}
	}

	slab := make([]byte, n*maxSize)
	for id := 0; id < n; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			soakRank(ep, sends[id], expect[id], size, slab[id*maxSize:(id+1)*maxSize], series, settleAt)
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	res.Elapsed = sim.Duration(c.K.Now())

	_, delivered, _, _ := series.Totals()
	if int(delivered) != res.Messages {
		panic(fmt.Sprintf("workload: soak %s on %s delivered %d/%d messages",
			src.Name(), spec.Name, delivered, res.Messages))
	}
	if stranded := c.Fab.PendingStranded(); stranded != 0 {
		panic(fmt.Sprintf("workload: soak %s on %s left %d frames stranded",
			src.Name(), spec.Name, stranded))
	}
	for i := 0; i < series.Len(); i++ {
		res.Latency.Merge(&series.Window(i).Lat)
	}
	series.Extend(res.HorizonWindows())
	return res
}
