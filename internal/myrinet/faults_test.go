package myrinet

import (
	"testing"

	"fm/internal/cost"
	"fm/internal/sim"
)

// faultRig is a 64-node Clos (8 leaves x 8 nodes, 8 spines: switches
// 0-7 are leaves, 8-15 spines) with every delivery recorded.
type faultRig struct {
	k   *sim.Kernel
	f   *Fabric
	got []delivery2
}

// delivery2 records one packet arrival with its fault-relevant fields
// (delivery already names the partition tests' trace type).
type delivery2 struct {
	src, dst int
	typ      PacketType
	bounced  bool
	orig     PacketType
	at       sim.Time
}

func newFaultRig(ws []FaultWindow) *faultRig {
	r := &faultRig{k: sim.NewKernel()}
	r.f = NewClos(r.k, cost.Default(), 8, 8, 8, 16)
	r.f.ApplyFaults(ws)
	for id := 0; id < 64; id++ {
		f := r.f
		f.Attach(id, SinkFunc(func(pkt *Packet) {
			r.got = append(r.got, delivery2{
				src: pkt.Src, dst: pkt.Dst, typ: pkt.Type,
				bounced: pkt.Bounced, orig: pkt.OrigType, at: r.k.Now(),
			})
			f.Release(pkt)
		}))
	}
	return r
}

func (r *faultRig) inject(src, dst int, at sim.Time) {
	f := r.f
	r.k.AtArg(at, func(any) {
		pkt := f.NewPacket()
		pkt.Src, pkt.Dst, pkt.Type = src, dst, Data
		pkt.HeaderBytes = 16
		pkt.SetPayload(make([]byte, 64))
		f.Inject(pkt)
	}, nil)
}

func (r *faultRig) run(t *testing.T) {
	t.Helper()
	if err := r.k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// win builds a window in microseconds.
func win(kind FaultKind, index int, startUs, endUs int64) FaultWindow {
	return FaultWindow{Kind: kind, Index: index,
		Start: sim.Time(0).Add(sim.Us(startUs)), End: sim.Time(0).Add(sim.Us(endUs))}
}

// linkBetween returns the directed link index from switch a to switch b.
func linkBetween(t *testing.T, topo *Topology, a, b int) int {
	t.Helper()
	for i := 0; i < topo.NumLinks(); i++ {
		if from, to := topo.LinkEnds(i); from == a && to == b {
			return i
		}
	}
	t.Fatalf("no link %d->%d", a, b)
	return -1
}

// TestLinkFaultBouncesInFlight kills the exact uplink a packet's route
// crosses, with the head arriving mid-window: the fabric must flip the
// frame into a Reject back at the sender, not lose it and not deliver it.
func TestLinkFaultBouncesInFlight(t *testing.T) {
	// Route 0->15 goes leaf0 -> spine7 (switch 15) -> leaf1: the
	// multipath pick is dst mod spines.
	rig := newFaultRig(nil) // throwaway to read the topology
	li := linkBetween(t, rig.f.Topology(), 0, 15)

	rig = newFaultRig([]FaultWindow{win(LinkFault, li, 26, 82)})
	rig.inject(0, 15, sim.Time(0).Add(sim.Us(30)))
	rig.run(t)

	if len(rig.got) != 1 {
		t.Fatalf("got %d deliveries, want 1: %+v", len(rig.got), rig.got)
	}
	d := rig.got[0]
	if d.typ != Reject || !d.bounced || d.orig != Data || d.dst != 0 {
		t.Fatalf("delivery = %+v, want a bounced Reject (orig Data) back at node 0", d)
	}
	fs := rig.f.FaultStats()
	if fs.LinkDowns != 1 || fs.Recoveries != 1 || fs.Bounced != 1 {
		t.Fatalf("stats = %+v, want LinkDowns=1 Recoveries=1 Bounced=1", fs)
	}
	if rig.f.PendingStranded() != 0 {
		t.Fatalf("%d frames stranded", rig.f.PendingStranded())
	}
}

// TestSwitchFaultBouncesThenRecovers kills a spine mid-window (bounce),
// then re-sends the same flow after recovery plus the detection lag
// (normal delivery): the same fabric serves both.
func TestSwitchFaultBouncesThenRecovers(t *testing.T) {
	rig := newFaultRig([]FaultWindow{win(SwitchFault, 15, 26, 82)})
	rig.inject(0, 15, sim.Time(0).Add(sim.Us(30)))  // head hits dead spine
	rig.inject(0, 15, sim.Time(0).Add(sim.Us(150))) // after End+DetectLag
	rig.run(t)

	if len(rig.got) != 2 {
		t.Fatalf("got %d deliveries, want 2: %+v", len(rig.got), rig.got)
	}
	if d := rig.got[0]; d.typ != Reject || d.dst != 0 {
		t.Fatalf("first delivery = %+v, want a Reject back at node 0", d)
	}
	if d := rig.got[1]; d.typ != Data || d.dst != 15 || d.bounced {
		t.Fatalf("second delivery = %+v, want clean Data at node 15", d)
	}
	fs := rig.f.FaultStats()
	if fs.SwitchDowns != 1 || fs.Recoveries != 1 || fs.Bounced != 1 {
		t.Fatalf("stats = %+v, want SwitchDowns=1 Recoveries=1 Bounced=1", fs)
	}
}

// TestSwitchFaultReroutesAfterDetection: an injection after
// Start+DetectLag resolves a route around the dead spine and delivers
// cleanly — the adaptive path, no bounce at all.
func TestSwitchFaultReroutesAfterDetection(t *testing.T) {
	rig := newFaultRig([]FaultWindow{win(SwitchFault, 15, 26, 300)})
	// 60us: past detection at 51us, well inside the outage.
	rig.inject(0, 15, sim.Time(0).Add(sim.Us(60)))
	rig.run(t)

	if len(rig.got) != 1 {
		t.Fatalf("got %d deliveries, want 1: %+v", len(rig.got), rig.got)
	}
	if d := rig.got[0]; d.typ != Data || d.dst != 15 {
		t.Fatalf("delivery = %+v, want clean Data at node 15 via another spine", d)
	}
	if fs := rig.f.FaultStats(); fs.Bounced != 0 || fs.Unroutable != 0 {
		t.Fatalf("rerouted injection still bounced: %+v", fs)
	}
}

// TestNodeFaultBouncesAtDeliverySwitch: a frame addressed to a down
// interface turns around at the delivery switch.
func TestNodeFaultBouncesAtDeliverySwitch(t *testing.T) {
	rig := newFaultRig([]FaultWindow{win(NodeFault, 15, 10, 50)})
	rig.inject(0, 15, sim.Time(0).Add(sim.Us(20)))
	rig.run(t)

	if len(rig.got) != 1 {
		t.Fatalf("got %d deliveries, want 1: %+v", len(rig.got), rig.got)
	}
	if d := rig.got[0]; d.typ != Reject || d.dst != 0 || d.orig != Data {
		t.Fatalf("delivery = %+v, want a Reject back at node 0", d)
	}
	fs := rig.f.FaultStats()
	if fs.NodeDowns != 1 || fs.Bounced != 1 {
		t.Fatalf("stats = %+v, want NodeDowns=1 Bounced=1", fs)
	}
}

// TestNodeFaultStrandsOwnBounce: a down node's own injection bounces at
// the source — and that bounce, aimed back at the down node itself,
// cannot be delivered until the interface recovers. It must strand and
// be released by the recovery toggle, never lost.
func TestNodeFaultStrandsOwnBounce(t *testing.T) {
	rig := newFaultRig([]FaultWindow{win(NodeFault, 15, 10, 50)})
	rig.inject(15, 0, sim.Time(0).Add(sim.Us(20)))
	rig.run(t)

	if len(rig.got) != 1 {
		t.Fatalf("got %d deliveries, want 1: %+v", len(rig.got), rig.got)
	}
	d := rig.got[0]
	if d.typ != Reject || d.dst != 15 {
		t.Fatalf("delivery = %+v, want the Reject back at node 15", d)
	}
	if recovery := sim.Time(0).Add(sim.Us(50)); d.at < recovery {
		t.Fatalf("bounce delivered at %v, before the interface recovered at %v", d.at, recovery)
	}
	fs := rig.f.FaultStats()
	if fs.Unroutable != 1 || fs.Stranded != 1 {
		t.Fatalf("stats = %+v, want Unroutable=1 Stranded=1", fs)
	}
	if rig.f.PendingStranded() != 0 {
		t.Fatalf("%d frames still stranded after recovery", rig.f.PendingStranded())
	}
}

// TestLossBurstDropsDataNotBounces: a loss burst covering both
// directions of a link bounces the data frame crossing it — and the
// resulting Reject recrosses the same lossy span unharmed, because
// bounces are control traffic exempt from bursts.
func TestLossBurstDropsDataNotBounces(t *testing.T) {
	rig := newFaultRig(nil)
	up := linkBetween(t, rig.f.Topology(), 0, 15)
	down := linkBetween(t, rig.f.Topology(), 15, 0)

	rig = newFaultRig([]FaultWindow{
		win(LossBurst, up, 10, 200),
		win(LossBurst, down, 10, 200),
	})
	rig.inject(0, 15, sim.Time(0).Add(sim.Us(30)))
	rig.run(t)

	if len(rig.got) != 1 {
		t.Fatalf("got %d deliveries, want 1: %+v", len(rig.got), rig.got)
	}
	if d := rig.got[0]; d.typ != Reject || d.dst != 0 {
		t.Fatalf("delivery = %+v, want the Reject home at node 0", d)
	}
	fs := rig.f.FaultStats()
	if fs.Lost != 1 || fs.Bounced != 1 {
		t.Fatalf("stats = %+v, want exactly one loss and one bounce", fs)
	}
}

// TestCorruptBurstDetectedAtInterface: a corruption burst marks the
// frame in flight; the delivering interface detects it and bounces the
// frame from the destination switch instead of handing it up.
func TestCorruptBurstDetectedAtInterface(t *testing.T) {
	rig := newFaultRig(nil)
	up := linkBetween(t, rig.f.Topology(), 0, 15)

	rig = newFaultRig([]FaultWindow{win(CorruptBurst, up, 10, 200)})
	rig.inject(0, 15, sim.Time(0).Add(sim.Us(30)))
	rig.run(t)

	if len(rig.got) != 1 {
		t.Fatalf("got %d deliveries, want 1: %+v", len(rig.got), rig.got)
	}
	if d := rig.got[0]; d.typ != Reject || d.dst != 0 || d.orig != Data {
		t.Fatalf("delivery = %+v, want a Reject (orig Data) at node 0", d)
	}
	fs := rig.f.FaultStats()
	if fs.Corrupted != 1 || fs.Bounced != 1 {
		t.Fatalf("stats = %+v, want Corrupted=1 Bounced=1", fs)
	}
}

// FuzzPartition exercises partitioning and fault-degraded forwarding
// over fuzzed Clos geometries: Partition must never panic for any shard
// count, and a fabric with arbitrary in-range outage windows must
// deliver every injection exactly once (as Data or as a Reject) with
// nothing stranded once every window has closed.
func FuzzPartition(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint8(4), uint8(4), uint16(3), uint16(40), uint8(9), uint8(60))
	f.Add(uint8(8), uint8(8), uint8(8), uint8(1), uint16(15), uint16(0), uint8(26), uint8(56))
	f.Add(uint8(1), uint8(2), uint8(1), uint8(7), uint16(999), uint16(999), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, spines, leaves, npl, shards uint8, killSw, killLink uint16, startUs, durUs uint8) {
		ns := 1 + int(spines%6)
		nl := 1 + int(leaves%6)
		nn := 1 + int(npl%6)
		// Leaves need npl+spines ports, spines need one per leaf.
		ports := nn + ns
		if nl > ports {
			ports = nl
		}
		p := cost.Default()
		topo := NewClos(sim.NewKernel(), p, ns, nl, nn, ports).Topology()

		// Partition never panics, for counts below, at, and past the bound.
		for s := 1; s <= topo.MaxShards()+2; s++ {
			if _, err := topo.Partition(s); err != nil && s <= topo.MaxShards() {
				t.Fatalf("Partition(%d) on %d leaf groups: %v", s, topo.LeafGroups(), err)
			}
		}
		if _, err := topo.Partition(int(shards%12) + 1); err != nil {
			_ = err // out-of-range counts error; panicking is the bug
		}

		// Degrade the fabric: one switch outage, one link loss burst,
		// windows derived from the fuzz input but always in range and
		// always closing.
		start := int64(startUs)
		end := start + 1 + int64(durUs)
		ws := []FaultWindow{
			win(SwitchFault, int(killSw)%topo.NumSwitches(), start, end),
		}
		if topo.NumLinks() > 0 {
			ws = append(ws, win(LossBurst, int(killLink)%topo.NumLinks(), start, end))
		}

		k := sim.NewKernel()
		fab := NewClos(k, p, ns, nl, nn, ports)
		fab.ApplyFaults(ws)
		nodes := fab.Nodes()
		delivered := 0
		for id := 0; id < nodes; id++ {
			fab.Attach(id, SinkFunc(func(pkt *Packet) {
				delivered++
				fab.Release(pkt)
			}))
		}
		injected := 0
		if nodes >= 2 {
			for i := 0; i < 5; i++ {
				src := (int(killSw) + i) % nodes
				dst := (int(killLink) + 3*i + 1) % nodes
				if src == dst {
					continue
				}
				injected++
				at := sim.Time(0).Add(sim.Us(int64(i) * (start + 7) / 3))
				k.AtArg(at, func(any) {
					pkt := fab.NewPacket()
					pkt.Src, pkt.Dst, pkt.Type = src, dst, Data
					pkt.HeaderBytes = 16
					pkt.SetPayload(make([]byte, 32))
					fab.Inject(pkt)
				}, nil)
			}
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		if delivered != injected {
			t.Fatalf("geometry %dx%dx%d faults %v: delivered %d of %d injections",
				ns, nl, nn, ws, delivered, injected)
		}
		if fab.PendingStranded() != 0 {
			t.Fatalf("geometry %dx%dx%d: %d frames stranded after all windows closed",
				ns, nl, nn, fab.PendingStranded())
		}
	})
}
