package workload

import (
	"encoding/binary"

	"fm/internal/core"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/stats"
)

// This file is the drive core every driver shares: the pregeneration
// prologue (pattern expansion, totals, route hints, hop accounting),
// the latency-stamp wire format, and the per-rank FM drive body. The
// public Drive* entry points in driver.go / sharded.go / faultdrive.go
// / soak.go differ only in which engine they build (single kernel or
// shard group), which stack level they run, and how they terminate —
// everything else lives here exactly once.

// sendSize resolves one send's payload size against the driver default.
func sendSize(s Send, def int) int {
	if s.Size > 0 {
		return s.Size
	}
	return def
}

// sendSeq is one rank's send sequence: a materialized slice for plain
// patterns, or an index-addressed view over a StreamingPattern that
// computes each send on demand. Drivers iterate it by index, so the
// streamed form never holds more than one Send at a time.
type sendSeq struct {
	list []Send
	sp   StreamingPattern // non-nil selects the streamed form
	src  int
	n    int
	ln   int
}

// Len returns the number of sends in the sequence.
func (q sendSeq) Len() int { return q.ln }

// At returns the j-th send.
func (q sendSeq) At(j int) Send {
	if q.sp != nil {
		return q.sp.SendAt(q.src, q.n, j)
	}
	return q.list[j]
}

// genSeqs binds every rank's send sequence and accumulates the shared
// totals: message count, payload bytes, per-rank receive counts, and
// the buffer size the drivers need. Streaming patterns are walked
// without materializing; everything else expands through Gen exactly
// as before.
func genSeqs(pat Pattern, n, def int) (sends []sendSeq, messages int, bytes int64, expect []int, maxSize int) {
	sends = make([]sendSeq, n)
	expect = make([]int, n)
	maxSize = def
	sp, _ := pat.(StreamingPattern)
	for src := 0; src < n; src++ {
		if sp != nil {
			sends[src] = sendSeq{sp: sp, src: src, n: n, ln: sp.RankLen(src, n)}
		} else {
			list := pat.Gen(src, n)
			sends[src] = sendSeq{list: list, ln: len(list)}
		}
		q := sends[src]
		messages += q.Len()
		for j := 0; j < q.Len(); j++ {
			sz := sendSize(q.At(j), def)
			bytes += int64(sz)
			expect[q.At(j).Dst]++
			if sz > maxSize {
				maxSize = sz
			}
		}
	}
	return sends, messages, bytes, expect, maxSize
}

// meanHops computes the pattern's mean switch-crossing count on the
// fabric: pure routing-table arithmetic, no virtual time.
func meanHops(f *myrinet.Fabric, sends []sendSeq, messages int) float64 {
	if messages == 0 {
		return 0
	}
	hops := 0
	for src := range sends {
		q := sends[src]
		for j := 0; j < q.Len(); j++ {
			hops += f.Hops(src, q.At(j).Dst)
		}
	}
	return float64(hops) / float64(messages)
}

// prepare is the prologue every driver runs before simulating: bind
// the pattern's per-rank sequences, fill the result's totals, hint the
// route caches of every fabric replica, and account topological hops.
// The returned sequences are in canonical rank order; expect is the
// per-rank receive count.
func prepare(spec FabricSpec, pat Pattern, size int, fabs ...*myrinet.Fabric) (res Result, sends []sendSeq, expect []int, maxSize int) {
	n := fabs[0].Nodes()
	res = Result{Pattern: pat.Name(), Fabric: spec.Name}
	var messages int
	sends, messages, res.PayloadBytes, expect, maxSize = genSeqs(pat, n, size)
	res.Messages = messages
	hint := spec.RouteHint(n, messages)
	for _, f := range fabs {
		f.HintRoutes(hint)
	}
	res.MeanHops = meanHops(fabs[0], sends, messages)
	return res, sends, expect, maxSize
}

// stamp writes a virtual instant into the payload head so the receiver
// can compute per-message latency; payloads shorter than the timestamp
// skip it (the recorded distribution then only covers the stampable
// messages). Closed-loop drivers stamp the send instant; the open-loop
// soak driver stamps the scheduled arrival instant, so the receiver's
// reading includes source-queue sojourn.
func stamp(buf []byte, now sim.Time) {
	if len(buf) >= 8 {
		binary.LittleEndian.PutUint64(buf, uint64(now))
	}
}

func stampedAt(payload []byte) (sim.Time, bool) {
	if len(payload) < 8 {
		return 0, false
	}
	return sim.Time(binary.LittleEndian.Uint64(payload)), true
}

// waitUntil charges the rank's CPU until the send's earliest injection
// instant.
func waitUntil(ep *core.Endpoint, at sim.Duration) {
	if d := at - sim.Duration(ep.Now()); d > 0 {
		ep.CPU().Advance(d)
	}
}

// fmRank is the per-rank drive body shared by every FM-stack driver
// (healthy, sharded, faulted): register handler 0 counting deliveries
// and recording stamped latency into lat, issue the send list paced by
// each send's At instant while draining incoming traffic, then extract
// until the expected share has arrived and nothing is outstanding.
//
// The two optional hooks are virtual-time-neutral when disabled, so
// the healthy drivers are byte-identical to their pre-extraction form:
// a non-nil last tracks the rank's final delivery instant (fault runs
// measure Elapsed from it), and a settleAt past zero keeps the rank
// polling after its own traffic completes, so frames bounced its way
// late (a standalone ack, a strand released at a recovery) are requeued
// and resent rather than rotting in the receive queue while their
// original target spins forever.
func fmRank(ep *core.Endpoint, sends sendSeq, expect, size int, buf []byte,
	lat *stats.Histogram, last *sim.Time, settleAt sim.Time) {
	got := 0
	ep.RegisterHandler(0, func(src int, payload []byte) {
		got++
		if last != nil {
			if now := ep.Now(); now > *last {
				*last = now
			}
		}
		if at, ok := stampedAt(payload); ok {
			lat.Record(ep.Now().Sub(at))
		}
	})
	for j := 0; j < sends.Len(); j++ {
		s := sends.At(j)
		if s.At > 0 {
			waitUntil(ep, s.At)
		}
		msg := buf[:sendSize(s, size)]
		stamp(msg, ep.Now())
		if err := ep.Send(s.Dst, 0, msg); err != nil {
			panic(err)
		}
		ep.Extract() // keep draining while sending
	}
	for got < expect || ep.Outstanding() > 0 {
		ep.WaitIncoming()
		ep.Extract()
	}
	for ep.Now() < settleAt {
		ep.CPU().Advance(settleQuantum)
		ep.Extract()
	}
}
