// Package stats provides the small statistics toolkit the measurement
// side of the repository uses: an HDR-style logarithmic histogram for
// virtual-time latencies (deterministic, allocation-light) and running
// scalar summaries.
//
// The paper reports means; a reproduction built on a deterministic
// simulator can do better and expose full delivery-latency distributions
// — in particular the long tail return-to-sender rejection adds under
// overload, which a mean hides.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"fm/internal/sim"
)

// subBuckets is the linear resolution inside each power-of-two major
// bucket: relative quantization error is bounded by 1/subBuckets.
const subBuckets = 32

// Histogram records sim.Duration samples in logarithmic buckets with
// bounded relative error (~3%). The zero value is ready to use.
type Histogram struct {
	counts [64 * subBuckets]uint64
	n      uint64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// bucket maps a non-negative duration to its bucket index.
func bucket(d sim.Duration) int {
	v := uint64(d)
	if v < subBuckets {
		return int(v) // exact for tiny values
	}
	msb := 63 - bits.LeadingZeros64(v)
	shift := msb - 5 // keep the top 6 bits: 1 implicit + 5 sub-bucket
	sub := int(v>>uint(shift)) - subBuckets
	return (msb-5)*subBuckets + subBuckets + sub
}

// lower returns a representative (lower-bound) value for bucket i.
func lower(i int) sim.Duration {
	if i < subBuckets {
		return sim.Duration(i)
	}
	major := (i - subBuckets) / subBuckets
	sub := (i - subBuckets) % subBuckets
	return sim.Duration((uint64(subBuckets) + uint64(sub)) << uint(major))
}

// Record adds one sample. Negative samples are a programming error.
func (h *Histogram) Record(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative sample %v", d))
	}
	h.counts[bucket(d)]++
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.n++
	h.sum += d
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Empty-histogram contract: every query on a histogram with no samples
// returns its zero value — Mean, Min, Max, and Percentile (at any p)
// return 0, Summary returns "no samples", and Bars returns "". Callers
// may therefore ask without checking Count first; windowed series lean
// on this, since an idle window's percentiles must print as zeros, not
// panic or fabricate values. Pinned by TestEmptyHistogramContract.

// Mean returns the arithmetic mean of the samples (0 with no samples).
func (h *Histogram) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.n)
}

// Min returns the smallest recorded sample (0 with no samples).
func (h *Histogram) Min() sim.Duration { return h.min }

// Max returns the largest recorded sample (0 with no samples).
func (h *Histogram) Max() sim.Duration { return h.max }

// Percentile returns the value at or below which fraction p (0..1] of
// samples fall, with the histogram's relative quantization error. With
// no samples it returns 0 for every p.
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	// The target rank is the ceiling of p*n: the smallest rank whose
	// cumulative share reaches p. Truncating instead (the seed's bug)
	// underestimated by up to one full rank — the p50 of 3 samples came
	// back as the minimum. The epsilon guards against float error in
	// p*n pushing an exact product just above an integer (0.1*30 ->
	// 3.0000000000000004 must stay rank 3).
	target := uint64(math.Ceil(p*float64(h.n) - 1e-9))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= target {
			v := lower(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Summary formats count/mean/p50/p90/p99/max on one line, or "no
// samples" for an empty histogram.
func (h *Histogram) Summary() string {
	if h.n == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		h.n, h.Mean(), h.Percentile(0.50), h.Percentile(0.90),
		h.Percentile(0.99), h.Max())
}

// Scalar is a running min/mean/max of float64 observations.
type Scalar struct {
	n        uint64
	sum      float64
	min, max float64
}

// Add records one observation.
func (s *Scalar) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
}

// Count returns the observation count.
func (s *Scalar) Count() uint64 { return s.n }

// Mean returns the running mean (0 with no observations).
func (s *Scalar) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation.
func (s *Scalar) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Scalar) Max() float64 { return s.max }

// String formats the scalar summary.
func (s *Scalar) String() string {
	return fmt.Sprintf("n=%d min=%.4g mean=%.4g max=%.4g", s.n, s.min, s.Mean(), s.max)
}

// Bars renders a coarse ASCII distribution of the histogram between its
// min and max, for CLI diagnostics.
func (h *Histogram) Bars(width int) string {
	if h.n == 0 || width <= 0 {
		return ""
	}
	var peak uint64
	lo, hi := bucket(h.min), bucket(h.max)
	for i := lo; i <= hi; i++ {
		if h.counts[i] > peak {
			peak = h.counts[i]
		}
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		if h.counts[i] == 0 {
			continue
		}
		bar := int(h.counts[i] * uint64(width) / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%12v %s %d\n", lower(i), strings.Repeat("#", bar), h.counts[i])
	}
	return b.String()
}
