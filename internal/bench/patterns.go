package bench

import (
	"fmt"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
	"fm/internal/workload"
)

// The patterns experiment: the workload catalog swept across fabrics
// and stack levels. The paper's evaluation fixes one pattern per study;
// this experiment is the cross product — every traffic pattern in
// internal/workload driven over crossbar, line, and Clos fabrics at the
// raw network level, through the complete FM 1.0 stack, and through
// MPI-on-FM. Each cell is an isolated deterministic simulation, so the
// sweep fans out over the worker pool with byte-identical output at any
// -workers value.

// patternPackets is the per-rank message count for the bounded patterns
// (the all-to-all and broadcast counts derive from the rank count).
const patternPackets = 16

// patternSeed pins the uniform-random pattern's PRNG: the experiment is
// reproducible by construction, never by accident.
const patternSeed = 1995

// patternCatalog returns the pattern set the experiment sweeps.
func patternCatalog() []workload.Pattern {
	return []workload.Pattern{
		workload.AllToAll{Rounds: 1},
		workload.Bisection{Packets: patternPackets},
		workload.UniformRandom{Seed: patternSeed, Packets: patternPackets},
		workload.Tornado{Packets: patternPackets},
		workload.Incast{Target: 0, Packets: patternPackets},
		workload.Neighbor{Rounds: patternPackets, Wrap: true},
		workload.Broadcast{Root: 0, Rounds: patternPackets},
	}
}

// Patterns regenerates the workload sweep at opt.PatternNodes nodes
// (default 32): for every pattern x fabric cell, raw-fabric aggregate
// bandwidth, p99 delivery latency, and mean hops, plus completion time
// and delivered bandwidth through the FM stack and through MPI-on-FM.
func Patterns(opt Options) *Report {
	p := cost.Default()
	n := opt.PatternNodes
	if n < 4 {
		n = 4
	}
	pats := patternCatalog()
	// Every pattern runs at the same rank count, so apply every
	// pattern's node adjustment up front (bisection rounds odd counts
	// up to even).
	for _, pat := range pats {
		n = workload.AdjustNodes(pat, n)
	}
	const size = 112 // 112B payload + 16B header = the paper's 128B frame
	specs := workload.Specs(n)
	r := &Report{ID: "patterns", Title: fmt.Sprintf("Workload patterns at %d nodes", n)}

	type cell struct {
		raw, fm, mpi workload.Result
	}
	// One job per (cell, stack level): the MPI legs of the serialized
	// patterns (incast, broadcast) dominate, so splitting legs keeps the
	// pool balanced. Jobs write disjoint fields of disjoint cells.
	cells := make([]cell, len(pats)*len(specs))
	var jobs []func()
	for i := range cells {
		i := i
		pat, spec := pats[i/len(specs)], specs[i%len(specs)]
		jobs = append(jobs,
			func() { cells[i].raw = workload.DriveRaw(spec, p, pat, size) },
			func() { cells[i].fm = workload.DriveFM(spec, core.DefaultConfig(), p, pat, size) },
			func() { cells[i].mpi = workload.DriveMPI(spec, core.DefaultConfig(), p, pat, size) },
		)
	}
	runParallel(opt.Workers, jobs)

	ms := func(d sim.Duration) string {
		return fmt.Sprintf("%.2f", float64(d)/float64(sim.Millisecond))
	}
	t := Table{
		Name: "pattern x fabric x stack level",
		Header: []string{"pattern", "fabric", "msgs",
			"raw BW (MB/s)", "raw p99 (us)", "hops",
			"FM (ms)", "FM BW (MB/s)", "MPI (ms)", "MPI BW (MB/s)"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.raw.Pattern, c.raw.Fabric,
			fmt.Sprintf("%d", c.raw.Messages),
			fmt.Sprintf("%.0f", c.raw.MBps()),
			fmt.Sprintf("%.1f", c.raw.Latency.Percentile(0.99).Microseconds()),
			fmt.Sprintf("%.2f", c.raw.MeanHops),
			ms(c.fm.Elapsed),
			fmt.Sprintf("%.1f", c.fm.MBps()),
			ms(c.mpi.Elapsed),
			fmt.Sprintf("%.1f", c.mpi.MBps()),
		})
	}
	r.Tables = append(r.Tables, t)

	g, groups := workload.Geometry(n)
	r.Notes = append(r.Notes,
		fmt.Sprintf("geometry: crossbar = one %d-port switch; line = %d switches x %d nodes; clos = %d spines over %d leaves x %d nodes",
			n, groups, g, groups, groups, g),
		fmt.Sprintf("%dB payloads; bounded patterns send %d packets per rank; uniform-random is seeded (splitmix64, seed %d) and byte-reproducible",
			size, patternPackets, patternSeed),
		"raw = wires and switches only (p99 is injection to tail delivery); FM = complete FM 1.0 stack; MPI = tagged messages on FM (the 128B default frame splits each payload into two fragments, so every MPI message pays matching and reassembly)",
		"incast converges on rank 0 (the Discussion's hotspot); broadcast is rank 0 storming all others; tornado shifts by ceil(n/2)-1 ranks",
	)
	return r
}
