package fm

// One testing.B benchmark per paper artifact (Figures 3, 4, 7, 8, 9 and
// Table 4), each regenerating a representative measurement point of that
// figure inside the deterministic simulator and reporting the simulated
// result as custom metrics:
//
//	sim-MB/s        delivered payload bandwidth in virtual time
//	sim-lat-us      one-way latency in virtual time
//
// Wall-clock ns/op measures the simulator itself; the sim-* metrics are
// the paper-comparable numbers. Full sweeps: go run ./cmd/fmbench.

import (
	"testing"

	"fm/internal/bench"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myriapi"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/workload"
)

const (
	benchSize    = 128 // the paper's chosen frame size
	benchPackets = 4096
	benchRounds  = 50
)

// --- Figure 3: LANai-to-LANai, baseline vs. streamed LCP ---

func BenchmarkFig3BaselineLCPBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.LANaiStream(p, false, benchSize, benchPackets).MBps
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig3StreamedLCPBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.LANaiStream(p, true, benchSize, benchPackets).MBps
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig3StreamedLCPLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.LANaiPingPong(p, true, benchSize, benchRounds).OneWay.Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Figure 4: minimal host-to-host, hybrid vs. all-DMA ---

func BenchmarkFig4HybridBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigHybridVestigial(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig4AllDMABandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigAllDMAVestigial(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig4HybridLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(bench.ConfigHybridVestigial(), p, benchSize, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Figure 7: buffer management and switch() interpretation ---

func BenchmarkFig7BufferMgmtBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigBufMgmt(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig7SwitchInterpretationBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigBufSwitch(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

// --- Figure 8 / Table 4 row "flow": the complete FM 1.0 layer ---

func BenchmarkFig8FullFMBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigFullFM(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig8FullFMLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(bench.ConfigFullFM(), p, benchSize, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Figure 9: FM vs. the Myrinet API ---

func BenchmarkFig9APIImmBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.APIStream(myriapi.SendImm, p, benchSize, benchPackets/8)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig9APIDMABandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.APIStream(myriapi.SendDMA, p, benchSize, benchPackets/8)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig9APIImmLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.APIPingPong(myriapi.SendImm, p, benchSize, 10).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Table 4 summary points: headline latencies at 16B ---

func BenchmarkTable4FullFMLatency16B(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(core.DefaultConfig().WithFrame(16), p, 16, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- The mpi experiment: MPI-on-FM cost of layering ---

func BenchmarkMPIBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.MPIStream(p, benchSize, benchPackets).MBps
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkMPILatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.MPIPingPong(p, benchSize, benchRounds).OneWay.Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Simulator hot paths: wall-clock and allocation benchmarks ---
//
// These three benchmarks measure the simulator itself (not the modeled
// hardware): the kernel event loop, raw fabric forwarding, and the full
// FM send/extract stack. CI runs them as a build/panic smoke test; their
// allocs/op are the regression surface for the engine's allocation
// discipline (see DESIGN.md "Performance").

// BenchmarkKernelEvents drives the bare event loop: processes sleeping
// in a tight loop plus a chain of plain events, no network model at all.
func BenchmarkKernelEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		for p := 0; p < 4; p++ {
			k.Spawn("spin", func(p *sim.Proc) {
				for j := 0; j < 1000; j++ {
					p.Sleep(sim.Microsecond)
				}
			})
		}
		steps := 0
		var tick func()
		tick = func() {
			if steps++; steps < 1000 {
				k.After(sim.Microsecond, tick)
			}
		}
		k.After(sim.Microsecond, tick)
		if err := k.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelEventsWide drives the event loop with a wide pending
// population: 4096 event chains spread over a 1ms window, sharing a
// rescheduling budget of width*hops decrements (width seeds plus
// width*hops-1 rescheduled events = 36,863 events per op) — the queue
// shape of a large-fabric simulation (the scale experiment holds
// thousands of pending events), where per-event cost is dominated by
// the scheduler structure itself.
func BenchmarkKernelEventsWide(b *testing.B) {
	b.ReportAllocs()
	const width, hops = 4096, 8
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		left := width * hops
		var hop func()
		hop = func() {
			if left--; left > 0 {
				// Deterministic spread: stride the window so neighbors in
				// the queue are far apart in time, defeating any
				// insertion locality.
				k.After(sim.Duration(1+left%997)*sim.Microsecond, hop)
			}
		}
		for j := 0; j < width; j++ {
			k.After(sim.Duration(1+j%997)*sim.Microsecond, hop)
		}
		if err := k.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricForward builds a 64-node Clos and forwards 1024 raw
// packets across it (16 per source, rotating destinations): the packet
// pipeline with no host stack on top.
func BenchmarkFabricForward(b *testing.B) {
	b.ReportAllocs()
	p := cost.Default()
	const nodes, perSrc, size = 64, 16, 112
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		f := myrinet.NewClos(k, p, 8, 8, 8, 16)
		delivered := 0
		sink := myrinet.SinkFunc(func(pkt *myrinet.Packet) {
			delivered++
			f.Release(pkt)
		})
		for n := 0; n < nodes; n++ {
			f.Attach(n, sink)
		}
		payload := make([]byte, size)
		for src := 0; src < nodes; src++ {
			src := src
			var inject func(j int)
			inject = func(j int) {
				if j >= perSrc {
					return
				}
				pkt := f.NewPacket()
				pkt.Src, pkt.Dst = src, (src+j+1)%nodes
				pkt.Type = myrinet.Data
				pkt.HeaderBytes = p.FMHeaderBytes
				pkt.Payload = append(pkt.Payload[:0], payload...)
				done := f.Inject(pkt)
				k.At(done, func() { inject(j + 1) })
			}
			k.At(0, func() { inject(0) })
		}
		if err := k.RunAll(); err != nil {
			b.Fatal(err)
		}
		if delivered != nodes*perSrc {
			b.Fatalf("delivered %d/%d", delivered, nodes*perSrc)
		}
	}
}

// BenchmarkFMSendExtract streams 512 frames through the complete FM 1.0
// stack (hosts, SBus, LANai, LCP, flow control) on a two-node crossbar.
func BenchmarkFMSendExtract(b *testing.B) {
	b.ReportAllocs()
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigFullFM(), p, benchSize, 512)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

// BenchmarkWorkloadDrive pushes the uniform-random workload pattern
// through the raw driver on a 64-node Clos: pattern generation, the
// per-source injector chain, and the shared latency-histogram
// collection — the hot path every cell of the patterns experiment runs.
// Baseline numbers live in BENCH_pr4.json.
func BenchmarkWorkloadDrive(b *testing.B) {
	b.ReportAllocs()
	p := cost.Default()
	pat := workload.UniformRandom{Seed: 1995, Packets: 16}
	spec := workload.ClosSpec(64)
	var mbps float64
	for i := 0; i < b.N; i++ {
		res := workload.DriveRaw(spec, p, pat, 112)
		mbps = res.MBps()
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

// BenchmarkShardedDrive runs the same 64-node Clos uniform-random drive
// as BenchmarkWorkloadDrive split across 2 shard kernels: the sharded
// engine's whole extra surface — replica fabrics, outbox/inbox exchange,
// the barrier coordinator — on top of the single-kernel hot path.
// Gated alongside it so a pooling regression in the cross-shard path
// (per-shard packet pools, reused inbox buffers) shows up in allocs/op.
// Baseline numbers live in BENCH_pr6.json.
func BenchmarkShardedDrive(b *testing.B) {
	b.ReportAllocs()
	p := cost.Default()
	pat := workload.UniformRandom{Seed: 1995, Packets: 16}
	spec := workload.ClosSpec(64)
	var mbps float64
	for i := 0; i < b.N; i++ {
		res := workload.DriveRawSharded(spec, p, pat, 112, 2)
		mbps = res.MBps()
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

// BenchmarkFaultDrive pushes the all-to-all through the full FM stack
// on a 32-node Clos with the default seeded fault plan installed: the
// per-hop fault timeline checks, bounce generation, stranded-frame
// release, and the endpoints' retransmit path — everything the faults
// experiment adds over a clean drive. The driver panics on any
// undelivered message, so this is also a delivery smoke. Baseline
// numbers live in BENCH_pr7.json.
func BenchmarkFaultDrive(b *testing.B) {
	b.ReportAllocs()
	var retx float64
	for i := 0; i < b.N; i++ {
		res := bench.FaultDrive()
		retx = float64(res.Stats.Retransmits)
	}
	b.ReportMetric(retx, "sim-retransmits")
}

// BenchmarkSoakDrive streams a deterministic Poisson source through the
// full FM stack on a 16-node Clos past its saturation knee, folding the
// run into 50us series windows: the open-loop pacing loop (poll-wait
// extraction between scheduled sends), per-window histogram recording,
// and retransmit-delta attribution — everything the soak experiment adds
// over a batch FM drive. The driver panics on any undelivered arrival,
// so this is also a delivery smoke. Baseline numbers live in
// BENCH_pr8.json.
func BenchmarkSoakDrive(b *testing.B) {
	b.ReportAllocs()
	p := cost.Default()
	spec := workload.ClosSpec(16)
	src := workload.PoissonSource{
		Base:    workload.UniformRandom{Seed: 1995, Packets: 16},
		Seed:    1995,
		MeanGap: 20 * sim.Microsecond,
		Horizon: 300 * sim.Microsecond,
	}
	opt := workload.SoakOptions{Width: 50 * sim.Microsecond, Mode: workload.TerminateHorizon}
	var backlog float64
	for i := 0; i < b.N; i++ {
		res := workload.SoakDriveFM(spec, core.DefaultConfig(), p, src, 112, opt)
		backlog = float64(res.Series.InFlight(res.HorizonWindows() - 1))
	}
	b.ReportMetric(backlog, "sim-backlog")
}

// --- Ablation benches: the DESIGN.md design choices ---

func BenchmarkAblationBurstPIO(b *testing.B) {
	p := cost.Default().WithBurstPIO()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigFullFM(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkAblationFasterLANai(b *testing.B) {
	p := cost.Default().WithFasterLANai(2)
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(bench.ConfigFullFM(), p, benchSize, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

func BenchmarkAblationSlidingWindow(b *testing.B) {
	p := cost.Default()
	cfg := bench.ConfigFullFM()
	cfg.Protocol = core.SlidingWindow
	cfg.RejectThreshold = 0
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(cfg, p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkAblationBaselineLCPInFullStack(b *testing.B) {
	p := cost.Default()
	cfg := bench.ConfigFullFM()
	cfg.Streamed = false
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(cfg, p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}
