package myrinet

import "fmt"

// Partition assigns every switch and node of a topology to one of N
// shards for conservative parallel simulation. The cut follows the
// Clos structure: node-hosting switches ("leaf groups") are dealt to
// shards in contiguous index-order blocks, each node belongs to its
// leaf's shard, and the node-free spine switches are spread round-robin
// so no shard simulates a disproportionate share of the trunk
// contention points. Every cross-shard move of a packet head therefore
// crosses an inter-switch link, whose SwitchLatency is the lookahead
// window that makes the shards safe to run a window apart.
type Partition struct {
	Shards      int
	SwitchShard []int // switch index -> owning shard
	NodeShard   []int // node id -> owning shard
	LeafGroups  int   // node-hosting switch count (the shard ceiling)
}

// LeafGroups returns the number of node-hosting switches — the maximum
// shard count any partition of t can support.
func (t *Topology) LeafGroups() int {
	n := 0
	for sw := range t.switches {
		if t.hostsNodes(sw) {
			n++
		}
	}
	return n
}

func (t *Topology) hostsNodes(sw int) bool {
	for _, a := range t.nodes {
		if a.sw == sw {
			return true
		}
	}
	return false
}

// MaxShards returns the largest shard count t supports: its leaf-group
// count when the fabric is two-level partitionable, otherwise 1.
func (t *Topology) MaxShards() int {
	if t.partitionable() != nil {
		return 1
	}
	return t.LeafGroups()
}

// partitionable reports whether the fabric has the strict two-level
// leaf/spine shape sharding requires: every switch either hosts nodes
// (leaf) or hosts none (spine), and every link joins a leaf to a spine.
// A leaf-to-leaf link (the line topology) would make two node-owning
// shards adjacent with no spine between them, halving the lookahead a
// boundary crossing is guaranteed; rather than complicate the window
// math, such fabrics run single-kernel.
func (t *Topology) partitionable() error {
	for _, l := range t.links {
		fromLeaf, toLeaf := t.hostsNodes(l.from), t.hostsNodes(l.to)
		if fromLeaf && toLeaf {
			return fmt.Errorf("link %s -> %s joins two node-hosting switches",
				t.name(l.from), t.name(l.to))
		}
		if !fromLeaf && !toLeaf {
			return fmt.Errorf("link %s -> %s joins two spine switches",
				t.name(l.from), t.name(l.to))
		}
	}
	return nil
}

// Partition cuts the topology into `shards` pieces. shards must be at
// least 1; 1 always succeeds (the trivial partition). More than one
// shard requires a two-level leaf/spine fabric with at least `shards`
// leaf groups; the error otherwise says what the topology supports.
func (t *Topology) Partition(shards int) (*Partition, error) {
	groups := t.LeafGroups()
	p := &Partition{
		Shards:      shards,
		SwitchShard: make([]int, len(t.switches)),
		NodeShard:   make([]int, len(t.nodes)),
		LeafGroups:  groups,
	}
	if shards < 1 {
		return nil, fmt.Errorf("myrinet: shard count must be at least 1, got %d", shards)
	}
	if shards == 1 {
		return p, nil
	}
	if err := t.partitionable(); err != nil {
		return nil, fmt.Errorf("myrinet: topology shards only at 1 (%v; only two-level leaf/spine fabrics partition)", err)
	}
	if shards > groups {
		return nil, fmt.Errorf("myrinet: %d shards exceed the topology's %d leaf group(s); it supports 1..%d",
			shards, groups, groups)
	}
	leaf, spine := 0, 0
	for sw := range t.switches {
		if t.hostsNodes(sw) {
			// Contiguous blocks of ceil/floor(groups/shards) leaves: leaf
			// i lands on shard i*shards/groups, which is monotone and
			// balanced to within one leaf.
			p.SwitchShard[sw] = leaf * shards / groups
			leaf++
		} else {
			p.SwitchShard[sw] = spine % shards
			spine++
		}
	}
	for id, a := range t.nodes {
		p.NodeShard[id] = p.SwitchShard[a.sw]
	}
	return p, nil
}
