module fm

go 1.24
