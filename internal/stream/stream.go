// Package stream builds a reliable, in-order byte stream on top of FM
// frames — the TCP-style legacy-protocol layer the paper's future work
// targets (Section 7), and the consumer of the observation that FM's
// 128-byte frame "is close to the best size for supporting TCP/IP and
// UDP/IP traffic" (Section 5).
//
// FM delivers reliably but NOT in order ("the well-known drawback of all
// of these retransmission schemes is that delivery order is not
// preserved", Section 4.5): a rejected-then-retransmitted frame arrives
// after its successors. The stream layer therefore segments writes into
// sequence-numbered frames and reassembles them at the receiver,
// buffering out-of-order arrivals. The out-of-order window is bounded by
// the FM sender window, so reassembly memory is bounded too.
//
// A Mux owns one FM handler id and demultiplexes any number of
// bidirectional streams, keyed by (peer, stream id). Conn implements
// io.Reader, io.Writer and io.Closer.
package stream

import (
	"encoding/binary"
	"fmt"
	"io"

	"fm/internal/core"
)

// headerBytes is the stream header inside each FM frame payload:
// stream id (2), flags (1), reserved (1), segment sequence (4).
const headerBytes = 8

const flagFIN = 1

// Mux demultiplexes stream frames arriving at one FM handler id.
type Mux struct {
	ep      *core.Endpoint
	handler int
	conns   map[connKey]*Conn
}

type connKey struct {
	peer int
	id   uint16
}

// NewMux attaches a stream multiplexer to ep, owning handler id h.
func NewMux(ep *core.Endpoint, h int) *Mux {
	m := &Mux{ep: ep, handler: h, conns: make(map[connKey]*Conn)}
	ep.RegisterHandler(h, m.onFrame)
	return m
}

// Open returns the bidirectional stream with the given id toward peer,
// creating it if needed. Both sides call Open with the same id; there is
// no connection handshake (FM is connectionless), matching the layer's
// datagram substrate.
func (m *Mux) Open(peer int, id uint16) *Conn {
	key := connKey{peer, id}
	if c, ok := m.conns[key]; ok {
		return c
	}
	c := &Conn{
		mux:    m,
		peer:   peer,
		id:     id,
		maxSeg: m.ep.Config().FramePayload - headerBytes,
		ooo:    make(map[uint32][]byte),
	}
	if c.maxSeg <= 0 {
		panic(fmt.Sprintf("stream: frame payload %d too small for the %d-byte stream header",
			m.ep.Config().FramePayload, headerBytes))
	}
	m.conns[key] = c
	return c
}

// onFrame is the FM handler: route the segment to its connection.
func (m *Mux) onFrame(src int, payload []byte) {
	if len(payload) < headerBytes {
		panic("stream: runt frame")
	}
	id := binary.LittleEndian.Uint16(payload[0:])
	flags := payload[2]
	seq := binary.LittleEndian.Uint32(payload[4:])
	c := m.Open(src, id)
	// The FM buffer does not persist beyond the handler: copy the body.
	body := append([]byte(nil), payload[headerBytes:]...)
	c.accept(seq, flags, body)
}

// Conn is one reliable, ordered byte stream. Methods must be called from
// the owning node's application process.
type Conn struct {
	mux    *Mux
	peer   int
	id     uint16
	maxSeg int

	// Send side.
	nextSend uint32

	// Receive side: contiguous bytes ready for Read, plus the
	// out-of-order reassembly buffer.
	readBuf  []byte
	nextRecv uint32
	ooo      map[uint32][]byte
	finSeq   uint32
	finSeen  bool
	eof      bool
}

var _ io.ReadWriteCloser = (*Conn)(nil)

// Peer returns the remote node id.
func (c *Conn) Peer() int { return c.peer }

// accept integrates one segment (handler context).
func (c *Conn) accept(seq uint32, flags byte, body []byte) {
	if flags&flagFIN != 0 {
		c.finSeen = true
		c.finSeq = seq
	}
	if seq < c.nextRecv {
		panic(fmt.Sprintf("stream: duplicate segment %d (next %d)", seq, c.nextRecv))
	}
	c.ooo[seq] = body
	// Pull every now-contiguous segment into the read buffer.
	for {
		b, ok := c.ooo[c.nextRecv]
		if !ok {
			break
		}
		delete(c.ooo, c.nextRecv)
		c.readBuf = append(c.readBuf, b...)
		c.nextRecv++
	}
	if c.finSeen && c.nextRecv > c.finSeq {
		c.eof = true
	}
}

// Write segments p into FM frames and sends them all. It blocks the host
// process until every segment has been handed to the layer (FM's window
// provides the backpressure). It never returns a short count without an
// error.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		seg := len(p)
		if seg > c.maxSeg {
			seg = c.maxSeg
		}
		if err := c.send(p[:seg], 0); err != nil {
			return total, err
		}
		p = p[seg:]
		total += seg
	}
	return total, nil
}

// send emits one segment with the stream header.
func (c *Conn) send(body []byte, flags byte) error {
	frame := make([]byte, headerBytes+len(body))
	binary.LittleEndian.PutUint16(frame[0:], c.id)
	frame[2] = flags
	binary.LittleEndian.PutUint32(frame[4:], c.nextSend)
	copy(frame[headerBytes:], body)
	c.nextSend++
	return c.mux.ep.Send(c.peer, c.mux.handler, frame)
}

// Read returns buffered in-order bytes, blocking (and pumping the FM
// layer) until at least one byte or EOF is available.
func (c *Conn) Read(p []byte) (int, error) {
	for len(c.readBuf) == 0 {
		if c.eof {
			return 0, io.EOF
		}
		c.mux.ep.WaitIncoming()
		c.mux.ep.Extract()
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Close sends FIN. The peer's Read returns io.EOF once every byte before
// the FIN has been consumed.
func (c *Conn) Close() error {
	return c.send(nil, flagFIN)
}

// Buffered returns how many in-order bytes are ready without blocking.
func (c *Conn) Buffered() int { return len(c.readBuf) }

// Pending returns how many out-of-order segments await reassembly
// (non-zero only after return-to-sender reordering).
func (c *Conn) Pending() int { return len(c.ooo) }
