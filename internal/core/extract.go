package core

import (
	"fmt"
	"slices"

	"fm/internal/myrinet"
	"fm/internal/sim"
)

// consumedSyncBatch is how many consumed packets the host accumulates
// before refreshing the LANai's consumption register with an SBus write.
const consumedSyncBatch = 8

// Extract is FM_extract: dequeue and process one or more received
// messages, running their handlers on the calling host process (Table 1).
// It returns the number of data packets delivered to handlers. Because
// the LANai drains the network without host involvement, failing to call
// Extract never blocks the network (Section 3.1) — it only fills queues.
func (ep *Endpoint) Extract() int {
	ep.cpu.Advance(ep.p.HostExtractPoll)
	delivered := 0
	for !ep.dev.HostRecvQ.Empty() {
		if ep.cfg.DrainLimit > 0 && delivered >= ep.cfg.DrainLimit {
			break
		}
		pkt := ep.popRecv()
		if ep.process(pkt) {
			delivered++
		}
	}

	if ep.cfg.FlowControl {
		ep.shedOverload()
		ep.retryRejected()
		ep.flushAcks()
	}
	ep.syncConsumed()
	return delivered
}

// WaitIncoming blocks the host process until there is host work: a
// packet in the host receive queue, or a rejected packet whose
// retransmission backoff has expired. It is a driver convenience
// standing in for a poll loop; the detection cost is charged by the
// Extract call that follows.
func (ep *Endpoint) WaitIncoming() {
	for ep.dev.HostRecvQ.Empty() && !ep.retryDue() {
		ep.cpu.Wait(ep.dev.HostRecvAvail)
	}
}

// retryDue reports whether the reject queue holds a packet ready to be
// retransmitted.
func (ep *Endpoint) retryDue() bool {
	return ep.cfg.FlowControl && !ep.rejectQ.Empty() &&
		ep.rejectQ.Peek().retryAt <= ep.Now()
}

// HasIncoming reports whether Extract would find packets.
func (ep *Endpoint) HasIncoming() bool { return !ep.dev.HostRecvQ.Empty() }

// popRecv dequeues one packet from the host receive queue, charging the
// per-packet host costs.
func (ep *Endpoint) popRecv() *myrinet.Packet {
	pkt := ep.dev.HostRecvQ.Pop()
	ep.consumed++
	ep.cpu.Advance(ep.p.HostExtractPacket)
	if ep.cfg.BufferMgmt {
		ep.cpu.Advance(ep.p.HostBufMgmtRecv)
	}
	return pkt
}

// process interprets one packet on the host (the LANai does no
// interpretation; "this simple LCP leaves packet interpretation and
// sorting to the host", Section 4.4). It reports whether a data packet
// was delivered to a handler. The packet's ownership ends here: it is
// recycled to the fabric pool (ack, delivered data) or re-armed in place
// for retransmission (reject).
func (ep *Endpoint) process(pkt *myrinet.Packet) bool {
	if pkt.Bounced {
		// A fault bounce is our own outbound frame coming home, so any
		// acknowledgements riding on it are aimed at the peer's sequence
		// namespace, not ours: skip processAcks and keep them attached
		// for the retry.
		return ep.requeueBounced(pkt)
	}
	// Piggybacked acknowledgements ride on any packet type.
	if len(pkt.Acks) > 0 {
		ep.processAcks(pkt.Acks)
	}
	switch pkt.Type {
	case myrinet.Ack:
		ep.release(pkt)
		return false
	case myrinet.Reject:
		// One of our packets came back: park it for retransmission,
		// reusing the same frame (flip it back into a Retransmit in
		// place — the payload never moves). The reject queue has a
		// reserved slot for every outstanding packet, so this push
		// cannot overflow — that is the deadlock-freedom argument of
		// Section 4.5.
		ep.cpu.Advance(ep.p.HostFlowControlRecv)
		ep.stats.RejectsReceived++
		pkt.Src, pkt.Dst = ep.NodeID(), pkt.Src
		pkt.Type = myrinet.Retransmit
		pkt.Retries++
		pkt.Acks = pkt.Acks[:0] // consumed above; attachAcks may refill
		ep.rejectQ.Push(rejectedEntry{pkt: pkt, retryAt: ep.Now().Add(ep.cfg.RetryDelay)})
		// Arm a wakeup at the retry deadline: a host parked in
		// WaitIncoming with no inbound traffic must still come back to
		// retransmit (the stand-in for FM's periodic host polling).
		ep.dev.HostRecvAvail.PulseAfter(ep.cfg.RetryDelay + sim.Microsecond)
		return false
	case myrinet.Data, myrinet.Retransmit:
		ep.deliver(pkt)
		return true
	default:
		panic(fmt.Sprintf("fm: unexpected packet type %v on node %d", pkt.Type, ep.NodeID()))
	}
}

// requeueBounced parks a fabric-bounced frame for retransmission: the
// fabric turned one of our outbound frames around at a failed component
// and the frame still carries its original payload and any piggybacked
// acks. Data becomes a Retransmit; a bounced Ack resends as an Ack (its
// ranges were never seen by the peer, so resending loses nothing and
// duplicated ack processing is idempotent).
func (ep *Endpoint) requeueBounced(pkt *myrinet.Packet) bool {
	ep.cpu.Advance(ep.p.HostFlowControlRecv)
	ep.stats.NetBounces++
	pkt.Src, pkt.Dst = ep.NodeID(), pkt.Src
	switch pkt.OrigType {
	case myrinet.Data, myrinet.Retransmit:
		pkt.Type = myrinet.Retransmit
	default:
		pkt.Type = pkt.OrigType
	}
	pkt.Bounced = false
	pkt.OrigType = 0
	pkt.Retries++
	ep.rejectQ.Push(rejectedEntry{pkt: pkt, retryAt: ep.Now().Add(ep.cfg.RetryDelay)})
	ep.dev.HostRecvAvail.PulseAfter(ep.cfg.RetryDelay + sim.Microsecond)
	return false
}

// deliver records flow-control state, runs the handler, and recycles the
// frame: the payload "does not persist beyond the return of the handler"
// (Section 3.1), which is exactly the window in which the packet is ours
// to release.
func (ep *Endpoint) deliver(pkt *myrinet.Packet) {
	if ep.cfg.FlowControl {
		ep.cpu.Advance(ep.p.HostFlowControlRecv)
		if ep.isDuplicate(pkt) {
			ep.stats.Duplicates++
			if ep.cfg.CheckInvariants {
				panic(fmt.Sprintf("fm: duplicate delivery src=%d seq=%d", pkt.Src, pkt.Seq))
			}
			ep.release(pkt)
			return
		}
		if ep.queueAck(pkt.Src, pkt.Seq) >= ep.cfg.AckBatch {
			ep.sendAck(pkt.Src)
		}
	}
	h := ep.handlers[pkt.Handler]
	if h == nil {
		panic(fmt.Sprintf("fm: no handler %d registered on node %d", pkt.Handler, ep.NodeID()))
	}
	ep.cpu.MemRead(len(pkt.Payload))
	ep.cpu.Advance(ep.p.HostHandlerDispatch)
	ep.stats.Delivered++
	if pkt.Injected > 0 {
		ep.latency.Record(ep.Now().Sub(pkt.Injected))
	}
	h(pkt.Src, pkt.Payload)
	ep.release(pkt)
}

// isDuplicate screens (src, seq) pairs. Under the protocol duplicates are
// impossible (a packet is either accepted or rejected, never both, and
// the network is reliable); the screen exists to verify that invariant.
func (ep *Endpoint) isDuplicate(pkt *myrinet.Packet) bool {
	m := ep.seen[pkt.Src]
	if m == nil {
		m = make(map[uint64]bool)
		ep.seen[pkt.Src] = m
	}
	if m[pkt.Seq] {
		return true
	}
	m[pkt.Seq] = true
	return false
}

// processAcks releases outstanding slots for acknowledged sequences.
func (ep *Endpoint) processAcks(ranges []myrinet.SeqRange) {
	ep.cpu.Advance(ep.p.HostFlowControlRecv)
	for _, r := range ranges {
		for s := r.Lo; s <= r.Hi; s++ {
			if dst, ok := ep.outstanding[s]; ok {
				delete(ep.outstanding, s)
				ep.outPerDst[dst]--
			}
		}
	}
}

// shedOverload implements host-side rejection: if, after draining its
// budget, the host receive queue backlog still exceeds the threshold,
// excess data packets are returned to their senders instead of being
// buffered without bound (Section 4.5's return-to-sender receiver side).
func (ep *Endpoint) shedOverload() {
	if ep.cfg.RejectThreshold <= 0 || ep.cfg.Protocol != ReturnToSender {
		return
	}
	for ep.dev.HostRecvQ.Len() > ep.cfg.RejectThreshold {
		pkt := ep.popRecv()
		switch pkt.Type {
		case myrinet.Data, myrinet.Retransmit:
			// Consume piggybacked acknowledgements before bouncing: the
			// sender cleared them when it attached them, so dropping
			// them here would leak outstanding slots forever.
			if len(pkt.Acks) > 0 {
				ep.processAcks(pkt.Acks)
			}
			ep.cpu.Advance(ep.p.HostFlowControlRecv)
			ep.stats.RejectsSent++
			// Bounce the same frame: flip it into a Reject in place and
			// return it to its sender (the payload rides back with it).
			pkt.Src, pkt.Dst = ep.NodeID(), pkt.Src
			pkt.Type = myrinet.Reject
			pkt.Acks = pkt.Acks[:0] // consumed above
			ep.pushFrame(pkt)
		default:
			// Never bounce control traffic; process it normally.
			ep.process(pkt)
		}
	}
}

// retryRejected resends reject-queue entries whose backoff has expired.
func (ep *Endpoint) retryRejected() {
	for !ep.rejectQ.Empty() && ep.rejectQ.Peek().retryAt <= ep.Now() {
		entry := ep.rejectQ.Pop()
		// A bounced frame keeps its original acks attached through the
		// requeue; only attach fresh ones when the slot is empty (on the
		// healthy path it always is — attachAcks truncates on send).
		if ep.cfg.PiggybackAcks && len(entry.pkt.Acks) == 0 {
			ep.attachAcks(entry.pkt)
		}
		ep.pushFrame(entry.pkt)
		ep.stats.Retransmits++
		if entry.pkt.Type != myrinet.Ack {
			ep.stats.Sent++
		}
	}
}

// flushAcks emits standalone acknowledgements once the receive queue has
// drained, so senders are never starved of window space when there is no
// reverse data traffic to piggyback on.
func (ep *Endpoint) flushAcks() {
	if !ep.dev.HostRecvQ.Empty() {
		return
	}
	// Sorted iteration keeps the simulation deterministic. Every entry
	// holds at least one pending seq (consumed entries are deleted), and
	// the source scratch persists on the endpoint, so a quiescent
	// Extract allocates and scans nothing.
	srcs := ep.ackSrcs[:0]
	for src := range ep.pendingAcks {
		srcs = append(srcs, src)
	}
	slices.Sort(srcs)
	ep.ackSrcs = srcs
	for _, src := range srcs {
		ep.sendAck(src)
	}
}

// sendAck emits one standalone (possibly aggregated) acknowledgement.
func (ep *Endpoint) sendAck(src int) {
	seqs := ep.takeAcks(src)
	if len(seqs) == 0 {
		return
	}
	ep.cpu.Advance(ep.p.HostAckBuild)
	pkt := ep.newPacket()
	pkt.Dst = src
	pkt.Type = myrinet.Ack
	pkt.Acks = coalesce(pkt.Acks[:0], seqs)
	ep.stats.AcksSent++
	ep.stats.SeqsAcked += uint64(len(seqs))
	ep.pushFrame(pkt)
}

// syncConsumed refreshes the LANai's view of the host's consumption
// counter. With buffer management on, the update is batched and costs an
// SBus control write; the vestigial layer updates for free (its cost is
// exactly what Fig. 7 measures).
func (ep *Endpoint) syncConsumed() {
	if ep.consumed == ep.consumedSync {
		return
	}
	if ep.cfg.BufferMgmt {
		if ep.consumed-ep.consumedSync < consumedSyncBatch && !ep.dev.HostRecvQ.Empty() {
			return
		}
		ep.cpu.ControlWrite()
	}
	ep.consumedSync = ep.consumed
	ep.dev.HostUpdateRecvConsumed(ep.consumed)
}
