package bench

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

// The fabric-scaling experiment: the paper measures everything on one
// 8-port crossbar, but production Myrinet installations were multistage
// Clos networks. This experiment drives dense traffic patterns over
// N-node crossbar, line, and 2-level Clos fabrics at the raw network
// level (no host stack, so the fabric itself is the bottleneck), then
// re-runs the all-to-all through the full FM layer on the Clos.

// fabricSpec names one topology under comparison.
type fabricSpec struct {
	name     string
	switches int
	build    func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric
}

// fabricGeometry splits n nodes into equal groups for the multi-switch
// topologies: groupSize is the largest power of two dividing n that does
// not exceed sqrt(n), so 64 nodes become 8 groups of 8.
func fabricGeometry(n int) (groupSize, groups int) {
	groupSize = 1
	for v := 2; v*v <= n; v *= 2 {
		if n%v == 0 {
			groupSize = v
		}
	}
	return groupSize, n / groupSize
}

// closGeometry derives the full-bisection Clos sizing for n nodes:
// spines = leaves = groups, and the switch port count that accommodates
// both roles. Shared by the raw-fabric and FM-layer legs so they always
// measure the same topology.
func closGeometry(n int) (spines, leaves, nodesPerLeaf, ports int) {
	g, groups := fabricGeometry(n)
	return groups, groups, g, g + groups
}

// fabricSpecs returns the three topologies at n nodes: one ideal n-port
// crossbar, a line of crossbars, and a full-bisection 2-level Clos
// (spines = leaves).
func fabricSpecs(n int) []fabricSpec {
	g, groups := fabricGeometry(n)
	_, _, _, closPorts := closGeometry(n)
	return []fabricSpec{
		{"crossbar", 1,
			func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
				return myrinet.NewCrossbar(k, p, n, n)
			}},
		{"line", groups,
			func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
				return myrinet.NewLine(k, p, groups, g, g+2)
			}},
		{"clos", 2 * groups,
			func(k *sim.Kernel, p *cost.Params) *myrinet.Fabric {
				return myrinet.NewClos(k, p, groups, groups, g, closPorts)
			}},
	}
}

// fabricDrive is the shared state of one fabricRun: the sink counts
// deliveries and recycles packets; per-source injectors pace themselves
// off the uplink-free instant. Both run as argument-style events and
// pooled packets, so a sweep point's steady state allocates nothing.
type fabricDrive struct {
	k         *sim.Kernel
	f         *myrinet.Fabric
	payload   []byte
	delivered int
	last      sim.Time
}

// Arrive implements myrinet.Sink.
func (dr *fabricDrive) Arrive(p *myrinet.Packet) {
	dr.delivered++
	dr.last = dr.k.Now()
	dr.f.Release(p)
}

// fabricInjector feeds one source's destination list into the fabric,
// back-to-back: each next injection fires when the uplink frees.
type fabricInjector struct {
	dr    *fabricDrive
	hdr   int
	src   int
	dests []int
	next  int
}

func injectNext(a any) {
	in := a.(*fabricInjector)
	if in.next >= len(in.dests) {
		return
	}
	dr := in.dr
	pkt := dr.f.NewPacket()
	pkt.Src, pkt.Dst = in.src, in.dests[in.next]
	pkt.Type = myrinet.Data
	pkt.SetPayload(dr.payload)
	pkt.HeaderBytes = in.hdr
	in.next++
	srcDone := dr.f.Inject(pkt)
	dr.k.AtArg(srcDone, injectNext, in)
}

// fabricRun drives one traffic pattern over a fresh fabric: every source
// injects its destination list back-to-back, each next injection paced
// by the instant the source's uplink frees. Returns the virtual time of
// the last delivery, the packet count, and the mean hop count.
func fabricRun(spec fabricSpec, p *cost.Params, pattern func(src, n int) []int, size int) (sim.Duration, int, float64) {
	k := sim.NewKernel()
	f := spec.build(k, p)
	n := f.Nodes()

	dr := &fabricDrive{k: k, f: f, payload: make([]byte, size)}
	for i := 0; i < n; i++ {
		f.Attach(i, dr)
	}

	total, hops := 0, 0
	for src := 0; src < n; src++ {
		dests := pattern(src, n)
		total += len(dests)
		for _, d := range dests {
			hops += f.Hops(src, d)
		}
		k.AtArg(0, injectNext, &fabricInjector{dr: dr, hdr: p.FMHeaderBytes, src: src, dests: dests})
	}
	if err := k.RunAll(); err != nil {
		panic(err)
	}
	if dr.delivered != total {
		panic(fmt.Sprintf("bench: %s delivered %d/%d packets", spec.name, dr.delivered, total))
	}
	return sim.Duration(dr.last), total, float64(hops) / float64(total)
}

// allToAll sends `rounds` packets from every node to every other node,
// destination order rotated per source so the pattern is not a
// synchronized hotspot sweep.
func allToAll(rounds int) func(src, n int) []int {
	return func(src, n int) []int {
		out := make([]int, 0, rounds*(n-1))
		for r := 0; r < rounds; r++ {
			for off := 1; off < n; off++ {
				out = append(out, (src+off)%n)
			}
		}
		return out
	}
}

// bisection pairs node i with node (i+n/2)%n: every packet crosses the
// fabric's midline, the worst case for topologies without full
// bisection bandwidth.
func bisection(packets int) func(src, n int) []int {
	return func(src, n int) []int {
		out := make([]int, packets)
		for i := range out {
			out[i] = (src + n/2) % n
		}
		return out
	}
}

// fmClosAllToAll runs a one-round all-to-all through the complete FM
// layer (hosts, SBus, LANai, flow control) on the Clos fabric, proving
// the full stack scales past the single crossbar. Returns completion
// time and delivered payload bandwidth.
func fmClosAllToAll(n, size int, p *cost.Params) (sim.Duration, float64) {
	spines, leaves, g, ports := closGeometry(n)
	c := cluster.NewFMClos(spines, leaves, g, ports, core.DefaultConfig(), p)
	expect := n - 1
	for id := 0; id < n; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			got := 0
			ep.RegisterHandler(0, func(int, []byte) { got++ })
			buf := make([]byte, size)
			for off := 1; off < n; off++ {
				if err := ep.Send((id+off)%n, 0, buf); err != nil {
					panic(err)
				}
				ep.Extract() // keep draining while sending
			}
			for got < expect || ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	elapsed := sim.Duration(c.K.Now())
	return elapsed, metrics.Bandwidth(size, n*expect, elapsed)
}

// Fabrics regenerates the fabric-scaling comparison at opt.FabricNodes
// nodes (default 64): aggregate all-to-all bandwidth and bisection
// bandwidth for crossbar vs. line vs. Clos, plus the FM-layer all-to-all
// on the Clos.
func Fabrics(opt Options) *Report {
	p := cost.Default()
	n := opt.FabricNodes
	if n < 4 {
		n = 4
	}
	if n%2 != 0 {
		n++ // bisection pairing needs an even node count
	}
	const size = 112 // 112B payload + 16B header = the paper's 128B frame
	r := &Report{ID: "fabrics", Title: fmt.Sprintf("Fabric scaling at %d nodes", n)}

	specs := fabricSpecs(n)
	type res struct {
		a2aBW, bisBW, a2aHops float64
	}
	results := mapN(opt.Workers, len(specs), func(i int) res {
		elapsed, packets, hops := fabricRun(specs[i], p, allToAll(2), size)
		bisElapsed, bisPackets, _ := fabricRun(specs[i], p, bisection(32), size)
		return res{
			a2aBW:   metrics.Bandwidth(size, packets, elapsed),
			bisBW:   metrics.Bandwidth(size, bisPackets, bisElapsed),
			a2aHops: hops,
		}
	})

	linkMBps := float64(sim.Second/p.LinkByte) / metrics.MiB
	for i, s := range specs {
		expect := "full bisection"
		switch i {
		case 1:
			expect = "trunk-bottlenecked"
		case 2:
			expect = "near-crossbar"
		}
		r.KVs = append(r.KVs,
			KV{s.name + ": all-to-all agg. BW (MB/s)", fmt.Sprintf("%.0f", results[i].a2aBW), expect},
			KV{s.name + ": bisection BW (MB/s)", fmt.Sprintf("%.0f", results[i].bisBW), expect},
			KV{s.name + ": mean hops", fmt.Sprintf("%.2f", results[i].a2aHops), "-"},
		)
	}

	fmElapsed, fmBW := fmClosAllToAll(n, size, p)
	r.KVs = append(r.KVs,
		KV{fmt.Sprintf("FM on Clos: all-to-all completion, N=%d (ms)", n),
			fmt.Sprintf("%.2f", float64(fmElapsed)/float64(sim.Millisecond)), "-"},
		KV{"FM on Clos: delivered payload BW (MB/s)", fmt.Sprintf("%.1f", fmBW), "-"},
	)

	g, groups := fabricGeometry(n)
	r.Notes = append(r.Notes,
		fmt.Sprintf("geometry: crossbar = one %d-port switch; line = %d switches x %d nodes; clos = %d spines over %d leaves x %d nodes (full bisection by construction)",
			n, groups, g, groups, groups, g),
		fmt.Sprintf("raw link rate is %.0f MB/s per cable (%.1f ns/byte); the line's bisection is one trunk pair", linkMBps, p.LinkByte.Nanoseconds()),
		"raw-fabric numbers exclude the host stack: they measure what the wires and switches can carry",
	)
	return r
}
