// Package mpi implements an MPI-style message-passing layer on top of
// the FM 1.0 API — the paper's first stated target: "FM is designed to
// support efficient implementation of a variety of communication
// libraries"; MPI heads the list in Section 7, and the historical
// follow-on (MPI-FM, Lauria & Chien) quantified exactly what such a
// layering costs. This package reproduces that layer in simulation:
//
//   - Tagged message matching with the canonical two queues — a
//     posted-receive queue and an unexpected-message queue — with MPI's
//     non-overtaking guarantee per (source, communicator).
//   - Communicators with rank translation: World spans the cluster;
//     Split carves disjoint sub-groups whose ranks are renumbered.
//   - Blocking Send/Recv and nonblocking Isend/Irecv with Wait/Waitall;
//     receives may use AnySource and AnyTag wildcards.
//   - Collectives (Barrier, Bcast, Reduce, Allreduce, Alltoall) built
//     on the matching engine itself, not borrowed from package
//     collective.
//
// Messages of any size are segmented into FM frames and reassembled;
// because FM's return-to-sender flow control may reorder frames, the
// engine resequences fragments per source before matching, so the MPI
// ordering guarantee holds even when the transport reorders.
//
// Everything above FM_send/FM_extract costs host CPU time (header
// builds, copies, queue scans), so the fmbench "mpi" experiment can
// measure the classic cost of layering against raw FM.
package mpi

import (
	"encoding/binary"
	"fmt"

	"fm/internal/core"
	"fm/internal/sim"
)

// Wildcards accepted by receive envelopes. A wildcard tag matches only
// application tags (>= 0), never the negative tags the collectives use
// internally.
const (
	AnySource = -1
	AnyTag    = -1
)

// HeaderBytes is the MPI envelope prepended to every FM frame:
// [ctx u32][tag i32][msgSeq u32][segIdx u16][segCount u16][fragSeq u32].
const HeaderBytes = 20

// Host-CPU charges for the layer's software, modeled on the MPI-FM
// measurements (matching and request bookkeeping dominate; they are why
// MPI-on-FM's t0 exceeds raw FM's by a few microseconds).
const (
	// matchCost is charged per received fragment: header parse plus the
	// posted/unexpected queue scan.
	matchCost = 800 * sim.Nanosecond
	// postCost is charged per request posted or completed: envelope
	// construction and request bookkeeping.
	postCost = 600 * sim.Nanosecond
)

// fragment is one parsed wire frame.
type fragment struct {
	ctx      uint32
	tag      int
	msgSeq   uint32
	segIdx   int
	segCount int
	body     []byte
}

// srcChannel resequences fragments from one source node: FM delivery is
// reliable but unordered (rejection and retransmission), while MPI
// matching needs arrival order to equal send order.
type srcChannel struct {
	next    uint32
	pending map[uint32]fragment
}

// Engine is one node's MPI progress engine: it owns an FM handler,
// resequences inbound fragments, and dispatches them to communicators
// by context id.
type Engine struct {
	ep      *core.Endpoint
	handler int
	comms   map[uint32]*Comm
	// orphans holds fragments for contexts not yet registered (a peer
	// raced ahead through a Split); drained at registration.
	orphans map[uint32][]pendingFrag
	// sendFrag / recvChan implement per-peer fragment resequencing.
	sendFrag map[int]uint32
	recvChan map[int]*srcChannel
}

type pendingFrag struct {
	srcNode int
	frag    fragment
}

// newEngine attaches a progress engine to ep, owning FM handler id h.
func newEngine(ep *core.Endpoint, h int) *Engine {
	e := &Engine{
		ep:       ep,
		handler:  h,
		comms:    make(map[uint32]*Comm),
		orphans:  make(map[uint32][]pendingFrag),
		sendFrag: make(map[int]uint32),
		recvChan: make(map[int]*srcChannel),
	}
	ep.RegisterHandler(h, e.onMessage)
	return e
}

// maxData is the payload capacity of one fragment.
func (e *Engine) maxData() int {
	n := e.ep.Config().FramePayload - HeaderBytes
	if n <= 0 {
		panic("mpi: frame too small for the MPI envelope")
	}
	return n
}

// register binds a communicator to its context id, draining any
// fragments that arrived before the local Split caught up.
func (e *Engine) register(c *Comm) {
	if _, dup := e.comms[c.ctx]; dup {
		panic(fmt.Sprintf("mpi: duplicate context %d on node %d", c.ctx, e.ep.NodeID()))
	}
	e.comms[c.ctx] = c
	for _, p := range e.orphans[c.ctx] {
		c.acceptFrag(p.srcNode, p.frag)
	}
	delete(e.orphans, c.ctx)
}

// sendFragments segments data toward a destination node under the given
// envelope, charging the header-build/copy cost of each frame.
func (e *Engine) sendFragments(dstNode int, ctx uint32, tag int, msgSeq uint32, data []byte) {
	maxData := e.maxData()
	segs := 1
	if len(data) > 0 {
		segs = (len(data) + maxData - 1) / maxData
	}
	if segs > 1<<16-1 {
		panic(fmt.Sprintf("mpi: message of %d bytes needs %d segments (max 65535)", len(data), segs))
	}
	for s := 0; s < segs; s++ {
		lo := s * maxData
		hi := lo + maxData
		if hi > len(data) {
			hi = len(data)
		}
		frame := make([]byte, HeaderBytes+hi-lo)
		binary.LittleEndian.PutUint32(frame[0:], ctx)
		binary.LittleEndian.PutUint32(frame[4:], uint32(int32(tag)))
		binary.LittleEndian.PutUint32(frame[8:], msgSeq)
		binary.LittleEndian.PutUint16(frame[12:], uint16(s))
		binary.LittleEndian.PutUint16(frame[14:], uint16(segs))
		binary.LittleEndian.PutUint32(frame[16:], e.sendFrag[dstNode])
		e.sendFrag[dstNode]++
		copy(frame[HeaderBytes:], data[lo:hi])
		// The layer's staging copy (FM then copies again off this
		// buffer — the double copy is part of the cost of layering).
		e.ep.CPU().Memcpy(len(frame))
		if err := e.ep.Send(dstNode, e.handler, frame); err != nil {
			panic(fmt.Sprintf("mpi: send to node %d: %v", dstNode, err))
		}
	}
}

// onMessage is the FM handler: parse, resequence per source, dispatch.
// It runs inside FM_extract on the receiving host process.
func (e *Engine) onMessage(srcNode int, payload []byte) {
	if len(payload) < HeaderBytes {
		panic("mpi: runt fragment")
	}
	e.ep.CPU().Advance(matchCost)
	f := fragment{
		ctx:      binary.LittleEndian.Uint32(payload[0:]),
		tag:      int(int32(binary.LittleEndian.Uint32(payload[4:]))),
		msgSeq:   binary.LittleEndian.Uint32(payload[8:]),
		segIdx:   int(binary.LittleEndian.Uint16(payload[12:])),
		segCount: int(binary.LittleEndian.Uint16(payload[14:])),
		// The FM buffer dies with the handler: copy the body out.
		body: append([]byte(nil), payload[HeaderBytes:]...),
	}
	e.ep.CPU().Memcpy(len(f.body))
	fragSeq := binary.LittleEndian.Uint32(payload[16:])

	ch := e.recvChan[srcNode]
	if ch == nil {
		ch = &srcChannel{pending: make(map[uint32]fragment)}
		e.recvChan[srcNode] = ch
	}
	if fragSeq != ch.next {
		// Transport reordering (a rejected-then-retransmitted frame):
		// park until the gap fills.
		ch.pending[fragSeq] = f
		return
	}
	e.dispatch(srcNode, f)
	ch.next++
	for {
		nf, ok := ch.pending[ch.next]
		if !ok {
			return
		}
		delete(ch.pending, ch.next)
		e.dispatch(srcNode, nf)
		ch.next++
	}
}

// dispatch hands one in-order fragment to its communicator.
func (e *Engine) dispatch(srcNode int, f fragment) {
	c, ok := e.comms[f.ctx]
	if !ok {
		e.orphans[f.ctx] = append(e.orphans[f.ctx], pendingFrag{srcNode: srcNode, frag: f})
		return
	}
	c.acceptFrag(srcNode, f)
}

// progress pumps the FM layer once: wait for host work, extract.
func (e *Engine) progress() {
	e.ep.WaitIncoming()
	e.ep.Extract()
}
