package rpc

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

const h = 2

func TestBasicCall(t *testing.T) {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	var got []byte
	serving := true
	c.Start(1, func(ep *core.Endpoint) {
		p := New(ep, h)
		p.Register(1, func(src int, args []byte) []byte {
			out := append([]byte("echo:"), args...)
			return out
		})
		p.ServeUntil(func() bool { return !serving })
	})
	c.Start(0, func(ep *core.Endpoint) {
		p := New(ep, h)
		reply, err := p.Call(1, 1, []byte("ping"))
		if err != nil {
			t.Errorf("call: %v", err)
		}
		got = reply
		serving = false
		// Wake the server so ServeUntil re-checks its condition.
		ep.Send4(1, h+1, 0, 0, 0, 0)
	})
	// Handler for the wake poke.
	c.EPs[1].RegisterHandler(h+1, func(int, []byte) {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("echo:ping")) {
		t.Fatalf("reply = %q", got)
	}
}

func TestPipelinedCalls(t *testing.T) {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	const n = 40
	var sum uint32
	done := false
	c.Start(1, func(ep *core.Endpoint) {
		p := New(ep, h)
		p.Register(7, func(src int, args []byte) []byte {
			v := binary.LittleEndian.Uint32(args)
			out := make([]byte, 4)
			binary.LittleEndian.PutUint32(out, v*2)
			return out
		})
		p.ServeUntil(func() bool { return p.Served() >= n })
	})
	c.Start(0, func(ep *core.Endpoint) {
		p := New(ep, h)
		calls := make([]*Call, n)
		for i := range calls {
			args := make([]byte, 4)
			binary.LittleEndian.PutUint32(args, uint32(i))
			call, err := p.Go(1, 7, args)
			if err != nil {
				t.Errorf("go %d: %v", i, err)
				return
			}
			calls[i] = call
		}
		for _, call := range calls {
			sum += binary.LittleEndian.Uint32(call.Wait())
		}
		done = true
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("calls never completed")
	}
	want := uint32(0)
	for i := 0; i < n; i++ {
		want += uint32(2 * i)
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestMutualClients(t *testing.T) {
	// Both nodes are client and server simultaneously; calls cross.
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	results := make([]string, 2)
	for me := 0; me < 2; me++ {
		me := me
		c.Start(me, func(ep *core.Endpoint) {
			p := New(ep, h)
			p.Register(0, func(src int, args []byte) []byte {
				return []byte{byte(me)}
			})
			reply, err := p.Call(1-me, 0, nil)
			if err != nil {
				t.Errorf("node %d call: %v", me, err)
				return
			}
			results[me] = string(reply)
			// Keep serving until the peer has its answer too.
			for p.Served() == 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if results[0] != "\x01" || results[1] != "\x00" {
		t.Fatalf("results = %q", results)
	}
}

func TestOversizeArgsRejected(t *testing.T) {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	c.Start(0, func(ep *core.Endpoint) {
		p := New(ep, h)
		if _, err := p.Go(1, 0, make([]byte, p.MaxArgs()+1)); err == nil {
			t.Error("oversize args accepted")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCallLatencyIsShortMessageRegime(t *testing.T) {
	// A round-trip RPC is two FM one-way latencies plus service time:
	// it must land in the tens of microseconds, the regime the paper
	// built FM for.
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	var rt sim.Duration
	stop := false
	c.Start(1, func(ep *core.Endpoint) {
		p := New(ep, h)
		p.Register(0, func(int, []byte) []byte { return nil })
		p.ServeUntil(func() bool { return stop })
	})
	c.Start(0, func(ep *core.Endpoint) {
		p := New(ep, h)
		start := ep.Now()
		const rounds = 20
		for i := 0; i < rounds; i++ {
			if _, err := p.Call(1, 0, []byte{1, 2, 3, 4}); err != nil {
				t.Errorf("call: %v", err)
			}
		}
		rt = ep.Now().Sub(start) / rounds
		stop = true
		ep.Send4(1, h+1, 0, 0, 0, 0)
	})
	c.EPs[1].RegisterHandler(h+1, func(int, []byte) {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	us := rt.Microseconds()
	if us < 10 || us > 120 {
		t.Errorf("round trip = %.1f us, expected tens of us", us)
	}
}
