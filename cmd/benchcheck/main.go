// Command benchcheck guards the allocation discipline of the hot-path
// benchmarks: it parses `go test -bench` output and fails if any
// benchmark's allocs/op regressed more than the threshold against the
// committed BENCH_*.json baselines.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchtime 100x . | tee bench.out
//	go run ./cmd/benchcheck [-baselines 'BENCH_*.json'] [-threshold 1.25] bench.out
//
// Wall-clock ns/op is deliberately not gated — CI machines vary too
// much — but allocs/op and B/op are deterministic for these
// benchmarks, so any growth beyond the threshold is a real regression
// in the engine's pooling/reuse discipline (see DESIGN.md
// "Performance"). B/op is gated per benchmark: only once its baseline
// commits a bytes_per_op figure, so pre-existing baselines keep
// gating allocs alone.
//
// Baseline schema: each BENCH_*.json holds {"benchmarks": [{"name":
// ..., then either "after" or "baseline": {"allocs_per_op": N,
// "bytes_per_op": M}}]} (bytes_per_op optional).
// When several files name the same benchmark, the newest baseline
// wins; files are ordered shortest-name-first, then lexicographically,
// so BENCH_pr10.json correctly sorts after BENCH_pr5.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

type entry struct {
	file   string
	allocs float64
	// bytes gates B/op when the baseline carries bytes_per_op; hasBytes
	// false means the benchmark predates byte gating and only allocs
	// are checked.
	bytes    float64
	hasBytes bool
}

// loadBaselines walks the glob in name order and collects every
// benchmark's committed allocs/op, later files overriding earlier ones.
func loadBaselines(glob string) (map[string]entry, error) {
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no baseline files match %q", glob)
	}
	// Shortest-name-first, then lexicographic: for same-prefix files
	// this is numeric order (pr3 < pr5 < pr10), so later PRs override.
	sort.Slice(files, func(i, j int) bool {
		if len(files[i]) != len(files[j]) {
			return len(files[i]) < len(files[j])
		}
		return files[i] < files[j]
	})
	base := map[string]entry{}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		type measure struct {
			Allocs *float64 `json:"allocs_per_op"`
			Bytes  *float64 `json:"bytes_per_op"`
		}
		var doc struct {
			Benchmarks []struct {
				Name     string   `json:"name"`
				After    *measure `json:"after"`
				Baseline *measure `json:"baseline"`
			} `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("%s: %v", f, err)
		}
		for _, b := range doc.Benchmarks {
			var m *measure
			switch {
			case b.After != nil && b.After.Allocs != nil:
				m = b.After
			case b.Baseline != nil && b.Baseline.Allocs != nil:
				m = b.Baseline
			}
			if b.Name == "" || m == nil {
				continue
			}
			e := entry{file: f, allocs: *m.Allocs}
			if m.Bytes != nil {
				e.bytes, e.hasBytes = *m.Bytes, true
			}
			base[b.Name] = e
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("no benchmark baselines found in %q", glob)
	}
	return base, nil
}

// benchLine matches `BenchmarkName-8   100   12345 ns/op ... 17 allocs/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s.*?([\d.]+)\s+allocs/op`)

// bytesField extracts the B/op column; it is matched separately from
// benchLine so benchmarks that predate byte gating still parse.
var bytesField = regexp.MustCompile(`(\S+)\s+B/op`)

// check scans `go test -bench` output against the baselines, writing
// one verdict line per gated benchmark, and returns the process exit
// code. Split from main so the gate's logic is testable end to end.
func check(in io.Reader, out, errw io.Writer, base map[string]entry, threshold float64, allowMissing bool) int {
	checked, failed := 0, 0
	seen := map[string]bool{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		b, ok := base[name]
		if !ok {
			continue // benchmark without a committed baseline: informational only
		}
		seen[name] = true
		got, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			// The benchmark appeared but its allocs/op is unreadable:
			// fail loudly rather than letting it drop out of the gate.
			failed++
			fmt.Fprintf(out, "FAIL %s: unreadable allocs/op %q in the benchmark output\n", name, m[2])
			continue
		}
		checked++
		limit := b.allocs * threshold
		if got > limit {
			failed++
			fmt.Fprintf(out, "FAIL %s: %.0f allocs/op exceeds %.0f (baseline %.0f in %s, threshold x%.2f)\n",
				name, got, limit, b.allocs, b.file, threshold)
		} else {
			fmt.Fprintf(out, "ok   %s: %.0f allocs/op (baseline %.0f, limit %.0f)\n", name, got, b.allocs, limit)
		}

		// Bytes/op rides the same gate once a baseline commits to it:
		// same threshold, and a gated line whose B/op column is missing
		// or unreadable fails loudly rather than dropping the check.
		if !b.hasBytes {
			continue
		}
		bm := bytesField.FindStringSubmatch(sc.Text())
		if bm == nil {
			failed++
			fmt.Fprintf(out, "FAIL %s: baseline gates bytes_per_op but the benchmark line has no B/op column\n", name)
			continue
		}
		gotB, err := strconv.ParseFloat(bm[1], 64)
		if err != nil {
			failed++
			fmt.Fprintf(out, "FAIL %s: unreadable B/op %q in the benchmark output\n", name, bm[1])
			continue
		}
		limitB := b.bytes * threshold
		if gotB > limitB {
			failed++
			fmt.Fprintf(out, "FAIL %s: %.0f B/op exceeds %.0f (baseline %.0f in %s, threshold x%.2f)\n",
				name, gotB, limitB, b.bytes, b.file, threshold)
		} else {
			fmt.Fprintf(out, "ok   %s: %.0f B/op (baseline %.0f, limit %.0f)\n", name, gotB, b.bytes, limitB)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(errw, "benchcheck: reading input: %v\n", err)
		return 1
	}
	if checked == 0 && failed == 0 {
		fmt.Fprintln(errw, "benchcheck: no benchmark with a committed baseline appeared in the input")
		return 1
	}
	if !allowMissing {
		// A baselined benchmark that never appeared means the gate
		// quietly narrowed (renamed benchmark, trimmed -bench regex);
		// fail so the baseline and the run are reconciled explicitly.
		names := make([]string, 0, len(base))
		for name := range base {
			if !seen[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			failed++
			fmt.Fprintf(out, "FAIL %s: baselined in %s but absent from the benchmark run\n", name, base[name].file)
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Fprintf(out, "benchcheck: %d benchmark(s) within the x%.2f allocation/byte budget\n", checked, threshold)
	return 0
}

func main() {
	glob := flag.String("baselines", "BENCH_*.json", "glob of committed baseline files")
	threshold := flag.Float64("threshold", 1.25, "fail when measured allocs/op exceed baseline by this factor")
	allowMissing := flag.Bool("allow-missing", false, "do not fail when a baselined benchmark is absent from the input (for subset runs)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	base, err := loadBaselines(*glob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	os.Exit(check(in, os.Stdout, os.Stderr, base, *threshold, *allowMissing))
}
