// Package collective implements MPI-style collective operations over FM
// handlers — the communication-library use case FM was designed to carry
// ("FM is designed to support efficient implementation of a variety of
// communication libraries"; MPI is the paper's first target, Section 7).
//
// Algorithms are the classic binomial/dissemination ones, so every
// operation completes in O(log N) communication rounds of short messages
// — exactly the traffic pattern FM's low n1/2 is built for. All
// collectives must be invoked in the same order on every member (the
// usual MPI constraint); successive operations are separated by an
// internal phase number so a fast node's next-phase messages cannot
// confuse a slow one.
package collective

import (
	"encoding/binary"
	"fmt"
	"math"

	"fm/internal/core"
)

// Op combines two reduction operands.
type Op func(a, b float64) float64

// Built-in reduction operators.
var (
	Sum  Op = func(a, b float64) float64 { return a + b }
	Prod Op = func(a, b float64) float64 { return a * b }
	Max  Op = math.Max
	Min  Op = math.Min
)

// header is [phase uint32][tag uint32][meta uint32]; meta carries the
// total segment count for multi-frame payloads.
const headerBytes = 12

// msgKey identifies one expected message within the collective state
// machine.
type msgKey struct {
	phase uint32
	tag   uint32
	src   int
}

// Comm is one node's membership in a collective group spanning nodes
// 0..size-1, bound to one FM handler id.
type Comm struct {
	ep      *core.Endpoint
	size    int
	handler int
	phase   uint32
	inbox   map[msgKey]inboxEntry
	maxData int
}

type inboxEntry struct {
	meta uint32
	body []byte
}

// New joins the group. Every node must use the same size and handler id.
func New(ep *core.Endpoint, size, handler int) *Comm {
	c := &Comm{
		ep:      ep,
		size:    size,
		handler: handler,
		inbox:   make(map[msgKey]inboxEntry),
		maxData: ep.Config().FramePayload - headerBytes,
	}
	if c.maxData <= 0 {
		panic("collective: frame too small for the collective header")
	}
	if ep.NodeID() >= size {
		panic(fmt.Sprintf("collective: node %d outside group of %d", ep.NodeID(), size))
	}
	ep.RegisterHandler(handler, c.onMessage)
	return c
}

// Rank returns this member's rank (its node id).
func (c *Comm) Rank() int { return c.ep.NodeID() }

// Size returns the group size.
func (c *Comm) Size() int { return c.size }

func (c *Comm) onMessage(src int, payload []byte) {
	if len(payload) < headerBytes {
		panic("collective: runt message")
	}
	key := msgKey{
		phase: binary.LittleEndian.Uint32(payload[0:]),
		tag:   binary.LittleEndian.Uint32(payload[4:]),
		src:   src,
	}
	if _, dup := c.inbox[key]; dup {
		panic(fmt.Sprintf("collective: duplicate message %+v", key))
	}
	c.inbox[key] = inboxEntry{
		meta: binary.LittleEndian.Uint32(payload[8:]),
		body: append([]byte(nil), payload[headerBytes:]...),
	}
}

// send emits one collective message.
func (c *Comm) send(dst int, tag, meta uint32, body []byte) {
	frame := make([]byte, headerBytes+len(body))
	binary.LittleEndian.PutUint32(frame[0:], c.phase)
	binary.LittleEndian.PutUint32(frame[4:], tag)
	binary.LittleEndian.PutUint32(frame[8:], meta)
	copy(frame[headerBytes:], body)
	if err := c.ep.Send(dst, c.handler, frame); err != nil {
		panic(fmt.Sprintf("collective: send to %d: %v", dst, err))
	}
}

// recv pumps the layer until the keyed message arrives, then removes and
// returns it.
func (c *Comm) recv(src int, tag uint32) (uint32, []byte) {
	key := msgKey{phase: c.phase, tag: tag, src: src}
	for {
		if e, ok := c.inbox[key]; ok {
			delete(c.inbox, key)
			return e.meta, e.body
		}
		c.ep.WaitIncoming()
		c.ep.Extract()
	}
}

// sendChunked segments body across frames under (tagBase + segment).
func (c *Comm) sendChunked(dst int, tagBase uint32, body []byte) {
	segs := uint32(1)
	if len(body) > 0 {
		segs = uint32((len(body) + c.maxData - 1) / c.maxData)
	}
	for s := uint32(0); s < segs; s++ {
		lo := int(s) * c.maxData
		hi := lo + c.maxData
		if hi > len(body) {
			hi = len(body)
		}
		c.send(dst, tagBase+s, segs, body[lo:hi])
	}
}

// recvChunked reassembles a sendChunked transmission.
func (c *Comm) recvChunked(src int, tagBase uint32) []byte {
	segs, first := c.recv(src, tagBase)
	body := append([]byte(nil), first...)
	for s := uint32(1); s < segs; s++ {
		_, b := c.recv(src, tagBase+s)
		body = append(body, b...)
	}
	return body
}

// Barrier blocks until every member has entered it (dissemination
// algorithm: ceil(log2 N) rounds of one short message each).
func (c *Comm) Barrier() {
	c.phase++
	me, n := c.Rank(), c.size
	for round, dist := uint32(0), 1; dist < n; round, dist = round+1, dist*2 {
		c.send((me+dist)%n, round, 0, nil)
		c.recv((me-dist+n)%n, round)
	}
}

// Broadcast distributes root's data to every member along a binomial
// tree; each member returns its copy.
func (c *Comm) Broadcast(root int, data []byte) []byte {
	c.phase++
	me, n := c.Rank(), c.size
	rel := (me - root + n) % n

	// Receive from the parent (non-roots).
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (me - mask + n) % n
			data = c.recvChunked(parent, 0)
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			c.sendChunked((me+mask)%n, 0, data)
		}
		mask >>= 1
	}
	return append([]byte(nil), data...)
}

// Reduce combines each member's vector element-wise with op along a
// binomial tree; the result is returned at root (nil elsewhere). All
// members must pass vectors of the same length.
func (c *Comm) Reduce(root int, vals []float64, op Op) []float64 {
	c.phase++
	me, n := c.Rank(), c.size
	rel := (me - root + n) % n
	acc := append([]float64(nil), vals...)

	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			child := rel | mask
			if child < n {
				theirs := decodeFloats(c.recvChunked((child+root)%n, 0))
				if len(theirs) != len(acc) {
					panic("collective: reduce length mismatch")
				}
				for i := range acc {
					acc[i] = op(acc[i], theirs[i])
				}
			}
		} else {
			parent := ((rel &^ mask) + root) % n
			c.sendChunked(parent, 0, encodeFloats(acc))
			return nil
		}
	}
	return acc
}

// Allreduce gives every member the reduction result (reduce to rank 0,
// then broadcast).
func (c *Comm) Allreduce(vals []float64, op Op) []float64 {
	res := c.Reduce(0, vals, op)
	var wire []byte
	if c.Rank() == 0 {
		wire = encodeFloats(res)
	}
	return decodeFloats(c.Broadcast(0, wire))
}

// Gather collects every member's data at root, indexed by rank (root's
// own entry included). Non-roots return nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	c.phase++
	me, n := c.Rank(), c.size
	if me != root {
		c.sendChunked(root, 0, data)
		return nil
	}
	out := make([][]byte, n)
	out[me] = append([]byte(nil), data...)
	for src := 0; src < n; src++ {
		if src != me {
			out[src] = c.recvChunked(src, 0)
		}
	}
	return out
}

// AllToAll performs a personalized exchange: member i's data[j] arrives
// as member j's result[i].
func (c *Comm) AllToAll(data [][]byte) [][]byte {
	if len(data) != c.size {
		panic("collective: AllToAll needs one buffer per member")
	}
	c.phase++
	me, n := c.Rank(), c.size
	out := make([][]byte, n)
	out[me] = append([]byte(nil), data[me]...)
	// Stagger destinations so the switch sees a rotating permutation
	// rather than N-1 senders converging on one port at once.
	for step := 1; step < n; step++ {
		dst := (me + step) % n
		c.sendChunked(dst, uint32(me)<<16, data[dst])
	}
	for step := 1; step < n; step++ {
		src := (me - step + n) % n
		out[src] = c.recvChunked(src, uint32(src)<<16)
	}
	return out
}

func encodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
