// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel advances an integer virtual clock (picosecond resolution) by
// executing events from a priority queue ordered by (time, insertion
// sequence). Simulated activities may be expressed either as plain event
// callbacks or as processes: ordinary Go functions running in their own
// goroutine that block on kernel primitives (Sleep, Wait, Use). The kernel
// guarantees that at most one process runs at any instant, so simulations
// are fully deterministic and race-free regardless of host parallelism.
package sim

import "fmt"

// Time is an absolute instant of virtual time, in picoseconds since the
// start of the simulation. Picosecond resolution lets hardware cost models
// such as Myrinet's 12.5 ns/byte link be represented exactly as integers.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Nanoseconds returns d as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an automatically chosen unit.
func (d Duration) String() string {
	switch {
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as a duration since time zero.
func (t Time) String() string { return Duration(t).String() }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Ns builds a Duration from an integer nanosecond count.
func Ns(n int64) Duration { return Duration(n) * Nanosecond }

// Us builds a Duration from an integer microsecond count.
func Us(n int64) Duration { return Duration(n) * Microsecond }

// NsF builds a Duration from a floating-point nanosecond count, rounding
// to the nearest picosecond. Intended for configuration-time conversion
// only; hot paths should precompute integer durations.
func NsF(n float64) Duration { return Duration(n*1000 + 0.5) }

// MaxTime is the largest representable instant.
const MaxTime Time = 1<<63 - 1
