// Package myrinet models the Myrinet network: byte-wide parallel links at
// 12.5 ns/byte (76.3 MiB/s), cut-through crossbar switches with 550 ns of
// per-hop latency, and source-routed packet delivery (paper Section 2 and
// Appendix A).
package myrinet

import (
	"fmt"
	"hash/fnv"

	"fm/internal/sim"
)

// PacketType distinguishes the frame kinds the FM protocol and the
// Myrinet API comparator put on the wire.
type PacketType uint8

const (
	// Data carries application payload to a handler.
	Data PacketType = iota
	// Ack acknowledges accepted sequence numbers (possibly aggregated).
	Ack
	// Reject returns a packet to its sender under return-to-sender flow
	// control (paper Section 4.5).
	Reject
	// Retransmit is a Data packet being retried from the reject queue.
	Retransmit
	// APIMessage is a Myrinet-API message (ordered, checksummed).
	APIMessage
)

// String returns the packet type mnemonic.
func (t PacketType) String() string {
	switch t {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Reject:
		return "REJECT"
	case Retransmit:
		return "RETX"
	case APIMessage:
		return "API"
	default:
		return fmt.Sprintf("PacketType(%d)", uint8(t))
	}
}

// SeqRange is an inclusive range of sequence numbers, used to aggregate
// multiple acknowledgements into a single packet (Section 4.5: "Multiple
// packets can be acknowledged with a single acknowledgement packet").
type SeqRange struct {
	Lo, Hi uint64
}

// Contains reports whether s falls inside the range.
func (r SeqRange) Contains(s uint64) bool { return s >= r.Lo && s <= r.Hi }

// Count returns the number of sequence numbers covered.
func (r SeqRange) Count() uint64 { return r.Hi - r.Lo + 1 }

// Packet is one Myrinet frame. The simulation moves real payload bytes so
// higher layers can be verified end to end; the header fields are carried
// as struct members and charged on the wire via HeaderBytes.
type Packet struct {
	Src     int        // source node id
	Dst     int        // destination node id
	Type    PacketType // frame kind
	Handler int        // FM handler index (Data/Retransmit/Reject)
	Seq     uint64     // sender-assigned sequence number
	Acks    []SeqRange // piggybacked or standalone acknowledgements
	Payload []byte     // application bytes (owned by the packet)

	// HeaderBytes is the on-wire header size, set by the messaging layer
	// that built the frame. Reported message lengths refer to payload
	// only, "inclusive of the header overhead" (Section 4.1), i.e. the
	// header consumes wire time but is not counted as data.
	HeaderBytes int

	// Injected records when the packet first entered the network, for
	// latency accounting across retransmissions.
	Injected sim.Time

	// Retries counts how many times return-to-sender has resent it.
	Retries int

	// Bounced marks a frame the fabric itself turned around at a failed
	// component (dead link or switch, loss burst, down destination): the
	// fabric flips it into a Reject aimed back at its sender, and the
	// sender's endpoint restores OrigType and parks it for
	// retransmission. Receiver-side rejects (host overload) never set it.
	Bounced bool

	// OrigType is the frame kind before a fault bounce flipped the
	// packet into a Reject; meaningful only while Bounced is set.
	OrigType PacketType

	// Corrupt marks a frame that crossed a link during a corruption
	// burst. The delivering fabric detects it (the model's stand-in for
	// a link-level CRC check at the receiving interface) and bounces the
	// frame instead of delivering it.
	Corrupt bool

	// crc is a frame check sequence computed at injection and verified
	// at delivery; it catches buffer-aliasing bugs in the layers above
	// (a payload mutated while "on the wire" means a missing copy).
	crc uint64

	// xsw is sharded-run transit state: the switch index at which the
	// packet's head crossed a shard boundary. The owning shard resolves
	// a fresh route from that switch and continues the walk
	// (Fabric.ResumeCross); under faults the re-resolution is also what
	// reroutes a mid-flight packet around a component that died while it
	// was crossing.
	xsw int

	// pooled marks a packet currently parked in its fabric's free list;
	// it catches double-release and use-after-release ownership bugs.
	pooled bool
}

// reset clears a packet for reuse, retaining the payload and ack
// buffers' capacity so a recycled packet carries no allocation cost.
func (p *Packet) reset() {
	*p = Packet{
		Payload: p.Payload[:0],
		Acks:    p.Acks[:0],
	}
}

// SetPayload copies b into the packet's payload, reusing the packet's
// buffer capacity. Layers use it instead of assigning a caller-owned
// slice, so the payload buffer stays under the packet's ownership and
// can be recycled with it.
func (p *Packet) SetPayload(b []byte) {
	p.Payload = append(p.Payload[:0], b...)
}

// WireBytes returns the total bytes the frame occupies on a link.
func (p *Packet) WireBytes() int { return p.HeaderBytes + len(p.Payload) }

// checksum hashes the fields that must be immutable in flight.
func (p *Packet) checksum() uint64 {
	h := fnv.New64a()
	var hdr [8]byte
	hdr[0] = byte(p.Src)
	hdr[1] = byte(p.Dst)
	hdr[2] = byte(p.Type)
	hdr[3] = byte(p.Handler)
	hdr[4] = byte(p.Seq)
	hdr[5] = byte(p.Seq >> 8)
	hdr[6] = byte(p.Seq >> 16)
	hdr[7] = byte(p.Seq >> 24)
	h.Write(hdr[:])
	h.Write(p.Payload)
	return h.Sum64()
}

// Seal stamps the frame check sequence prior to injection.
func (p *Packet) Seal() { p.crc = p.checksum() }

// Verify reports whether the frame is intact.
func (p *Packet) Verify() bool { return p.crc == p.checksum() }

// String summarizes the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %d->%d seq=%d len=%d", p.Type, p.Src, p.Dst, p.Seq, len(p.Payload))
}
