package bench

import (
	"fmt"

	"fm/internal/workload"
)

// ShardSupport reports the largest -shards value the experiment
// tolerates at the given options, plus the reason for the bound.
// fmbench validates -shards against this before anything runs, and the
// detail string is what its rejection message prints.
//
// The bound follows the topology partitioner's rule — one shard per
// leaf group of a strict two-level leaf/spine fabric — applied to every
// fabric the experiment builds. The scale experiment runs only such
// Clos fabrics, so it shards up to the leaf count of its smallest sweep
// point; every other experiment includes a crossbar (one leaf group),
// a line (leaf-to-leaf trunks), or the paper's two-node setups, none of
// which partition.
func ShardSupport(id string, opt Options) (int, string) {
	switch id {
	case "scale":
		nodes := opt.ScaleNodes
		if len(nodes) == 0 {
			nodes = DefaultOptions().ScaleNodes
		}
		bound, minN := 0, 0
		for _, n := range nodes {
			_, groups := workload.Geometry(n)
			if bound == 0 || groups < bound {
				bound, minN = groups, n
			}
		}
		return bound, fmt.Sprintf("2-level Clos sweep shards one leaf group per shard, and the smallest point (clos-%d) has %d leaf groups", minN, bound)
	case "faults":
		n := opt.FaultNodes
		if n == 0 {
			n = DefaultOptions().FaultNodes
		}
		_, groups := workload.Geometry(n)
		return groups, fmt.Sprintf("the faults experiment runs one 2-level Clos, and clos-%d has %d leaf groups", n, groups)
	case "soak":
		n := opt.SoakNodes
		if n == 0 {
			n = DefaultOptions().SoakNodes
		}
		_, groups := workload.Geometry(n)
		return groups, fmt.Sprintf("the soak timeline is computed on the canonical single-kernel engine (output is shard-invariant), and clos-%d accepts up to its %d leaf groups", n, groups)
	case "fabrics", "patterns", "mpi":
		return 1, "compares crossbar and line fabrics; a crossbar is a single leaf group and a line links leaves directly, so neither partitions"
	default:
		return 1, "paper measurement on one crossbar switch — a single leaf group, so a single shard"
	}
}
