package workload

import (
	"reflect"
	"testing"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

// catalog returns one small instance of every pattern, for sweeping
// structural properties.
func catalog() []Pattern {
	return []Pattern{
		AllToAll{Rounds: 2},
		Bisection{Packets: 3},
		UniformRandom{Seed: 42, Packets: 5},
		UniformRandom{Seed: 42, Packets: 5, MinBytes: 8, MaxBytes: 64},
		Tornado{Packets: 3},
		Incast{Target: 0, Packets: 3},
		Neighbor{Rounds: 2, Wrap: true},
		Neighbor{Rounds: 2, Wrap: false},
		Broadcast{Root: 1, Rounds: 2},
	}
}

// Every pattern is a pure function of (value, src, n): repeated calls
// must return equal slices, destinations must be in range, and no rank
// may send to itself.
func TestPatternsPureAndValid(t *testing.T) {
	for _, pat := range catalog() {
		for _, n := range []int{1, 2, 4, 8, 13} {
			n := AdjustNodes(pat, n)
			for src := 0; src < n; src++ {
				a := pat.Gen(src, n)
				b := pat.Gen(src, n)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: Gen(%d, %d) not reproducible", pat.Name(), src, n)
				}
				for _, s := range a {
					if s.Dst < 0 || s.Dst >= n {
						t.Fatalf("%s: Gen(%d, %d) dst %d out of range", pat.Name(), src, n, s.Dst)
					}
					if s.Dst == src {
						t.Fatalf("%s: rank %d sends to itself at n=%d", pat.Name(), src, n)
					}
				}
			}
		}
	}
}

// The PRNG seed is pinned: this exact destination sequence is part of
// the package's compatibility surface, because experiment outputs built
// on it are compared byte-for-byte across runs and machines.
func TestUniformRandomPinnedSeed(t *testing.T) {
	got := UniformRandom{Seed: 42, Packets: 6}.Gen(0, 8)
	dsts := make([]int, len(got))
	for i, s := range got {
		dsts[i] = s.Dst
	}
	want := []int{6, 6, 1, 3, 7, 5}
	if !reflect.DeepEqual(dsts, want) {
		t.Errorf("seed-42 stream changed: got %v want %v", dsts, want)
	}
	if other := (UniformRandom{Seed: 43, Packets: 6}).Gen(0, 8); reflect.DeepEqual(other, got) {
		t.Error("different seeds produced identical streams")
	}
}

func TestUniformRandomSizes(t *testing.T) {
	u := UniformRandom{Seed: 7, Packets: 100, MinBytes: 8, MaxBytes: 32}
	for _, s := range u.Gen(3, 16) {
		if s.Size < 8 || s.Size > 32 {
			t.Fatalf("size %d outside [8, 32]", s.Size)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted size range did not panic")
		}
	}()
	(UniformRandom{Seed: 7, Packets: 1, MinBytes: 64, MaxBytes: 8}).Gen(0, 4)
}

func TestRecvCountsMatchTotal(t *testing.T) {
	for _, pat := range catalog() {
		n := AdjustNodes(pat, 8)
		counts := RecvCounts(pat, n)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if total := Total(pat, n); sum != total {
			t.Errorf("%s: recv counts sum %d != total sends %d", pat.Name(), sum, total)
		}
	}
}

func TestBisectionAdjustNodes(t *testing.T) {
	if got := AdjustNodes(Bisection{}, 7); got != 8 {
		t.Errorf("odd count adjusted to %d, want 8", got)
	}
	if got := AdjustNodes(Bisection{}, 8); got != 8 {
		t.Errorf("even count adjusted to %d, want 8", got)
	}
	// Patterns without an adjustment pass n through.
	if got := AdjustNodes(AllToAll{Rounds: 1}, 7); got != 7 {
		t.Errorf("AllToAll adjusted 7 to %d", got)
	}
}

func TestNeighborBoundaries(t *testing.T) {
	open := Neighbor{Rounds: 1}
	if sends := open.Gen(0, 4); len(sends) != 1 || sends[0].Dst != 1 {
		t.Errorf("open rank 0 sends %v, want right neighbor only", sends)
	}
	if sends := open.Gen(3, 4); len(sends) != 1 || sends[0].Dst != 2 {
		t.Errorf("open rank 3 sends %v, want left neighbor only", sends)
	}
	wrapped := Neighbor{Rounds: 1, Wrap: true}
	if sends := wrapped.Gen(0, 4); len(sends) != 2 || sends[0].Dst != 3 || sends[1].Dst != 1 {
		t.Errorf("wrapped rank 0 sends %v, want [3 1]", sends)
	}
	// A 2-rank ring has one distinct neighbor; it must not be sent twice
	// per round under Wrap.
	if sends := wrapped.Gen(0, 2); len(sends) != 1 || sends[0].Dst != 1 {
		t.Errorf("2-rank wrapped ring sends %v, want one send to rank 1", sends)
	}
}

func TestIncastTargetSilent(t *testing.T) {
	pat := Incast{Target: 2, Packets: 4}
	if sends := pat.Gen(2, 8); len(sends) != 0 {
		t.Errorf("incast target generated %d sends", len(sends))
	}
	counts := RecvCounts(pat, 8)
	if counts[2] != 7*4 {
		t.Errorf("target receives %d, want 28", counts[2])
	}
}

func TestBroadcastOnlyRootSends(t *testing.T) {
	pat := Broadcast{Root: 1, Rounds: 2}
	for src := 0; src < 4; src++ {
		sends := pat.Gen(src, 4)
		if src == 1 && len(sends) != 6 {
			t.Errorf("root generated %d sends, want 6", len(sends))
		}
		if src != 1 && len(sends) != 0 {
			t.Errorf("non-root %d generated %d sends", src, len(sends))
		}
	}
}

// The three drivers must agree on the structural totals and be
// deterministic run to run: same elapsed time, same latency
// distribution, to the bit.
func TestDriversDeterministicAndConsistent(t *testing.T) {
	p := cost.Default()
	pat := UniformRandom{Seed: 9, Packets: 4}
	spec := ClosSpec(8)
	const size = 112

	type summary struct {
		messages int
		bytes    int64
		elapsed  int64
		latN     uint64
		latMean  int64
		p99      int64
	}
	sum := func(r Result) summary {
		return summary{r.Messages, r.PayloadBytes, int64(r.Elapsed),
			r.Latency.Count(), int64(r.Latency.Mean()), int64(r.Latency.Percentile(0.99))}
	}

	drivers := []struct {
		name string
		run  func() Result
	}{
		{"raw", func() Result { return DriveRaw(spec, p, pat, size) }},
		{"fm", func() Result { return DriveFM(spec, core.DefaultConfig(), p, pat, size) }},
		{"mpi", func() Result { return DriveMPI(spec, core.DefaultConfig().WithFrame(size), p, pat, size) }},
	}
	elapsed := make(map[string]int64)
	for _, d := range drivers {
		a, b := sum(d.run()), sum(d.run())
		if a != b {
			t.Errorf("%s driver not deterministic: %+v vs %+v", d.name, a, b)
		}
		if want := Total(pat, 8); a.messages != want {
			t.Errorf("%s driver counted %d messages, want %d", d.name, a.messages, want)
		}
		if a.bytes != int64(a.messages*size) {
			t.Errorf("%s driver counted %d payload bytes", d.name, a.bytes)
		}
		if a.latN != uint64(a.messages) {
			t.Errorf("%s driver recorded %d latencies for %d messages", d.name, a.latN, a.messages)
		}
		if a.elapsed <= 0 {
			t.Errorf("%s driver elapsed %d", d.name, a.elapsed)
		}
		elapsed[d.name] = a.elapsed
	}
	// Stack depth costs time: the raw fabric finishes first, MPI last.
	if !(elapsed["raw"] < elapsed["fm"] && elapsed["fm"] < elapsed["mpi"]) {
		t.Errorf("stack levels out of order: %v", elapsed)
	}
}

// Per-send size overrides flow through the raw driver: total payload
// bytes is the sum of the drawn sizes, not messages*default.
func TestDriveRawPerSendSizes(t *testing.T) {
	p := cost.Default()
	pat := UniformRandom{Seed: 5, Packets: 8, MinBytes: 16, MaxBytes: 96}
	res := DriveRaw(CrossbarSpec(4), p, pat, 112)
	var want int64
	for src := 0; src < 4; src++ {
		for _, s := range pat.Gen(src, 4) {
			want += int64(s.Size)
		}
	}
	if res.PayloadBytes != want {
		t.Errorf("payload bytes %d, want %d", res.PayloadBytes, want)
	}
	if res.PayloadBytes == int64(res.Messages*112) {
		t.Error("per-send sizes did not vary")
	}
}

// The At field delays injection: a pattern whose sends are all pinned
// past a horizon cannot finish before it.
func TestDriveRawHonorsAt(t *testing.T) {
	p := cost.Default()
	base := DriveRaw(CrossbarSpec(4), p, delayed{0}, 112)
	shifted := DriveRaw(CrossbarSpec(4), p, delayed{base.Elapsed * 2}, 112)
	if shifted.Elapsed < base.Elapsed*2 {
		t.Errorf("shifted run finished at %v, before the %v horizon", shifted.Elapsed, base.Elapsed*2)
	}
}

// delayed sends one packet to the next rank, no earlier than a fixed
// instant.
type delayed struct {
	at sim.Duration
}

func (delayed) Name() string { return "delayed" }

func (d delayed) Gen(src, n int) []Send {
	return []Send{{Dst: (src + 1) % n, At: d.at}}
}
