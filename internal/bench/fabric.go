package bench

import (
	"fmt"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/sim"
	"fm/internal/workload"
)

// The fabric-scaling experiment: the paper measures everything on one
// 8-port crossbar, but production Myrinet installations were multistage
// Clos networks. This experiment drives dense traffic patterns over
// N-node crossbar, line, and 2-level Clos fabrics at the raw network
// level (no host stack, so the fabric itself is the bottleneck), then
// re-runs the all-to-all through the full FM layer on the Clos.
//
// The traffic itself — all-to-all, bisection — and the drivers that
// push it through the fabric and the FM stack live in
// internal/workload; this file only selects patterns and formats the
// paper-style comparison.

// Fabrics regenerates the fabric-scaling comparison at opt.FabricNodes
// nodes (default 64): aggregate all-to-all bandwidth and bisection
// bandwidth for crossbar vs. line vs. Clos, plus the FM-layer all-to-all
// on the Clos.
func Fabrics(opt Options) *Report {
	p := cost.Default()
	n := opt.FabricNodes
	if n < 4 {
		n = 4
	}
	// The bisection pattern pairs ranks across the midline, so it bumps
	// odd node counts up to even ones.
	n = workload.AdjustNodes(workload.Bisection{}, n)
	const size = 112 // 112B payload + 16B header = the paper's 128B frame
	r := &Report{ID: "fabrics", Title: fmt.Sprintf("Fabric scaling at %d nodes", n)}

	specs := workload.Specs(n)
	type res struct {
		a2aBW, bisBW, a2aHops float64
	}
	results := mapN(opt.Workers, len(specs), func(i int) res {
		a2a := workload.DriveRaw(specs[i], p, workload.AllToAll{Rounds: 2}, size)
		bis := workload.DriveRaw(specs[i], p, workload.Bisection{Packets: 32}, size)
		return res{
			a2aBW:   metrics.Bandwidth(size, a2a.Messages, a2a.Elapsed),
			bisBW:   metrics.Bandwidth(size, bis.Messages, bis.Elapsed),
			a2aHops: a2a.MeanHops,
		}
	})

	linkMBps := float64(sim.Second/p.LinkByte) / metrics.MiB
	for i, s := range specs {
		expect := "full bisection"
		switch i {
		case 1:
			expect = "trunk-bottlenecked"
		case 2:
			expect = "near-crossbar"
		}
		r.KVs = append(r.KVs,
			KV{s.Name + ": all-to-all agg. BW (MB/s)", fmt.Sprintf("%.0f", results[i].a2aBW), expect},
			KV{s.Name + ": bisection BW (MB/s)", fmt.Sprintf("%.0f", results[i].bisBW), expect},
			KV{s.Name + ": mean hops", fmt.Sprintf("%.2f", results[i].a2aHops), "-"},
		)
	}

	fm := workload.DriveFM(workload.ClosSpec(n), core.DefaultConfig(), p, workload.AllToAll{Rounds: 1}, size)
	r.KVs = append(r.KVs,
		KV{fmt.Sprintf("FM on Clos: all-to-all completion, N=%d (ms)", n),
			fmt.Sprintf("%.2f", float64(fm.Elapsed)/float64(sim.Millisecond)), "-"},
		KV{"FM on Clos: delivered payload BW (MB/s)",
			fmt.Sprintf("%.1f", metrics.Bandwidth(size, fm.Messages, fm.Elapsed)), "-"},
	)

	g, groups := workload.Geometry(n)
	r.Notes = append(r.Notes,
		fmt.Sprintf("geometry: crossbar = one %d-port switch; line = %d switches x %d nodes; clos = %d spines over %d leaves x %d nodes (full bisection by construction)",
			n, groups, g, groups, groups, g),
		fmt.Sprintf("raw link rate is %.0f MB/s per cable (%.1f ns/byte); the line's bisection is one trunk pair", linkMBps, p.LinkByte.Nanoseconds()),
		"raw-fabric numbers exclude the host stack: they measure what the wires and switches can carry",
	)
	return r
}
