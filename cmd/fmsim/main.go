// Command fmsim runs ad-hoc FM cluster scenarios: pick a traffic
// pattern, node count, packet size and layer configuration, and get the
// timing plus the full protocol/hardware activity breakdown.
//
// Examples:
//
//	fmsim -pattern pingpong -size 128
//	fmsim -pattern stream -size 128 -packets 65535
//	fmsim -pattern hotspot -nodes 5 -drain 4
//	fmsim -pattern alltoall -nodes 8
//	fmsim -pattern stream -sbus alldma -no-flow -trace   (vestigial layer, event trace)
package main

import (
	"flag"
	"fmt"
	"os"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/sim"
)

func main() {
	pattern := flag.String("pattern", "pingpong", "pingpong | stream | hotspot | alltoall")
	nodes := flag.Int("nodes", 2, "cluster size (senders+1 for hotspot)")
	size := flag.Int("size", 128, "payload bytes per packet")
	packets := flag.Int("packets", 8192, "packets per sender (stream/hotspot)")
	rounds := flag.Int("rounds", 50, "ping-pong round trips")
	drain := flag.Int("drain", 0, "receiver DrainLimit (hotspot; 0 = unlimited)")
	baselineLCP := flag.Bool("baseline-lcp", false, "use the Figure 2(a) baseline LCP loop")
	sbusMode := flag.String("sbus", "hybrid", "hybrid | alldma")
	noFlow := flag.Bool("no-flow", false, "disable return-to-sender flow control")
	noBuf := flag.Bool("no-buf", false, "disable buffer-management costs (vestigial layer)")
	window := flag.Bool("window", false, "use sliding-window flow control instead of return-to-sender")
	interpret := flag.Bool("interpret", false, "add switch() packet interpretation in the LCP")
	trace := flag.Bool("trace", false, "dump the event trace to stderr")
	flag.Parse()

	cfg := core.DefaultConfig().WithFrame(*size)
	cfg.Streamed = !*baselineLCP
	cfg.Interpret = *interpret
	if *sbusMode == "alldma" {
		cfg.SBusMode = core.AllDMA
	} else if *sbusMode != "hybrid" {
		fmt.Fprintln(os.Stderr, "fmsim: -sbus must be hybrid or alldma")
		os.Exit(2)
	}
	if *noFlow {
		cfg.FlowControl = false
		cfg.PiggybackAcks = false
		cfg.RejectThreshold = 0
	}
	if *noBuf {
		cfg.BufferMgmt = false
	}
	if *window {
		cfg.Protocol = core.SlidingWindow
		cfg.RejectThreshold = 0
		cfg.HostRecvSlots = (*nodes)*cfg.WindowPerDest + 8
	}
	if *drain > 0 {
		cfg.DrainLimit = *drain
	}

	p := cost.Default()
	c := cluster.NewFM(*nodes, cfg, p)
	if *trace {
		c.K.EnableTrace(os.Stderr)
	}

	switch *pattern {
	case "pingpong":
		runPingPong(c, *size, *rounds)
	case "stream":
		runStream(c, *size, *packets)
	case "hotspot":
		runHotspot(c, *size, *packets)
	case "alltoall":
		runAllToAll(c, *size, *packets)
	default:
		fmt.Fprintf(os.Stderr, "fmsim: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	dumpStats(c)
}

func runPingPong(c *cluster.FM, size, rounds int) {
	pair := metrics.Pair{
		A:      c.EPs[0],
		B:      c.EPs[1],
		StartA: func(app func()) { c.CPUs[0].Start(app) },
		StartB: func(app func()) { c.CPUs[1].Start(app) },
		Run:    c.Run,
	}
	lat, err := metrics.PingPong(pair, size, rounds)
	fail(err)
	fmt.Printf("pingpong: %d rounds of %dB -> one-way latency %.2f us\n",
		rounds, size, lat.Microseconds())
}

func runStream(c *cluster.FM, size, packets int) {
	pair := metrics.Pair{
		A:      c.EPs[0],
		B:      c.EPs[1],
		StartA: func(app func()) { c.CPUs[0].Start(app) },
		StartB: func(app func()) { c.CPUs[1].Start(app) },
		Run:    c.Run,
	}
	elapsed, bw, err := metrics.Stream(pair, size, packets)
	fail(err)
	fmt.Printf("stream: %d x %dB in %v -> %.2f MB/s (%.2f us/packet)\n",
		packets, size, elapsed, bw, (elapsed / sim.Duration(packets)).Microseconds())
}

func runHotspot(c *cluster.FM, size, packets int) {
	senders := len(c.EPs) - 1
	total := senders * packets
	got := 0
	c.Start(0, func(ep *core.Endpoint) {
		ep.RegisterHandler(0, func(int, []byte) { got++ })
		for got < total {
			ep.WaitIncoming()
			ep.Extract()
		}
		ep.Extract()
	})
	for s := 1; s <= senders; s++ {
		c.Start(s, func(ep *core.Endpoint) {
			buf := make([]byte, size)
			for i := 0; i < packets; i++ {
				fail(ep.Send(0, 0, buf))
			}
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	fail(c.Run())
	elapsed := sim.Duration(c.K.Now())
	fmt.Printf("hotspot: %d senders x %d x %dB -> %.2f MB/s aggregate at the receiver\n",
		senders, packets, size, metrics.Bandwidth(size, total, elapsed))
}

func runAllToAll(c *cluster.FM, size, packets int) {
	n := len(c.EPs)
	per := packets / (n - 1)
	if per == 0 {
		per = 1
	}
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		c.Start(i, func(ep *core.Endpoint) {
			ep.RegisterHandler(0, func(int, []byte) { counts[i]++ })
			buf := make([]byte, size)
			for k := 0; k < per; k++ {
				for d := 1; d < n; d++ {
					fail(ep.Send((i+d)%n, 0, buf))
				}
				ep.Extract()
			}
			for counts[i] < per*(n-1) || ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	fail(c.Run())
	total := n * per * (n - 1)
	fmt.Printf("alltoall: %d nodes, %d x %dB each pairwise -> %d packets in %v\n",
		n, per, size, total, c.K.Now())
}

func dumpStats(c *cluster.FM) {
	fmt.Printf("\nvirtual time: %v   events: %d\n", c.K.Now(), c.K.EventsRun())
	fs := c.Fab.Stats()
	fmt.Printf("fabric: %d packets (%d data, %d ack, %d reject, %d retx), %d wire bytes\n",
		fs.Packets, fs.ByType[0], fs.ByType[1], fs.ByType[2], fs.ByType[3], fs.WireBytes)
	for i, ep := range c.EPs {
		st := ep.Stats()
		ds := c.Devs[i].Stats()
		bs := c.Buses[i].Stats()
		fmt.Printf("node %d: sent=%d delivered=%d acks(s/p)=%d/%d rejects(s/r)=%d/%d retx=%d | "+
			"lanai sent=%d recv=%d dma-batches=%d | sbus pio=%dB dma=%dB util=%.0f%%\n",
			i, st.Sent, st.Delivered, st.AcksSent, st.AcksPiggybacked,
			st.RejectsSent, st.RejectsReceived, st.Retransmits,
			ds.Sent, ds.Received, ds.HostDMABatches,
			bs.PIOBytes, bs.DMABytes, 100*c.Buses[i].Utilization())
		if h := ep.LatencyHistogram(); h.Count() > 0 {
			fmt.Printf("        delivery latency: %s\n", h.Summary())
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmsim: %v\n", err)
		os.Exit(1)
	}
}
