package bench

import (
	"fmt"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/myriapi"
)

// Layer-stack configurations in the order Table 4 lists them.

func cfgHybridVestigial() core.Config { return core.VestigialConfig(core.Hybrid) }
func cfgAllDMAVestigial() core.Config { return core.VestigialConfig(core.AllDMA) }

func cfgBufMgmt() core.Config {
	c := core.DefaultConfig()
	c.FlowControl = false
	c.PiggybackAcks = false
	c.RejectThreshold = 0
	return c
}

func cfgBufSwitch() core.Config {
	c := cfgBufMgmt()
	c.Interpret = true
	return c
}

func cfgFullFM() core.Config { return core.DefaultConfig() }

func cfgFullSwitch() core.Config {
	c := core.DefaultConfig()
	c.Interpret = true
	return c
}

// sbusWriteRef is the SBus write bandwidth the paper substitutes for the
// API's unmeasurable r_inf (footnote 3): 23.9 MB/s.
const sbusWriteRef = 23.9

// Fig3 regenerates Figure 3: LANai-to-LANai latency and bandwidth for
// the baseline and streamed LCP loops against the theoretical peak.
func Fig3(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "fig3", Title: "LANai to LANai Performance"}
	r.Curves = []Curve{
		lanaiCurve("Baseline", false, p, opt.Sizes, opt, true),
		lanaiCurve("Streamed", true, p, opt.Sizes, opt, true),
		theoreticalCurve(p, opt.Sizes),
	}
	r.Notes = append(r.Notes,
		"paper fits: baseline t0=4.2us n1/2=315B; streamed t0=3.5us n1/2=249B; both r_inf=76.3MB/s")
	return r
}

// Fig4 regenerates Figure 4: minimal host-to-host performance under the
// two SBus management architectures, with the streamed LANai-level curve
// as the reference.
func Fig4(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "fig4", Title: "Minimal host to host performance"}
	r.Curves = []Curve{
		hostCurve("Streamed + hybrid", fmMaker(cfgHybridVestigial(), p), opt.Sizes, opt, true, 0),
		hostCurve("Streamed + all DMA", fmMaker(cfgAllDMAVestigial(), p), opt.Sizes, opt, true, 0),
		lanaiCurve("Streamed", true, p, opt.Sizes, opt, true),
	}
	r.Notes = append(r.Notes,
		"paper fits: hybrid t0=3.5us r_inf=21.2 n1/2=44B; all-DMA t0=7.5us r_inf=33.0 n1/2=162B",
		"shape claim: hybrid wins short messages, all-DMA wins large; crossover a few hundred bytes")
	return r
}

// Fig7 regenerates Figure 7: the cost of buffer management and of
// simulated packet interpretation (switch()) in the LCP.
func Fig7(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "fig7", Title: "Host to Host performance with buffer management"}
	r.Curves = []Curve{
		hostCurve("Streamed + hybrid", fmMaker(cfgHybridVestigial(), p), opt.Sizes, opt, true, 0),
		hostCurve("Streamed + hybrid + buff. mgmt.", fmMaker(cfgBufMgmt(), p), opt.Sizes, opt, true, 0),
		hostCurve("Streamed + hybrid + buff. mgmt. + switch()", fmMaker(cfgBufSwitch(), p), opt.Sizes, opt, true, 0),
	}
	r.Notes = append(r.Notes,
		"paper fits: +buf t0=3.8us r_inf=21.9 n1/2=53B; +buf+switch t0=6.8us r_inf=21.8 n1/2=127B",
		"shape claim: buffer management costs little; LCP interpretation more than doubles n1/2")
	return r
}

// Fig8 regenerates Figure 8: adding return-to-sender flow control to the
// buffer-managed layer.
func Fig8(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "fig8", Title: "Fast Messages messaging layer performance"}
	r.Curves = []Curve{
		hostCurve("Streamed + hybrid + buff. mgmt.", fmMaker(cfgBufMgmt(), p), opt.Sizes, opt, true, 0),
		hostCurve("Streamed + hybrid + buff. mgmt. + flow ctrl.", fmMaker(cfgFullFM(), p), opt.Sizes, opt, true, 0),
	}
	r.Notes = append(r.Notes,
		"paper fits: full FM t0=4.1us r_inf=21.4 n1/2=54B — 'a negligible difference'")
	return r
}

// Fig9 regenerates Figure 9: FM against both Myrinet API interfaces. The
// API sweep extends beyond 600B to locate its n1/2 (thousands of bytes).
func Fig9(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "fig9", Title: "Fast Messages vs. Myricom's API"}
	r.Curves = []Curve{
		hostCurve("Fast Messages", fmMaker(cfgFullFM(), p), opt.Sizes, opt, true, 0),
		hostCurve("Myrinet API (myri_cmd_send_imm())", apiMaker(myriapi.SendImm, p), opt.APISizes, opt, true, sbusWriteRef),
		hostCurve("Myrinet API (myri_cmd_send())", apiMaker(myriapi.SendDMA, p), opt.APISizes, opt, true, sbusWriteRef),
	}
	r.Notes = append(r.Notes,
		"paper: API-imm t0=105us n1/2~4.4KB; API-DMA t0=121us n1/2~6.9KB; FM n1/2=54B",
		"API n1/2 is computed against the SBus write bandwidth (23.9 MB/s), per the paper's footnote 3")
	return r
}

// table4Paper holds the paper's Table 4 values for side-by-side output.
var table4Paper = map[string][3]string{
	"Baseline LCP (LANai only)":               {"4.2", "76.3", "315"},
	"Streamed LCP (LANai only)":               {"3.5", "76.3", "249"},
	"Streamed + hybrid":                       {"3.5", "21.2", "44"},
	"Streamed + hybrid + buf":                 {"3.8", "21.9", "53"},
	"Streamed + hybrid + buf + flow":          {"4.1", "21.4", "54"},
	"Streamed + hybrid + buf + switch":        {"6.8", "21.8", "127"},
	"Streamed + hybrid + buf + switch + flow": {"6.9", "21.7", "127"},
	"Streamed + all DMA":                      {"7.5", "33.0", "162"},
	"Myrinet API (myri_cmd_send_imm())":       {"105", "23.9", "~4.4K"},
	"Myrinet API (myri_cmd_send())":           {"121", "23.9", "~6.9K"},
}

// Table4 regenerates Table 4: t0, r_inf and n1/2 for every layer
// configuration.
func Table4(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "table4", Title: "Summary of FM 1.0 performance data"}

	type entry struct {
		name  string
		curve func() Curve
	}
	entries := []entry{
		{"Baseline LCP (LANai only)", func() Curve {
			return lanaiCurve("baseline", false, p, opt.Sizes, serial(opt), false)
		}},
		{"Streamed LCP (LANai only)", func() Curve {
			return lanaiCurve("streamed", true, p, opt.Sizes, serial(opt), false)
		}},
		{"Streamed + hybrid", func() Curve {
			return hostCurve("hybrid", fmMaker(cfgHybridVestigial(), p), opt.Sizes, serial(opt), false, 0)
		}},
		{"Streamed + hybrid + buf", func() Curve {
			return hostCurve("buf", fmMaker(cfgBufMgmt(), p), opt.Sizes, serial(opt), false, 0)
		}},
		{"Streamed + hybrid + buf + flow", func() Curve {
			return hostCurve("flow", fmMaker(cfgFullFM(), p), opt.Sizes, serial(opt), false, 0)
		}},
		{"Streamed + hybrid + buf + switch", func() Curve {
			return hostCurve("switch", fmMaker(cfgBufSwitch(), p), opt.Sizes, serial(opt), false, 0)
		}},
		{"Streamed + hybrid + buf + switch + flow", func() Curve {
			return hostCurve("switchflow", fmMaker(cfgFullSwitch(), p), opt.Sizes, serial(opt), false, 0)
		}},
		{"Streamed + all DMA", func() Curve {
			return hostCurve("alldma", fmMaker(cfgAllDMAVestigial(), p), opt.Sizes, serial(opt), false, 0)
		}},
		{"Myrinet API (myri_cmd_send_imm())", func() Curve {
			return hostCurve("apiimm", apiMaker(myriapi.SendImm, p), opt.APISizes, serial(opt), false, sbusWriteRef)
		}},
		{"Myrinet API (myri_cmd_send())", func() Curve {
			return hostCurve("apidma", apiMaker(myriapi.SendDMA, p), opt.APISizes, serial(opt), false, sbusWriteRef)
		}},
	}

	r.Rows = mapN(opt.Workers, len(entries), func(i int) Row {
		e := entries[i]
		c := e.curve()
		paper := table4Paper[e.name]
		return Row{
			Name:    e.name,
			T0us:    c.Fit.T0.Microseconds(),
			RInf:    c.Fit.RInf,
			NHalf:   c.Fit.NHalf,
			Extrap:  c.Fit.NHalfExtrapolated,
			PaperT0: paper[0],
			PaperR:  paper[1],
			PaperN:  paper[2],
		}
	})
	return r
}

// serial returns opt with harness parallelism disabled, for use inside an
// already-parallel job.
func serial(opt Options) Options {
	opt.Workers = 1
	return opt
}

// Headline regenerates the numbers Sections 1 and 5 quote for FM 1.0.
func Headline(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "headline", Title: "FM 1.0 headline numbers"}

	var lat16, lat128 float64
	var bwCurve Curve
	jobs := []func(){
		func() {
			lat, err := metrics.PingPong(fmMaker(cfgFullFM(), p)(16), 16, opt.Rounds)
			if err != nil {
				panic(err)
			}
			lat16 = lat.Microseconds()
		},
		func() {
			lat, err := metrics.PingPong(fmMaker(cfgFullFM(), p)(128), 128, opt.Rounds)
			if err != nil {
				panic(err)
			}
			lat128 = lat.Microseconds()
		},
		func() {
			bwCurve = hostCurve("FM", fmMaker(cfgFullFM(), p), opt.Sizes, serial(opt), false, 0)
		},
	}
	runParallel(opt.Workers, jobs)

	bw128 := metrics.Interp(bwCurve.BW, 128)
	bw512 := metrics.Interp(bwCurve.BW, 512)
	nh := bwCurve.Fit.NHalf
	bwAtNh := metrics.Interp(bwCurve.BW, int(nh+0.5))

	r.Curves = []Curve{bwCurve}
	r.KVs = []KV{
		{"one-way latency, 4-word message (us)", fmt.Sprintf("%.1f", lat16), "25"},
		{"one-way latency, 128B packet (us)", fmt.Sprintf("%.1f", lat128), "32"},
		{"bandwidth @ 128B (MB/s)", fmt.Sprintf("%.1f", bw128), "16.2"},
		{"bandwidth @ 512B (MB/s)", fmt.Sprintf("%.1f", bw512), "19.6"},
		{"n1/2 (bytes)", fmt.Sprintf("%.0f", nh), "54"},
		{"bandwidth @ n1/2 (MB/s)", fmt.Sprintf("%.1f", bwAtNh), "10.7"},
	}
	return r
}
