package myrinet

import (
	"testing"

	"fm/internal/cost"
	"fm/internal/sim"
)

func TestClosHopCounts(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	// 2 spines, 2 leaves, 2 nodes per leaf: nodes 0,1 | 2,3.
	f := NewClos(k, p, 2, 2, 2, 8)
	if f.Nodes() != 4 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	if f.NumSwitches() != 4 {
		t.Fatalf("switches = %d", f.NumSwitches())
	}
	if got := f.Hops(0, 1); got != 1 {
		t.Errorf("same-leaf hops = %d, want 1", got)
	}
	if got := f.Hops(0, 3); got != 3 {
		t.Errorf("cross-leaf hops = %d, want 3 (leaf, spine, leaf)", got)
	}
}

func TestClosDeliveryTimingMatchesMinLatency(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	f := NewClos(k, p, 2, 2, 2, 8)
	var got []*Packet
	var at []sim.Time
	for i := 0; i < f.Nodes(); i++ {
		f.Attach(i, collector(&got, &at, k))
	}
	// 64B payload + 16B header = 80 wire bytes = 1000 ns on the link.
	pkt := &Packet{Src: 0, Dst: 3, Type: Data, Payload: make([]byte, 64), HeaderBytes: 16}
	k.At(0, func() { f.Inject(pkt) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(3*sim.Ns(550) + sim.Ns(1000))
	if len(at) != 1 || at[0] != want {
		t.Errorf("cross-leaf delivery at %v, want %v", at, want)
	}
	if f.MinLatency(0, 3, 80) != sim.Duration(want) {
		t.Errorf("MinLatency = %v, want %v", f.MinLatency(0, 3, 80), want)
	}
}

// Spine selection is destination-deterministic: two destinations on the
// same remote leaf ride different spines, and rebuilding the fabric
// yields identical routes.
func TestClosSpineSpreadingDeterministic(t *testing.T) {
	build := func() (*Fabric, *sim.Kernel) {
		k := sim.NewKernel()
		return NewClos(k, cost.Default(), 2, 2, 2, 8), k
	}
	f, _ := build()
	s2 := f.Route(0, 2)[1] // middle hop = spine
	s3 := f.Route(0, 3)[1]
	if s2 == s3 {
		t.Errorf("destinations 2 and 3 both routed via the same spine")
	}
	f2, _ := build()
	if f2.Route(0, 2)[1].name != s2.name || f2.Route(0, 3)[1].name != s3.name {
		t.Error("spine selection differs across identical constructions")
	}
}

// Two same-leaf senders whose destinations ride different spines do not
// contend anywhere: both arrive at the contention-free minimum.
func TestClosDisjointSpinePathsDoNotSerialize(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	f := NewClos(k, p, 2, 2, 2, 8)
	var got []*Packet
	var at []sim.Time
	for i := 0; i < f.Nodes(); i++ {
		f.Attach(i, collector(&got, &at, k))
	}
	mk := func(src, dst int) *Packet {
		return &Packet{Src: src, Dst: dst, Type: Data, Payload: make([]byte, 64), HeaderBytes: 16}
	}
	k.At(0, func() {
		f.Inject(mk(0, 2)) // via spine0
		f.Inject(mk(1, 3)) // via spine1
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(f.MinLatency(0, 2, 80))
	if len(at) != 2 || at[0] != want || at[1] != want {
		t.Errorf("deliveries at %v, want both at %v", at, want)
	}
}

// Two packets converging on the same spine downlink serialize FIFO.
func TestClosSharedSpineSerializes(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	f := NewClos(k, p, 2, 2, 2, 8)
	var got []*Packet
	var at []sim.Time
	for i := 0; i < f.Nodes(); i++ {
		f.Attach(i, collector(&got, &at, k))
	}
	mk := func(src, dst int) *Packet {
		return &Packet{Src: src, Dst: dst, Type: Data, Payload: make([]byte, 64), HeaderBytes: 16}
	}
	// Both routes end at leaf1 port 0 via spine0: the second worm queues.
	k.At(0, func() {
		f.Inject(mk(0, 2))
		f.Inject(mk(1, 2))
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	wire := sim.Duration(80) * p.LinkByte
	first := sim.Time(f.MinLatency(0, 2, 80))
	second := first.Add(wire)
	if len(at) != 2 || at[0] != first || at[1] != second {
		t.Errorf("deliveries at %v, want %v then %v", at, first, second)
	}
}

// A shared trunk on the line fabric serializes the same way.
func TestLineTrunkContentionSerializes(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	f := NewLine(k, p, 2, 2, 8) // nodes 0,1 | 2,3
	var got []*Packet
	var at []sim.Time
	for i := 0; i < f.Nodes(); i++ {
		f.Attach(i, collector(&got, &at, k))
	}
	mk := func(src, dst int) *Packet {
		return &Packet{Src: src, Dst: dst, Type: Data, Payload: make([]byte, 64), HeaderBytes: 16}
	}
	// 0->2 and 1->3 share only the sw0->sw1 trunk; the second is delayed
	// by one wire time there and nowhere else.
	k.At(0, func() {
		f.Inject(mk(0, 2))
		f.Inject(mk(1, 3))
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	wire := sim.Duration(80) * p.LinkByte
	first := sim.Time(f.MinLatency(0, 2, 80))
	if len(at) != 2 || at[0] != first || at[1] != first.Add(wire) {
		t.Errorf("deliveries at %v, want %v then %v", at, first, first.Add(wire))
	}
}

func TestClos64NodeFullyRouted(t *testing.T) {
	k := sim.NewKernel()
	// 8 spines, 8 leaves, 8 nodes per leaf = 64 nodes on 16-port switches.
	f := NewClos(k, cost.Default(), 8, 8, 8, 16)
	if f.Nodes() != 64 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	if f.NumSwitches() != 16 {
		t.Fatalf("switches = %d", f.NumSwitches())
	}
	spines := map[*Switch]bool{}
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			want := 1
			if s/8 != d/8 {
				want = 3
			}
			if got := f.Hops(s, d); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want %d", s, d, got, want)
			}
			if want == 3 {
				spines[f.Route(s, d)[1]] = true
			}
		}
	}
	if len(spines) != 8 {
		t.Errorf("cross-leaf traffic uses %d of 8 spines", len(spines))
	}
}

func TestClosPortExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic: 8 nodes + 2 spines exceed 8 ports")
		}
	}()
	NewClos(sim.NewKernel(), cost.Default(), 2, 2, 8, 8)
}

func TestTopologyValidate(t *testing.T) {
	// Output port claimed by both a node and a link.
	tp := NewTopology()
	a := tp.AddSwitch("a", 4)
	b := tp.AddSwitch("b", 4)
	tp.AttachNode(a, 0)
	tp.Link(a, 0, b)
	if err := tp.Validate(); err == nil {
		t.Error("double-claimed port not rejected")
	}

	// Port out of range.
	tp2 := NewTopology()
	s := tp2.AddSwitch("s", 2)
	tp2.AttachNode(s, 5)
	if err := tp2.Validate(); err == nil {
		t.Error("out-of-range port not rejected")
	}

	// A valid two-switch topology passes.
	tp3 := NewTopology()
	x := tp3.AddSwitch("x", 4)
	y := tp3.AddSwitch("y", 4)
	tp3.AttachNode(x, 0)
	tp3.AttachNode(y, 0)
	tp3.Link(x, 1, y)
	tp3.Link(y, 1, x)
	if err := tp3.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestDisconnectedTopologyPanics(t *testing.T) {
	tp := NewTopology()
	a := tp.AddSwitch("a", 4)
	b := tp.AddSwitch("b", 4)
	tp.AttachNode(a, 0)
	tp.AttachNode(b, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unroutable pair")
		}
	}()
	NewFabric(sim.NewKernel(), cost.Default(), tp)
}
