// Command fmbench regenerates the paper's evaluation: every quantitative
// figure (3, 4, 7, 8, 9), Table 4, the headline numbers, the
// design-choice ablations, and the beyond-the-paper experiments — the
// fabric-scaling comparison (crossbar vs. line vs. Clos) and the
// MPI-on-FM cost-of-layering comparison.
//
// Usage:
//
//	fmbench [-experiment all|fig3|fig4|fig7|fig8|fig9|table4|headline|ablations|fabrics|mpi|patterns|scale|faults|soak]
//	        [-paper-exact] [-packets N] [-rounds N] [-workers N] [-shards N]
//	        [-fabric-nodes N] [-pattern-nodes N] [-scale-nodes LIST]
//	        [-scale-pattern all-to-all|neighbor]
//	        [-fault-seed N] [-fault-plan PLAN] [-fault-nodes N]
//	        [-soak-source poisson|fixed] [-soak-pattern NAME] [-soak-nodes N]
//	        [-soak-loads LIST] [-soak-horizon-us N] [-soak-window-us N]
//	        [-soak-seed N] [-soak-drain]
//	        [-csv DIR] [-list] [-timing]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// Output is aligned text on stdout; -csv additionally writes one CSV per
// curve (and per table) for plotting. -paper-exact uses the paper's
// measurement lengths (65,535 packets per bandwidth point) instead of
// the faster default. Independent measurements fan out over a worker
// pool (-workers, default one per CPU); results are identical at any
// worker count.
//
// -shards splits each individual simulation across N shard kernels
// (conservative parallel DES, one leaf-group block per shard; DESIGN.md
// "Parallel engine"). -shards 1, the default, is the single kernel and
// its output is byte-identical to builds predating the sharded engine;
// any fixed -shards value is deterministic at every -workers count.
// Only the scale and faults experiments' 2-level Clos fabrics
// partition, so -shards > 1 is validated against every selected
// experiment before anything runs, and the rejection names what the
// fabric supports.
//
// The faults experiment (extended; run by id) injects component
// outages and loss/corruption bursts mid-traffic and reports what the
// FM reliability layer does about them. -fault-seed derives the whole
// plan deterministically (0 = inject nothing); -fault-plan gives an
// explicit plan instead, as "kind index startUs endUs" events joined
// by semicolons with kind one of link, switch, node, loss, corrupt
// (e.g. "switch 9 100 200; loss 35 74 147"); -fault-nodes sizes its
// Clos fabric (default 32). A bad plan is rejected, with the reason,
// before anything runs. The report is byte-identical at any -workers
// and -shards setting (DESIGN.md "Fault model").
//
// The soak experiment (extended; run by id) streams open-loop traffic
// through the full FM stack and reports a windowed time series per
// offered-load point: throughput, sojourn p50/p99/p999, in-flight
// backlog, and retransmits per fixed-width virtual-time window, with
// the saturation knee visible across the ladder. -soak-source picks
// the arrival process (seeded poisson or phase-staggered fixed rate),
// -soak-pattern the destination structure, -soak-loads the ladder in
// MB/s per node, -soak-horizon-us/-soak-window-us the observation
// geometry, and -soak-drain extends the reported timeline through
// quiescence instead of clipping at the horizon. An explicit
// -fault-plan is overlaid on every load point so recovery transients
// show up in the windows. Every -soak-* combination is validated
// before anything runs, and a -soak-* flag without the soak experiment
// selected is rejected outright. The timeline is computed on the
// canonical single-kernel engine, so soak output is byte-identical at
// any -workers and -shards setting.
//
// -timing appends a wall-clock line and a memory line (Go heap high
// water plus peak RSS where /proc exposes it) per experiment (off by
// default, so default outputs stay byte-identical run to run);
// -scale-nodes caps or extends the scale sweep (comma-separated node
// counts) and -scale-pattern switches its raw and FM legs between
// all-to-all (default, byte-identical to prior releases) and the
// linear-volume neighbor pattern that makes 16k+ points quick; both
// are validated against the Clos geometry checks before the first
// sweep point runs. -cpuprofile/-memprofile write pprof profiles of
// the run for hot-path work on the simulator itself.
//
// -list prints every registered experiment id with its one-line
// description and exits. `-experiment all` runs the paper set;
// long-running extended experiments (scale: Clos sweeps to 4096 nodes
// through the full FM stack, ~30 minutes at the default node list)
// run only when named explicitly. An unknown experiment id is
// rejected, with the valid ids listed, before anything runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fm/internal/bench"
)

// main defers to run so error exits still flush a -cpuprofile in
// progress (os.Exit would skip the deferred StopCPUProfile).
func main() {
	os.Exit(run())
}

// memLine summarizes the process footprint for the -timing trailer:
// the Go heap's high-water reservation (HeapSys is what the runtime
// has taken from the OS for heap spans — a stable high-water figure,
// unlike the GC-cyclic HeapAlloc) and the kernel's peak-RSS reading.
// Cumulative across experiments, like peak RSS inherently is; for a
// per-experiment ceiling, run that experiment alone. Never part of
// default output, so byte-identity is unaffected.
func memLine() string {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	line := fmt.Sprintf("%8.1f MB Go heap sys", float64(ms.HeapSys)/(1<<20))
	if kb, ok := peakRSSKB(); ok {
		line += fmt.Sprintf(", %.1f MB peak RSS", float64(kb)/1024)
	}
	return line
}

// peakRSSKB reads the process's high-water resident set from
// /proc/self/status (VmHWM). Absent on non-Linux hosts; the caller
// just omits the figure.
func peakRSSKB() (int64, bool) {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb, true
	}
	return 0, false
}

func run() int {
	exp := flag.String("experiment", "all", "comma-separated experiment ids (all, "+strings.Join(bench.IDs(), ", ")+")")
	paperExact := flag.Bool("paper-exact", false, "use the paper's measurement lengths (65,535 packets per point)")
	packets := flag.Int("packets", 0, "override packets per bandwidth point")
	rounds := flag.Int("rounds", 0, "override ping-pong rounds per latency point")
	workers := flag.Int("workers", 0, "override harness parallelism (default: one per CPU)")
	shards := flag.Int("shards", 1, "shard kernels per simulation (scale experiment only; 1 = single kernel)")
	fabricNodes := flag.Int("fabric-nodes", 0, "override node count for the fabrics experiment (default 64)")
	patternNodes := flag.Int("pattern-nodes", 0, "override node count for the patterns experiment (default 32)")
	scaleNodes := flag.String("scale-nodes", "", "override the scale sweep's node counts (comma-separated, e.g. 64,256,1024)")
	scalePattern := flag.String("scale-pattern", "", "traffic pattern for the scale sweep's raw and FM legs (all-to-all or neighbor; default all-to-all)")
	faultSeed := flag.Uint64("fault-seed", 1995, "the faults experiment's plan seed (0 = empty plan, inject nothing)")
	faultPlan := flag.String("fault-plan", "", "explicit fault plan for the faults experiment (\"kind index startUs endUs; ...\"), overrides -fault-seed; the soak experiment overlays it on every load point")
	faultNodes := flag.Int("fault-nodes", 0, "override node count for the faults experiment (default 32)")
	soakSource := flag.String("soak-source", "poisson", "the soak experiment's arrival process (poisson or fixed)")
	soakPattern := flag.String("soak-pattern", "uniform-random", "base traffic pattern the soak source cycles through")
	soakNodes := flag.Int("soak-nodes", 0, "override node count for the soak experiment's Clos (default 64)")
	soakLoads := flag.String("soak-loads", "", "override the soak offered-load ladder, MB/s per node (comma-separated, e.g. 8,16,24)")
	soakHorizon := flag.Int("soak-horizon-us", 0, "override the soak arrival horizon in virtual microseconds (default 1500)")
	soakWindow := flag.Int("soak-window-us", 0, "override the soak series window width in virtual microseconds (default 150)")
	soakSeed := flag.Uint64("soak-seed", 1995, "seed for the soak experiment's Poisson arrival streams")
	soakDrain := flag.Bool("soak-drain", false, "report the soak timeline through quiescence instead of clipping at the horizon")
	csvDir := flag.String("csv", "", "also write CSV series into this directory")
	list := flag.Bool("list", false, "list every experiment id with its description and exit")
	timing := flag.Bool("timing", false, "print wall-clock time per experiment (off by default: outputs stay byte-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %s\n", "all", "the paper set: every experiment below except the extended ones")
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n%-10s   %s\n", e.ID, e.Title, "", e.Desc)
		}
		for _, e := range bench.Extended() {
			fmt.Printf("%-10s %s (extended: not part of `all`)\n%-10s   %s\n", e.ID, e.Title, "", e.Desc)
		}
		return 0
	}

	opt := bench.DefaultOptions()
	if *paperExact {
		opt = bench.PaperExact()
	}
	if *packets > 0 {
		opt.Packets = *packets
	}
	if *rounds > 0 {
		opt.Rounds = *rounds
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	if *fabricNodes > 0 {
		opt.FabricNodes = *fabricNodes
	}
	if *patternNodes > 0 {
		opt.PatternNodes = *patternNodes
	}
	if *scaleNodes != "" {
		var nodes []int
		for _, f := range strings.Split(*scaleNodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "fmbench: bad -scale-nodes entry %q\n", f)
				return 2
			}
			nodes = append(nodes, n)
		}
		opt.ScaleNodes = nodes
	}
	if *scalePattern != "" {
		opt.ScalePattern = *scalePattern
	}
	opt.FaultSeed = *faultSeed
	opt.FaultPlan = *faultPlan
	if *faultNodes > 0 {
		opt.FaultNodes = *faultNodes
	}
	opt.SoakSource = *soakSource
	opt.SoakPattern = *soakPattern
	opt.SoakSeed = *soakSeed
	opt.SoakDrain = *soakDrain
	if *soakNodes > 0 {
		opt.SoakNodes = *soakNodes
	}
	if *soakHorizon > 0 {
		opt.SoakHorizonUs = *soakHorizon
	}
	if *soakWindow > 0 {
		opt.SoakWindowUs = *soakWindow
	}
	if *soakLoads != "" {
		var loads []float64
		for _, f := range strings.Split(*soakLoads, ",") {
			l, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || l <= 0 {
				fmt.Fprintf(os.Stderr, "fmbench: bad -soak-loads entry %q (want positive MB/s per node)\n", f)
				return 2
			}
			loads = append(loads, l)
		}
		opt.SoakLoads = loads
	}

	// Validate every requested id before running anything: a typo in a
	// list must not cost a partial (and possibly long) run. "all" may
	// appear anywhere in the list and expands to the paper set (so
	// `-experiment all,scale` appends the extended sweep); repeated ids
	// run once.
	var run []bench.Experiment
	seen := map[string]bool{}
	add := func(e bench.Experiment) {
		if !seen[e.ID] {
			seen[e.ID] = true
			run = append(run, e)
		}
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(id)
		if id == "all" {
			for _, e := range bench.All() {
				add(e)
			}
			continue
		}
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "fmbench: unknown experiment %q\nvalid ids: all, %s\n",
				id, strings.Join(bench.IDs(), ", "))
			return 2
		}
		add(e)
	}

	// A -soak-* flag given explicitly while the soak experiment is not
	// selected is a mistake, not a no-op: reject it before anything runs.
	soakFlagged := ""
	flag.Visit(func(f *flag.Flag) {
		if soakFlagged == "" && strings.HasPrefix(f.Name, "soak-") {
			soakFlagged = f.Name
		}
	})
	if soakFlagged != "" && !seen["soak"] {
		fmt.Fprintf(os.Stderr, "fmbench: -%s is set but the soak experiment is not selected (add soak to -experiment)\n", soakFlagged)
		return 2
	}
	// Validate the soak configuration (source/pattern names, load
	// ladder, horizon/window geometry, overlaid fault plan) before
	// anything runs, like every other flag.
	if seen["soak"] {
		if err := bench.ValidateSoak(opt); err != nil {
			fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
			return 2
		}
	}
	// Validate the scale sweep (pattern name, every -scale-nodes entry's
	// derived Clos geometry) before anything runs: a bad point at the
	// end of the list must not cost the hours-long points before it.
	if seen["scale"] {
		if err := bench.ValidateScale(opt); err != nil {
			fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
			return 2
		}
	}
	// Validate the fault plan (text shape, component indices, window
	// sanity against the chosen fabric) the same way. When only the soak
	// experiment consumes the plan, ValidateSoak above has already
	// compiled it against the soak fabric and horizon — skipping the
	// faults-experiment check there keeps plans with windows past the
	// faults horizon usable for long soaks.
	if seen["faults"] || !seen["soak"] {
		if err := bench.ValidateFaults(opt); err != nil {
			fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
			return 2
		}
	}

	// Validate -shards the same way: against every selected experiment,
	// before anything runs. The bound comes from the topology
	// partitioner (one shard per leaf group of a two-level Clos), so the
	// message can say exactly what the chosen fabrics support.
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "fmbench: -shards %d: shard count must be at least 1\n", *shards)
		return 2
	}
	if *shards > 1 {
		for _, e := range run {
			if limit, detail := bench.ShardSupport(e.ID, opt); *shards > limit {
				fmt.Fprintf(os.Stderr, "fmbench: -shards %d: experiment %q supports -shards 1..%d: %s\n",
					*shards, e.ID, limit, detail)
				return 2
			}
		}
	}
	opt.Shards = *shards
	opt.ShardTiming = *timing

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Deferred so an error exit after a long run still captures the
		// heap profile, matching the CPU profile's flush-on-exit.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
			}
			_ = f.Close()
		}()
	}

	for _, e := range run {
		start := time.Now()
		report := e.Run(opt)
		elapsed := time.Since(start)
		report.WriteText(os.Stdout)
		if *timing {
			fmt.Printf("timing: %-10s %8.2fs wall\n", e.ID, elapsed.Seconds())
			fmt.Printf("memory: %-10s %s\n\n", e.ID, memLine())
		}
		if *csvDir != "" {
			if err := report.WriteCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "fmbench: writing CSV: %v\n", err)
				return 1
			}
		}
	}

	return 0
}
