// Command fmbench regenerates the paper's evaluation: every quantitative
// figure (3, 4, 7, 8, 9), Table 4, the headline numbers, and the
// design-choice ablations.
//
// Usage:
//
//	fmbench [-experiment all|fig3|fig4|fig7|fig8|fig9|table4|headline|ablations]
//	        [-paper-exact] [-packets N] [-rounds N] [-workers N] [-csv DIR]
//
// Output is aligned text on stdout; -csv additionally writes one CSV per
// curve for plotting. -paper-exact uses the paper's measurement lengths
// (65,535 packets per bandwidth point) instead of the faster default.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fm/internal/bench"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (all, fig3, fig4, fig7, fig8, fig9, table4, headline, ablations)")
	paperExact := flag.Bool("paper-exact", false, "use the paper's measurement lengths (65,535 packets per point)")
	packets := flag.Int("packets", 0, "override packets per bandwidth point")
	rounds := flag.Int("rounds", 0, "override ping-pong rounds per latency point")
	workers := flag.Int("workers", 0, "override harness parallelism")
	csvDir := flag.String("csv", "", "also write CSV series into this directory")
	flag.Parse()

	opt := bench.DefaultOptions()
	if *paperExact {
		opt = bench.PaperExact()
	}
	if *packets > 0 {
		opt.Packets = *packets
	}
	if *rounds > 0 {
		opt.Rounds = *rounds
	}
	if *workers > 0 {
		opt.Workers = *workers
	}

	var run []bench.Experiment
	if *exp == "all" {
		run = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "fmbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			run = append(run, e)
		}
	}

	for _, e := range run {
		report := e.Run(opt)
		report.WriteText(os.Stdout)
		if *csvDir != "" {
			if err := report.WriteCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "fmbench: writing CSV: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
