package bench

import (
	"fmt"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/workload"
)

// The resilience experiment: inject a seeded fault plan — link and
// switch outages, node-interface churn, loss and corruption bursts —
// into a 2-level Clos mid-traffic and measure what the FM reliability
// layer does about it: degraded-mode bisection bandwidth, retransmit
// counts, and recovery time. The fault drivers panic if any message
// goes undelivered, duplicated, or stranded, so a report existing at
// all is the delivery proof.
//
// Everything printed is invariant across -workers and -shards: fault
// toggles replay at identical virtual instants on every shard replica,
// and the report sticks to counters and the bisection completion times,
// which the determinism pin (faults_test.go) holds byte-identical from
// 1 through 8 shards. The faulted all-to-all's completion instant and
// latency percentiles are the one place shard count can legitimately
// show (contention under recovery resolves in merged head-arrival
// order; DESIGN.md "Parallel engine"), so those stay out of the report.

// faultHorizonUs bounds the fault plan: every window must close by this
// virtual instant, so every strand is released and the run terminates.
// Random plans draw their windows inside the middle of the horizon,
// which sits inside the traffic for every fabric size the experiment
// accepts.
const faultHorizonUs = 400

// faultTimeline resolves the experiment's fault plan from the options:
// a hand-written -fault-plan if given, the empty plan for -fault-seed 0
// (the clean baseline), and the seeded random plan otherwise. Also
// returns the (adjusted) node count and the compiled fabric timeline.
func faultTimeline(opt Options) (workload.FaultPlan, []myrinet.FaultWindow, int, error) {
	n := opt.FaultNodes
	if n == 0 {
		n = DefaultOptions().FaultNodes
	}
	if n < 8 {
		n = 8
	}
	n = workload.AdjustNodes(workload.Bisection{}, n)
	topo := workload.ClosSpec(n).Build(sim.NewKernel(), cost.Default()).Topology()

	var plan workload.FaultPlan
	switch {
	case opt.FaultPlan != "":
		var err error
		if plan, err = workload.ParseFaultPlan(opt.FaultPlan); err != nil {
			return plan, nil, n, err
		}
	case opt.FaultSeed != 0:
		plan = workload.RandomFaultPlan(opt.FaultSeed, topo, 5, faultHorizonUs)
	}
	ws, err := plan.Windows(topo, faultHorizonUs)
	return plan, ws, n, err
}

// ValidateFaults checks the options' fault plan against the fabric it
// would run on, so fmbench can reject a bad -fault-plan before any
// experiment runs.
func ValidateFaults(opt Options) error {
	_, _, _, err := faultTimeline(opt)
	return err
}

// Faults regenerates the resilience report on a clos-FaultNodes fabric
// (default 32): the all-to-all delivery proof under the plan, clean vs.
// degraded bisection bandwidth, and the recovery time.
func Faults(opt Options) *Report {
	p := cost.Default()
	cfg := core.DefaultConfig()
	plan, ws, n, err := faultTimeline(opt)
	if err != nil {
		panic(fmt.Sprintf("bench: faults: %v", err))
	}
	const size = 112 // 112B payload + 16B header = the paper's 128B frame
	spec := workload.ClosSpec(n)
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	r := &Report{ID: "faults", Title: fmt.Sprintf("Resilience under injected faults on clos-%d", n)}

	// Three independent deterministic runs: the all-to-all under the
	// plan (the delivery and retransmit measurement), and the bisection
	// pair (clean vs. degraded) for bandwidth and recovery time.
	var a2a, bis, degBis workload.FaultResult
	runParallel(opt.Workers, []func(){
		func() {
			a2a = workload.DriveFMFaultsSharded(spec, cfg, p, workload.AllToAll{Rounds: 1}, size, ws, shards)
		},
		func() {
			bis = workload.DriveFMFaultsSharded(spec, cfg, p, workload.Bisection{Packets: 32}, size, nil, shards)
		},
		func() {
			degBis = workload.DriveFMFaultsSharded(spec, cfg, p, workload.Bisection{Packets: 32}, size, ws, shards)
		},
	})

	us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
	bisBW := metrics.Bandwidth(size, bis.Messages, bis.Elapsed)
	degBW := metrics.Bandwidth(size, degBis.Messages, degBis.Elapsed)
	recovery := us(degBis.Elapsed) - us(bis.Elapsed)
	if recovery < 0 {
		recovery = 0
	}
	fs := a2a.Fault // per-run toggle counters; the bisection replay of the same plan would double-count
	r.KVs = append(r.KVs,
		KV{"fault events injected", fmt.Sprintf("%d", len(plan.Events)), "-"},
		KV{"component downs (link/switch/node)", fmt.Sprintf("%d/%d/%d", fs.LinkDowns, fs.SwitchDowns, fs.NodeDowns), "-"},
		KV{"recoveries", fmt.Sprintf("%d", fs.Recoveries), "all downs"},
		KV{"all-to-all delivered under faults", fmt.Sprintf("%d/%d", a2a.Stats.Delivered, a2a.Messages), "100%"},
		KV{"all-to-all retransmits", fmt.Sprintf("%d", a2a.Stats.Retransmits), "-"},
		KV{"fabric bounces (a2a / bisection)", fmt.Sprintf("%d/%d", a2a.Fault.Bounced, degBis.Fault.Bounced), "-"},
		KV{"frames lost / corrupted (a2a)", fmt.Sprintf("%d/%d", a2a.Fault.Lost, a2a.Fault.Corrupted), "-"},
		KV{"clean bisection completion (us)", fmt.Sprintf("%.1f", us(bis.Elapsed)), "-"},
		KV{"clean bisection BW (MB/s)", fmt.Sprintf("%.0f", bisBW), "-"},
		KV{"degraded bisection completion (us)", fmt.Sprintf("%.1f", us(degBis.Elapsed)), "-"},
		KV{"degraded bisection BW (MB/s)", fmt.Sprintf("%.0f", degBW), "-"},
		KV{"degraded/clean bisection BW", fmt.Sprintf("%.1f%%", 100*degBW/bisBW), "-"},
		KV{"recovery time (us)", fmt.Sprintf("%.1f", recovery), "-"},
	)

	if !plan.Empty() {
		tab := Table{Name: "fault plan", Header: []string{"kind", "component", "start (us)", "end (us)"}}
		for _, e := range plan.Events {
			tab.Rows = append(tab.Rows, []string{e.Kind.String(), fmt.Sprintf("%d", e.Index),
				fmt.Sprintf("%d", e.StartUs), fmt.Sprintf("%d", e.EndUs)})
		}
		r.Tables = append(r.Tables, tab)
	}

	switch {
	case opt.FaultPlan != "":
		r.Notes = append(r.Notes, "hand-written fault plan (-fault-plan): "+plan.String())
	case plan.Empty():
		r.Notes = append(r.Notes, "empty fault plan (-fault-seed 0): clean baseline, nothing injected")
	default:
		r.Notes = append(r.Notes, fmt.Sprintf("fault plan derived from -fault-seed %d (5 events over a %dus horizon): %s",
			plan.Seed, int64(faultHorizonUs), plan))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("routing notices a component change only %v after the wire (mapper detection lag); frames caught on a dead hop bounce back to their sender as fabric rejects and re-enter via the FM retransmit path (DESIGN.md \"Fault model\")", myrinet.DetectLag),
		"the drivers panic on any undelivered, duplicated, or stranded message, so this report existing is the exactly-once delivery proof",
		"recovery time is the extra completion time of the degraded bisection run over the clean one",
		"deterministic: the report is byte-identical at any -workers and -shards setting — fault toggles replay identically on every shard replica, and only shard-invariant quantities are printed",
	)
	return r
}
