package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// The sweep engine. Every measurement in this package is an isolated
// simulation — it builds its own sim.Kernel and cluster, so independent
// measurements are embarrassingly parallel even though each kernel is
// strictly single-goroutine. The engine fans jobs out over a bounded
// worker pool (runtime.NumCPU() workers by default) and guarantees the
// parallel schedule is invisible in the results: jobs write disjoint
// result slots, and a panicking job is captured and re-raised on the
// caller's goroutine — the lowest-indexed failure wins, so the reported
// error does not depend on worker interleaving.

// runParallel executes the jobs over a bounded worker pool and returns
// when all have finished. Jobs must write into disjoint result slots. If
// any job panics, the panic from the lowest-indexed failing job is
// re-raised on the caller's goroutine after the pool drains.
func runParallel(workers int, jobs []func()) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	type failure struct {
		val   any
		stack []byte
	}
	panics := make([]*failure, len(jobs))
	type task struct {
		idx int
		fn  func()
	}
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[t.idx] = &failure{val: r, stack: debug.Stack()}
						}
					}()
					t.fn()
				}()
			}
		}()
	}
	for i, j := range jobs {
		ch <- task{idx: i, fn: j}
	}
	close(ch)
	wg.Wait()
	for i, f := range panics {
		if f != nil {
			panic(fmt.Sprintf("bench: job %d: %v\nworker stack:\n%s", i, f.val, f.stack))
		}
	}
}

// mapN runs fn(0..n-1) over the pool and collects the results in index
// order, independent of execution order.
func mapN[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	jobs := make([]func(), n)
	for i := range jobs {
		i := i
		jobs[i] = func() { out[i] = fn(i) }
	}
	runParallel(workers, jobs)
	return out
}

// defaultWorkers sizes the pool to the schedulable parallelism
// (GOMAXPROCS honors cgroup quotas and user overrides; NumCPU would
// oversubscribe a limited container with memory-hungry idle kernels).
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
