package sim

import "fmt"

// stopSentinel is panicked inside a process goroutine when the kernel is
// tearing down, so that blocked processes unwind their stacks and exit.
type stopSentinel struct{}

// procFailure wraps a panic raised on a process goroutine so the kernel
// can surface it from Run instead of deadlocking. driving distinguishes
// a panic in the process's own code from one raised by an event
// callback the process happened to be executing as the event-loop
// driver (see block) — the latter is not the process's fault.
type procFailure struct {
	proc    string
	val     any
	driving bool
}

func (f procFailure) Error() string {
	if f.driving {
		return fmt.Sprintf("sim: event callback panicked (while process %q drove the event loop): %v", f.proc, f.val)
	}
	return fmt.Sprintf("sim: process %q panicked: %v", f.proc, f.val)
}

// Proc is a simulated process: a goroutine that advances virtual time by
// blocking on kernel primitives. All Proc methods must be called from
// within the process's own function.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}

	// driving is true while this process's goroutine is inside the
	// kernel's drive loop (executing other components' events); it
	// attributes an escaping event-callback panic to the callback
	// rather than the process.
	driving bool

	// dead marks a process whose goroutine has finished (normally or by
	// panic). Teardown must never rendezvous with a dead process: its
	// goroutine no longer receives, so the handoff would hang. A live
	// run never wakes a dead process (wake events are consumed by the
	// block that scheduled them), but a process that fails while driving
	// can leave stale wake state behind for teardown to encounter.
	dead bool

	// wreg is the reusable wait registration for plain (untimed) signal
	// waits. A process blocks on at most one signal at a time, and a
	// plain wait's registration leaves the signal's waiter list exactly
	// when the process is woken, so one embedded registration per process
	// suffices — Wait allocates nothing. Timed waits (WaitTimeout) use a
	// fresh registration because their timer event can outlive the wait.
	wreg waitReg
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process running fn, starting at the current virtual
// time (after already-queued events at this instant).
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	k.nextProc++
	p := &Proc{k: k, id: k.nextProc, name: name, resume: make(chan struct{})}
	k.procs++
	go func() {
		<-p.resume
		sentinel := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, isStop := r.(stopSentinel); isStop {
						sentinel = true
					} else {
						k.fail(procFailure{proc: name, val: r, driving: p.driving})
					}
				}
			}()
			fn(p)
		}()
		k.procs--
		p.dead = true
		// A panic that unwound through a blocking primitive (possibly
		// while this goroutine was driving another component's event)
		// can leave the process still registered as parked; teardown
		// must not try to resume it.
		delete(k.parked, p)
		if sentinel || k.stopped {
			// Teardown: hand control back to the teardown rendezvous.
			k.yield <- struct{}{}
			return
		}
		// The process finished while holding the baton: keep driving the
		// run from this goroutine, then exit once the baton is handed on
		// (to the next process, or to the Run caller when the run is
		// complete — a failure recorded above completes it immediately).
		if k.drive(nil) == driveDone {
			k.yield <- struct{}{}
		}
	}()
	k.scheduleWake(k.now, p)
	return p
}

// block gives up control and waits to be resumed. The blocking process
// drives the event loop itself until the baton moves on: to another
// process (park until our own wake), to nobody because our own wake came
// up next (driveSelf: just keep running), or back to the Run caller when
// the run completes. If the kernel has stopped, control goes straight to
// the teardown rendezvous and the resume unwinds the goroutine.
func (p *Proc) block() {
	k := p.k
	if k.stopped {
		k.yield <- struct{}{}
	} else {
		p.driving = true
		res := k.drive(p)
		p.driving = false
		switch res {
		case driveSelf:
			return
		case driveHanded:
			// Our wake event is still pending; park below.
		case driveDone:
			k.yield <- struct{}{}
		}
	}
	<-p.resume
	if k.stopped {
		panic(stopSentinel{})
	}
}

// Sleep advances the process's local time by d, yielding to other
// activities in between. Sleep(0) yields and resumes after other events
// already scheduled at this instant.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	// Hand-inlined scheduleWake: Sleep is the hottest schedule site in
	// process-heavy simulations.
	k := p.k
	t := k.now.Add(d)
	if t < k.now {
		panic("sim: sleep overflows the clock")
	}
	k.seq++
	if e := (event{at: t, seq: k.seq, arg: p}); !k.q.pushFast(e) {
		k.q.pushSlow(e)
	}
	p.block()
}

// SleepUntil blocks the process until absolute time t. If t is not after
// the current time, it still yields once.
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.scheduleWake(t, p)
	p.block()
}

// park records the process as signal-blocked and yields. The waker is
// responsible for removing it from the parked set before resuming.
func (p *Proc) park() {
	p.k.parked[p] = struct{}{}
	p.block()
}
