package mpi_test

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/mpi"
)

// Tagged point-to-point plus an Allreduce on a 4-node world: the
// receive for tag 2 is posted before the tag-1 message is consumed,
// and completes independently.
func Example() {
	const n = 4
	c := cluster.NewFM(n, core.DefaultConfig(), cost.Default())

	for rank := 0; rank < n; rank++ {
		rank := rank
		c.Start(rank, func(ep *core.Endpoint) {
			world := mpi.NewWorld(ep, n, 0)

			if rank == 1 {
				world.Send(0, 1, []byte("tagged"))
				world.Send(0, 2, []byte("matched"))
			}
			if rank == 0 {
				r2 := world.Irecv(mpi.AnySource, 2)
				data, st := world.Recv(1, 1)
				fmt.Printf("tag %d from rank %d: %s\n", st.Tag, st.Source, data)
				data, st = world.Wait(r2)
				fmt.Printf("tag %d from rank %d: %s\n", st.Tag, st.Source, data)
			}

			sum := world.Allreduce([]float64{float64(rank)}, mpi.Sum)
			if rank == 0 {
				fmt.Printf("allreduce sum of ranks: %.0f\n", sum[0])
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	// Output:
	// tag 1 from rank 1: tagged
	// tag 2 from rank 1: matched
	// allreduce sum of ranks: 6
}
