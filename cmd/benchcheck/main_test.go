package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselines(t *testing.T, files map[string]string) map[string]entry {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base, err := loadBaselines(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func runCheck(base map[string]entry, input string, allowMissing bool) (code int, out string) {
	var buf, errs bytes.Buffer
	code = check(strings.NewReader(input), &buf, &errs, base, 1.25, allowMissing)
	return code, buf.String() + errs.String()
}

func TestLoadBaselinesLaterPROverrides(t *testing.T) {
	base := baselines(t, map[string]string{
		"BENCH_pr5.json":  `{"benchmarks":[{"name":"BenchmarkDrive","baseline":{"allocs_per_op":100}}]}`,
		"BENCH_pr10.json": `{"benchmarks":[{"name":"BenchmarkDrive","after":{"allocs_per_op":40}}]}`,
	})
	e, ok := base["BenchmarkDrive"]
	if !ok || e.allocs != 40 || !strings.HasSuffix(e.file, "BENCH_pr10.json") {
		t.Fatalf("BenchmarkDrive = %+v, want 40 allocs from BENCH_pr10.json", e)
	}
}

func TestWithinBudgetPasses(t *testing.T) {
	base := baselines(t, map[string]string{
		"BENCH_pr1.json": `{"benchmarks":[{"name":"BenchmarkDrive","after":{"allocs_per_op":40}}]}`,
	})
	code, out := runCheck(base, "BenchmarkDrive-8  100  12345 ns/op  2048 B/op  42 allocs/op\n", false)
	if code != 0 || !strings.Contains(out, "ok   BenchmarkDrive") {
		t.Fatalf("code = %d, out:\n%s", code, out)
	}
}

func TestRegressionFails(t *testing.T) {
	base := baselines(t, map[string]string{
		"BENCH_pr1.json": `{"benchmarks":[{"name":"BenchmarkDrive","after":{"allocs_per_op":40}}]}`,
	})
	code, out := runCheck(base, "BenchmarkDrive-8  100  12345 ns/op  99 allocs/op\n", false)
	if code != 1 || !strings.Contains(out, "FAIL BenchmarkDrive: 99 allocs/op exceeds 50") {
		t.Fatalf("code = %d, out:\n%s", code, out)
	}
}

// TestMissingBenchmarkNamed is the gate's anti-narrowing guarantee: a
// baselined benchmark absent from the run must fail, and the failure
// must name the missing benchmark and its baseline file.
func TestMissingBenchmarkNamed(t *testing.T) {
	base := baselines(t, map[string]string{
		"BENCH_pr1.json": `{"benchmarks":[
			{"name":"BenchmarkDrive","after":{"allocs_per_op":40}},
			{"name":"BenchmarkGone","after":{"allocs_per_op":7}}]}`,
	})
	code, out := runCheck(base, "BenchmarkDrive-8  100  12345 ns/op  40 allocs/op\n", false)
	if code != 1 {
		t.Fatalf("missing benchmark passed; out:\n%s", out)
	}
	if !strings.Contains(out, "FAIL BenchmarkGone: baselined in") ||
		!strings.Contains(out, "BENCH_pr1.json but absent from the benchmark run") {
		t.Fatalf("failure does not name the missing benchmark:\n%s", out)
	}

	// -allow-missing waives exactly that failure for subset runs.
	code, out = runCheck(base, "BenchmarkDrive-8  100  12345 ns/op  40 allocs/op\n", true)
	if code != 0 {
		t.Fatalf("allow-missing still failed:\n%s", out)
	}
}

// TestUnreadableAllocsFails pins the fix for a silent pass: a gated
// benchmark whose allocs/op does not parse used to count as seen and
// sail through; it must fail and say why.
func TestUnreadableAllocsFails(t *testing.T) {
	base := baselines(t, map[string]string{
		"BENCH_pr1.json": `{"benchmarks":[{"name":"BenchmarkDrive","after":{"allocs_per_op":40}}]}`,
	})
	code, out := runCheck(base, "BenchmarkDrive-8  100  12345 ns/op  1.2.3 allocs/op\n", false)
	if code != 1 || !strings.Contains(out, `FAIL BenchmarkDrive: unreadable allocs/op "1.2.3"`) {
		t.Fatalf("code = %d, out:\n%s", code, out)
	}
	// And it must not double-report as absent from the run.
	if strings.Contains(out, "absent from the benchmark run") {
		t.Fatalf("unreadable line also reported missing:\n%s", out)
	}
}

// bytesBase is a baseline that commits to both allocs and bytes.
func bytesBase(t *testing.T) map[string]entry {
	t.Helper()
	return baselines(t, map[string]string{
		"BENCH_pr1.json": `{"benchmarks":[{"name":"BenchmarkDrive","after":{"allocs_per_op":40,"bytes_per_op":2048}}]}`,
	})
}

func TestBytesWithinBudgetPasses(t *testing.T) {
	code, out := runCheck(bytesBase(t), "BenchmarkDrive-8  100  12345 ns/op  2100 B/op  40 allocs/op\n", false)
	if code != 0 || !strings.Contains(out, "ok   BenchmarkDrive: 2100 B/op (baseline 2048, limit 2560)") {
		t.Fatalf("code = %d, out:\n%s", code, out)
	}
}

func TestBytesRegressionFails(t *testing.T) {
	code, out := runCheck(bytesBase(t), "BenchmarkDrive-8  100  12345 ns/op  4096 B/op  40 allocs/op\n", false)
	if code != 1 || !strings.Contains(out, "FAIL BenchmarkDrive: 4096 B/op exceeds 2560") {
		t.Fatalf("code = %d, out:\n%s", code, out)
	}
}

// A baseline that gates bytes must not let the check drop out when the
// benchmark line omits or garbles the B/op column.
func TestBytesMissingOrUnreadableFails(t *testing.T) {
	code, out := runCheck(bytesBase(t), "BenchmarkDrive-8  100  12345 ns/op  40 allocs/op\n", false)
	if code != 1 || !strings.Contains(out, "FAIL BenchmarkDrive: baseline gates bytes_per_op but the benchmark line has no B/op column") {
		t.Fatalf("missing column: code = %d, out:\n%s", code, out)
	}
	code, out = runCheck(bytesBase(t), "BenchmarkDrive-8  100  12345 ns/op  1.2.3 B/op  40 allocs/op\n", false)
	if code != 1 || !strings.Contains(out, `FAIL BenchmarkDrive: unreadable B/op "1.2.3"`) {
		t.Fatalf("unreadable column: code = %d, out:\n%s", code, out)
	}
}

// A baseline without bytes_per_op keeps gating allocs alone, whatever
// the run's B/op column says.
func TestBytesUngatedWithoutBaseline(t *testing.T) {
	base := baselines(t, map[string]string{
		"BENCH_pr1.json": `{"benchmarks":[{"name":"BenchmarkDrive","after":{"allocs_per_op":40}}]}`,
	})
	code, out := runCheck(base, "BenchmarkDrive-8  100  12345 ns/op  999999 B/op  40 allocs/op\n", false)
	if code != 0 || strings.Contains(out, "B/op (baseline") {
		t.Fatalf("code = %d, out:\n%s", code, out)
	}
}

func TestNoGatedBenchmarksFails(t *testing.T) {
	base := baselines(t, map[string]string{
		"BENCH_pr1.json": `{"benchmarks":[{"name":"BenchmarkDrive","after":{"allocs_per_op":40}}]}`,
	})
	code, out := runCheck(base, "PASS\nok  fm  0.5s\n", false)
	if code != 1 || !strings.Contains(out, "no benchmark with a committed baseline") {
		t.Fatalf("code = %d, out:\n%s", code, out)
	}
}
