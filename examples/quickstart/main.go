// Quickstart: the smallest complete FM program.
//
// Two simulated SPARCstations share an 8-port Myrinet switch. Node 0
// sends a four-word message (FM_send_4) and a longer single-frame message
// (FM_send) to node 1, whose handlers consume them during FM_extract —
// the full Table 1 API in ~40 lines of application code.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
)

func main() {
	// Full FM 1.0: streamed LCP, hybrid SBus use, buffer management,
	// return-to-sender flow control, 128-byte frames.
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())

	const (
		hWords = 0 // handler id for the four-word message
		hBytes = 1 // handler id for the byte-payload message
	)

	done := false
	c.Start(1, func(ep *core.Endpoint) {
		ep.RegisterHandler(hWords, func(src int, payload []byte) {
			w0, w1, w2, w3 := core.DecodeWords(payload)
			fmt.Printf("[node 1 @ %v] FM_send_4 from node %d: %d %d %d %d\n",
				ep.Now(), src, w0, w1, w2, w3)
		})
		ep.RegisterHandler(hBytes, func(src int, payload []byte) {
			fmt.Printf("[node 1 @ %v] FM_send   from node %d: %q (%d bytes)\n",
				ep.Now(), src, payload, len(payload))
			done = true
		})
		// FM_extract: poll the layer until both messages have arrived.
		for !done {
			ep.WaitIncoming()
			ep.Extract()
		}
	})

	c.Start(0, func(ep *core.Endpoint) {
		ep.Send4(1, hWords, 4, 8, 15, 16)
		if err := ep.Send(1, hBytes, []byte("hello from Illinois Fast Messages")); err != nil {
			panic(err)
		}
		fmt.Printf("[node 0 @ %v] both sends returned (data is off the user buffers)\n", ep.Now())
	})

	if err := c.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("simulation quiesced at %v; node 0 sent %d packets, node 1 delivered %d\n",
		c.K.Now(), c.EPs[0].Stats().Sent, c.EPs[1].Stats().Delivered)
}
