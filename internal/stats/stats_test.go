package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"fm/internal/sim"
)

// TestEmptyHistogramContract pins the documented zero-value contract:
// every query on an empty histogram returns its zero value, so callers
// (windowed series printing idle windows, drivers summarizing runs with
// no stampable messages) never have to check Count first.
func TestEmptyHistogramContract(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram not zero-valued")
	}
	for _, p := range []float64{-1, 0, 0.5, 0.99, 0.999, 1, 2} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("Percentile(%v) = %v on empty histogram, want 0", p, got)
		}
	}
	if h.Summary() != "no samples" {
		t.Errorf("summary = %q", h.Summary())
	}
	if h.Bars(40) != "" {
		t.Errorf("Bars = %q on empty histogram, want empty", h.Bars(40))
	}

	// Merging an empty histogram into a populated one must not disturb
	// it (in particular not clobber min), and merging into an empty one
	// must reproduce the source exactly.
	var empty, pop Histogram
	pop.Record(5 * sim.Microsecond)
	before := pop
	pop.Merge(&empty)
	if pop != before {
		t.Error("merging an empty histogram changed the target")
	}
	var dst Histogram
	dst.Merge(&pop)
	if dst != pop {
		t.Error("merge into empty histogram did not reproduce the source")
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Record(25 * sim.Microsecond)
	if h.Count() != 1 {
		t.Fatal("count")
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		got := h.Percentile(p)
		if got != 25*sim.Microsecond {
			t.Errorf("p%.0f = %v", 100*p, got)
		}
	}
	if h.Mean() != 25*sim.Microsecond || h.Min() != h.Max() {
		t.Error("scalar stats wrong")
	}
}

func TestNegativeSamplePanics(t *testing.T) {
	var h Histogram
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	h.Record(-1)
}

// TestPercentileAccuracy: percentiles on a known uniform distribution
// must land within the histogram's ~3% relative error.
func TestPercentileAccuracy(t *testing.T) {
	var h Histogram
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Record(sim.Duration(i) * sim.Nanosecond)
	}
	for _, p := range []float64{0.10, 0.50, 0.90, 0.99} {
		want := float64(p * n)
		got := h.Percentile(p).Nanoseconds()
		if got < want*0.93 || got > want*1.07 {
			t.Errorf("p%.0f = %.0f ns, want ~%.0f", 100*p, got, want)
		}
	}
	wantMean := float64(n+1) / 2
	if got := h.Mean().Nanoseconds(); got < wantMean*0.99 || got > wantMean*1.01 {
		t.Errorf("mean = %.0f, want ~%.0f", got, wantMean)
	}
}

// TestPercentileAgainstOracle: random samples, percentile must be within
// quantization error of the exact order statistic.
func TestPercentileAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 100 + rng.Intn(2000)
		samples := make([]float64, n)
		for i := range samples {
			v := sim.Duration(rng.Int63n(int64(10 * sim.Millisecond)))
			samples[i] = float64(v)
			h.Record(v)
		}
		sort.Float64s(samples)
		for _, p := range []float64{0.25, 0.5, 0.95} {
			idx := int(p*float64(n)) - 1
			if idx < 0 {
				idx = 0
			}
			exact := samples[idx]
			got := float64(h.Percentile(p))
			// Allow quantization (3.2%) plus one rank of slack.
			lo, hi := exact*0.90, exact*1.10+float64(sim.Nanosecond)
			if got < lo-1 || got > hi+samples[n-1]*0.04 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(sim.Duration(rng.Int63n(int64(sim.Second))))
	}
	prev := sim.Duration(-1)
	for p := 0.01; p <= 1.0; p += 0.01 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotonic at p=%.2f: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(sim.Microsecond)
		b.Record(3 * sim.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Mean() != 2*sim.Microsecond {
		t.Errorf("mean = %v", a.Mean())
	}
	if a.Min() != sim.Microsecond || a.Max() != 3*sim.Microsecond {
		t.Error("min/max wrong after merge")
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 200 {
		t.Error("merging empty changed count")
	}
}

func TestScalar(t *testing.T) {
	var s Scalar
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Count() != 3 || s.Min() != 1 || s.Max() != 3 || s.Mean() != 2 {
		t.Errorf("scalar = %s", s.String())
	}
	var empty Scalar
	if empty.Mean() != 0 {
		t.Error("empty mean")
	}
}

func TestBars(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Record(sim.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(10 * sim.Microsecond)
	}
	out := h.Bars(20)
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("bars:\n%s", out)
	}
	var empty Histogram
	if empty.Bars(20) != "" {
		t.Error("empty bars should be empty")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// lower(bucket(v)) <= v and within ~3.2% below it.
	for _, v := range []sim.Duration{0, 1, 31, 32, 33, 1000, 12345, 1 << 20, 1 << 40, 987654321012} {
		b := bucket(v)
		lo := lower(b)
		if lo > v {
			t.Errorf("lower(bucket(%d)) = %d > sample", v, lo)
		}
		if v >= subBuckets && float64(v-lo) > float64(v)/float64(subBuckets)+1 {
			t.Errorf("quantization of %d too coarse: lower %d", v, lo)
		}
	}
}

// TestPercentileSmallOddCounts pins the ceiling-rank fix: with a handful
// of samples the truncating rank underestimated by one — the p50 of
// three samples came back as the minimum. Values below 32 are exact
// (sub-bucket resolution), so these expectations have no quantization
// slack.
func TestPercentileSmallOddCounts(t *testing.T) {
	record := func(vals ...int) *Histogram {
		var h Histogram
		for _, v := range vals {
			h.Record(sim.Duration(v))
		}
		return &h
	}

	if got := record(10).Percentile(0.5); got != 10 {
		t.Errorf("p50 of {10} = %v, want 10", got)
	}
	h3 := record(10, 20, 30)
	if got := h3.Percentile(0.5); got != 20 {
		t.Errorf("p50 of {10,20,30} = %v, want the middle sample 20", got)
	}
	if got := h3.Percentile(0.90); got != 30 {
		t.Errorf("p90 of {10,20,30} = %v, want 30", got)
	}
	h5 := record(1, 2, 3, 4, 5)
	if got := h5.Percentile(0.5); got != 3 {
		t.Errorf("p50 of {1..5} = %v, want 3", got)
	}
	if got := h5.Percentile(0.2); got != 1 {
		t.Errorf("p20 of {1..5} = %v, want 1", got)
	}
	if got := h5.Percentile(0.21); got != 2 {
		t.Errorf("p21 of {1..5} = %v, want 2", got)
	}
	// Exact-product ranks must not drift up from float error.
	h30 := record(make30()...)
	if got := h30.Percentile(0.1); got != 3 {
		t.Errorf("p10 of {1..30} = %v, want rank 3", got)
	}
}

func make30() []int {
	out := make([]int, 30)
	for i := range out {
		out[i] = i + 1
	}
	return out
}
