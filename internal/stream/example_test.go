package stream_test

import (
	"fmt"
	"io"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/stream"
)

// A reliable, ordered byte stream over FM's unordered 128-byte frames:
// the receiver reads with io.ReadAll until the sender's FIN.
func Example() {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())

	c.Start(1, func(ep *core.Endpoint) {
		conn := stream.NewMux(ep, 0).Open(0, 1)
		data, err := io.ReadAll(conn)
		if err != nil {
			panic(err)
		}
		fmt.Printf("received %d bytes: %s\n", len(data), data[:12])
	})
	c.Start(0, func(ep *core.Endpoint) {
		conn := stream.NewMux(ep, 0).Open(1, 1)
		msg := append([]byte("segmented... "), make([]byte, 500)...) // > 1 frame
		if _, err := conn.Write(msg); err != nil {
			panic(err)
		}
		_ = conn.Close()
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	// Output:
	// received 513 bytes: segmented...
}
