package workload

import (
	"fmt"
	"math"

	"fm/internal/sim"
)

// A Source is an open-loop arrival process wrapped around a Pattern: it
// is itself a Pattern, whose Gen returns the base pattern's sends with
// Send.At set to scheduled arrival instants drawn from the process over
// a fixed virtual horizon. "Open loop" means the schedule is a property
// of the source alone — arrivals keep coming at their instants whether
// or not the system has kept up, so when offered load exceeds service
// capacity the backlog (and with it the sojourn latency the soak driver
// measures) grows without bound. That is the regime batch drivers
// cannot reach: a batch run always ends, so the knee never shows.
//
// Contract: every generated Send.At lies in [0, SourceHorizon()); the
// destination/size structure cycles through the base pattern's send
// list in order; generation is a pure function of the source value and
// (src, n), exactly like any other Pattern.
type Source interface {
	Pattern
	// SourceHorizon is the virtual-time span arrivals cover.
	SourceHorizon() sim.Duration
}

// cycleSends materializes an arrival schedule over base's send list:
// arrival i takes base[i%len(base)]'s destination and size with its own
// At instant. next() returns successive interarrival gaps.
func cycleSends(base []Send, horizon sim.Duration, next func() sim.Duration) []Send {
	if len(base) == 0 {
		return nil
	}
	var out []Send
	t := sim.Duration(0)
	for i := 0; ; i++ {
		t += next()
		if t >= horizon {
			return out
		}
		b := base[i%len(base)]
		out = append(out, Send{Dst: b.Dst, Size: b.Size, At: t})
	}
}

// checkSource panics on a non-runnable process configuration; sources
// are built from validated fmbench flags, so reaching this is a
// programming error.
func checkSource(name string, gap, horizon sim.Duration) {
	if gap <= 0 {
		panic(fmt.Sprintf("workload: %s: interarrival gap %v must be positive", name, gap))
	}
	if horizon <= 0 {
		panic(fmt.Sprintf("workload: %s: horizon %v must be positive", name, horizon))
	}
}

// PoissonSource schedules arrivals as a per-rank Poisson process:
// interarrival gaps are exponentially distributed with mean MeanGap,
// drawn from a splitmix64 stream derived from (Seed, rank) — the same
// per-rank stream discipline the randomized patterns use, so a run is
// reproducible by construction and ranks are mutually independent.
type PoissonSource struct {
	Base    Pattern
	Seed    uint64
	MeanGap sim.Duration // mean interarrival per rank
	Horizon sim.Duration
}

func (s PoissonSource) Name() string { return "poisson:" + s.Base.Name() }

// SourceHorizon implements Source.
func (s PoissonSource) SourceHorizon() sim.Duration { return s.Horizon }

// AdjustNodes forwards the base pattern's node constraint.
func (s PoissonSource) AdjustNodes(n int) int { return AdjustNodes(s.Base, n) }

// Gen implements Pattern.
func (s PoissonSource) Gen(src, n int) []Send {
	checkSource(s.Name(), s.MeanGap, s.Horizon)
	rng := newSplitMix64(s.Seed, uint64(src))
	mean := float64(s.MeanGap)
	return cycleSends(s.Base.Gen(src, n), s.Horizon, func() sim.Duration {
		// 53-bit uniform in (0, 1]: +1 keeps the log argument nonzero,
		// and u == 1 maps to a zero gap (a legal batched arrival).
		u := float64(rng.next()>>11+1) / float64(1<<53)
		return sim.Duration(-mean * math.Log(u))
	})
}

// FixedRateSource schedules arrivals on a strict clock: one arrival
// every Gap, with rank src's clock offset by Gap*src/n so the ranks'
// injections interleave instead of synchronizing on every tick (the
// unstaggered variant measures barrier-like burst behavior, which is
// the incast pattern's job, not the soak source's).
type FixedRateSource struct {
	Base    Pattern
	Gap     sim.Duration // interarrival per rank
	Horizon sim.Duration
}

func (s FixedRateSource) Name() string { return "fixed-rate:" + s.Base.Name() }

// SourceHorizon implements Source.
func (s FixedRateSource) SourceHorizon() sim.Duration { return s.Horizon }

// AdjustNodes forwards the base pattern's node constraint.
func (s FixedRateSource) AdjustNodes(n int) int { return AdjustNodes(s.Base, n) }

// Gen implements Pattern.
func (s FixedRateSource) Gen(src, n int) []Send {
	checkSource(s.Name(), s.Gap, s.Horizon)
	phase := sim.Duration(int64(s.Gap) * int64(src) / int64(n))
	first := true
	return cycleSends(s.Base.Gen(src, n), s.Horizon, func() sim.Duration {
		if first {
			first = false
			return phase
		}
		return s.Gap
	})
}
