// Stream: a TCP-style bulk transfer over FM frames (the paper's legacy-
// protocol motivation, Sections 5 and 7).
//
// Node 0 pushes 1 MiB through a reliable, ordered byte stream that
// segments into FM's 128-byte frames and reassembles at the receiver —
// FM itself is reliable but unordered, so the stream layer supplies the
// sequencing. The example prints delivered goodput and the protocol
// activity underneath (frames, acks, rejects).
//
// Run with: go run ./examples/stream [-mib N]
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"math/rand"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
	"fm/internal/stream"
)

func main() {
	mib := flag.Int("mib", 1, "mebibytes to transfer")
	flag.Parse()

	total := *mib << 20
	data := make([]byte, total)
	rand.New(rand.NewSource(1995)).Read(data)
	wantSum := sha256.Sum256(data)

	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	var gotSum [32]byte
	var gotLen int
	var finish sim.Time

	c.Start(1, func(ep *core.Endpoint) {
		conn := stream.NewMux(ep, 0).Open(0, 1)
		h := sha256.New()
		n, err := io.Copy(h, conn) // reads until the sender's FIN
		if err != nil {
			panic(err)
		}
		gotLen = int(n)
		copy(gotSum[:], h.Sum(nil))
		finish = ep.Now()
	})
	c.Start(0, func(ep *core.Endpoint) {
		conn := stream.NewMux(ep, 0).Open(1, 1)
		if _, err := conn.Write(data); err != nil {
			panic(err)
		}
		if err := conn.Close(); err != nil {
			panic(err)
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		panic(err)
	}

	if gotSum != wantSum || gotLen != total {
		panic("transfer corrupted")
	}
	goodput := float64(total) / (1 << 20) / finish.Seconds()
	fmt.Printf("transferred %d MiB intact (sha256 match) in %v virtual time\n", *mib, finish)
	fmt.Printf("goodput: %.2f MB/s over 128-byte FM frames\n", goodput)

	s0, s1 := c.EPs[0].Stats(), c.EPs[1].Stats()
	fmt.Printf("sender:   %d data packets, %d retransmits, %d send blocks (window full)\n",
		s0.Sent, s0.Retransmits, s0.SendBlocks)
	fmt.Printf("receiver: %d delivered, %d standalone acks, %d piggybacked, %d rejects\n",
		s1.Delivered, s1.AcksSent, s1.AcksPiggybacked, s1.RejectsSent)
	fmt.Printf("sender SBus: %.0f%% busy moving data by programmed I/O\n",
		100*c.Buses[0].Utilization())
}
