package lcp

import (
	"testing"

	"fm/internal/cost"
	"fm/internal/lanai"
	"fm/internal/myrinet"
	"fm/internal/sbus"
	"fm/internal/sim"
)

// pair builds two LANai devices on a crossbar, no hosts.
func pair(p *cost.Params) (*sim.Kernel, *lanai.Device, *lanai.Device) {
	k := sim.NewKernel()
	fab := myrinet.NewCrossbar(k, p, 2, 8)
	qc := lanai.DefaultQueues(616)
	b0 := sbus.New(k, p, "sbus0")
	b1 := sbus.New(k, p, "sbus1")
	d0 := lanai.New(k, p, b0, fab, 0, qc)
	d1 := lanai.New(k, p, b1, fab, 1, qc)
	return k, d0, d1
}

// TestSyntheticStreamBandwidth checks the Fig. 3 bandwidth pipeline: the
// streamed LCP's per-packet time is its loop overhead + DMA setup + wire
// time, so measured bandwidth must track the analytic model.
func TestSyntheticStreamBandwidth(t *testing.T) {
	p := cost.Default()
	k, d0, d1 := pair(p)
	const packets = 200
	const payload = 128

	received := 0
	var last sim.Time
	Start(d0, Options{Streamed: true, Source: Synthetic, SynthDst: 1})
	Start(d1, Options{Streamed: true, Source: Synthetic, SynthDst: 0,
		OnReceive: func(pk *myrinet.Packet) {
			if len(pk.Payload) != payload {
				t.Errorf("payload len %d", len(pk.Payload))
			}
			received++
			last = k.Now()
		}})
	d0.SetSynthetic(packets, payload)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if received != packets {
		t.Fatalf("received %d/%d", received, packets)
	}
	// Sender per-packet gap: streamed instr + DMA setup + wire time.
	wire := payload + p.FMHeaderBytes
	gap := p.Instr(p.LCPStreamedSendInstr) + p.DMASetup + sim.Duration(wire)*p.LinkByte
	want := gap.Seconds() * packets
	got := last.Seconds()
	if got < want*0.95 || got > want*1.4 {
		t.Errorf("stream of %d packets finished at %.2fus, analytic sender-bound %.2fus",
			packets, last.Microseconds(), want*1e6)
	}
}

// TestStreamedFasterThanBaseline reproduces the Fig. 3 ordering.
func TestStreamedFasterThanBaseline(t *testing.T) {
	run := func(streamed bool) sim.Time {
		p := cost.Default()
		k, d0, d1 := pair(p)
		var done sim.Time
		n := 0
		Start(d0, Options{Streamed: streamed, Source: Synthetic, SynthDst: 1})
		Start(d1, Options{Streamed: streamed, Source: Synthetic, SynthDst: 0,
			OnReceive: func(*myrinet.Packet) {
				n++
				done = k.Now()
			}})
		d0.SetSynthetic(100, 128)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		if n != 100 {
			t.Fatalf("received %d", n)
		}
		return done
	}
	base := run(false)
	stream := run(true)
	if stream >= base {
		t.Errorf("streamed (%v) not faster than baseline (%v)", stream, base)
	}
}

// TestLANaiPingPongLatency checks the Fig. 3 latency path against the
// analytic one-way model.
func TestLANaiPingPongLatency(t *testing.T) {
	p := cost.Default()
	k, d0, d1 := pair(p)
	const rounds = 50
	const payload = 16

	var finish sim.Time
	got := 0
	// Responder: every received frame triggers one reply.
	Start(d1, Options{Streamed: true, Source: Synthetic, SynthDst: 0,
		OnReceive: func(*myrinet.Packet) { d1.AddSynthetic(1) }})
	Start(d0, Options{Streamed: true, Source: Synthetic, SynthDst: 1,
		OnReceive: func(*myrinet.Packet) {
			got++
			finish = k.Now()
			if got < rounds {
				d0.AddSynthetic(1)
			}
		}})
	d1.SetSynthetic(0, payload)
	d0.SetSynthetic(1, payload)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != rounds {
		t.Fatalf("completed %d/%d rounds", got, rounds)
	}
	oneWay := finish.Seconds() / (2 * rounds)
	// Analytic one-way: send overhead + DMA setup + wire + switch +
	// receive overhead (+ idle wake recheck), all in the few-us range.
	wire := float64(payload+p.FMHeaderBytes) * 12.5e-9
	lo := p.Instr(p.LCPStreamedSendInstr+p.LCPStreamedRecvInstr).Seconds() + wire + 550e-9
	hi := lo + 3e-6
	if oneWay < lo || oneWay > hi {
		t.Errorf("one-way latency %.2fus outside [%.2f, %.2f]us",
			oneWay*1e6, lo*1e6, hi*1e6)
	}
}

// TestBaselineAlternation: in baseline mode the LCP services at most one
// send before checking receives, so a bidirectional burst interleaves.
func TestBaselineAlternation(t *testing.T) {
	p := cost.Default()
	k, d0, d1 := pair(p)
	recv0, recv1 := 0, 0
	Start(d0, Options{Source: Synthetic, SynthDst: 1,
		OnReceive: func(*myrinet.Packet) { recv0++ }})
	Start(d1, Options{Source: Synthetic, SynthDst: 0,
		OnReceive: func(*myrinet.Packet) { recv1++ }})
	d0.SetSynthetic(20, 64)
	d1.SetSynthetic(20, 64)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if recv0 != 20 || recv1 != 20 {
		t.Fatalf("recv0=%d recv1=%d", recv0, recv1)
	}
}

// TestInterpretSlowsReceive: the switch() cost must lengthen a stream's
// completion time (Fig. 7's point).
func TestInterpretSlowsReceive(t *testing.T) {
	run := func(interpret bool) sim.Time {
		p := cost.Default()
		k, d0, d1 := pair(p)
		var done sim.Time
		Start(d0, Options{Streamed: true, Source: Synthetic, SynthDst: 1})
		Start(d1, Options{Streamed: true, Interpret: interpret, Source: Synthetic, SynthDst: 0,
			OnReceive: func(*myrinet.Packet) { done = k.Now() }})
		d0.SetSynthetic(100, 16)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	plain := run(false)
	interp := run(true)
	if interp <= plain {
		t.Errorf("interpretation (%v) did not slow the stream (%v)", interp, plain)
	}
}

// TestHostDeliveryAggregation: with a stalled host, arrivals accumulate
// in the LANai receive queue and are delivered in few, large DMA batches
// when aggregation is on, one-per-DMA when off.
func TestHostDeliveryAggregation(t *testing.T) {
	// Two senders converge on node 2, whose host-DMA engine (19 ns/B plus
	// setup) cannot keep up with the combined arrival rate; undelivered
	// packets pile up in the LANai receive queue and aggregation pays off.
	run := func(aggregate bool) lanai.Stats {
		p := cost.Default()
		k := sim.NewKernel()
		fab := myrinet.NewCrossbar(k, p, 3, 8)
		qc := lanai.DefaultQueues(616)
		var devs []*lanai.Device
		for i := 0; i < 3; i++ {
			devs = append(devs, lanai.New(k, p, sbus.New(k, p, "s"), fab, i, qc))
		}
		Start(devs[0], Options{Streamed: true, Source: Synthetic, SynthDst: 2})
		Start(devs[1], Options{Streamed: true, Source: Synthetic, SynthDst: 2})
		Start(devs[2], Options{Streamed: true, Source: Synthetic, SynthDst: 0,
			HostDelivery: true, Aggregate: aggregate})
		devs[0].SetSynthetic(40, 256)
		devs[1].SetSynthetic(40, 256)
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return devs[2].Stats()
	}
	agg := run(true)
	one := run(false)
	if agg.Delivered != 80 || one.Delivered != 80 {
		t.Fatalf("delivered agg=%d one=%d, want 80", agg.Delivered, one.Delivered)
	}
	if one.HostDMABatches != 80 {
		t.Errorf("unaggregated batches = %d, want 80", one.HostDMABatches)
	}
	if agg.HostDMABatches >= one.HostDMABatches {
		t.Errorf("aggregation did not reduce DMA count: %d vs %d",
			agg.HostDMABatches, one.HostDMABatches)
	}
}

// TestHostRecvBackpressure: when the host never consumes, delivery stops
// at the host receive queue capacity and the excess stays queued behind
// it rather than being dropped.
func TestHostRecvBackpressure(t *testing.T) {
	p := cost.Default()
	k := sim.NewKernel()
	fab := myrinet.NewCrossbar(k, p, 2, 8)
	qc := lanai.DefaultQueues(616)
	qc.HostRecvSlots = 8
	d0 := lanai.New(k, p, sbus.New(k, p, "s0"), fab, 0, lanai.DefaultQueues(616))
	d1 := lanai.New(k, p, sbus.New(k, p, "s1"), fab, 1, qc)
	Start(d0, Options{Streamed: true, Source: Synthetic, SynthDst: 1})
	Start(d1, Options{Streamed: true, Source: Synthetic, SynthDst: 0,
		HostDelivery: true, Aggregate: true})
	d0.SetSynthetic(30, 64)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := d1.Stats()
	if st.Delivered != 8 {
		t.Errorf("delivered %d, want exactly the 8 host slots", st.Delivered)
	}
	if d1.HostRecvQ.Len() != 8 {
		t.Errorf("host queue holds %d", d1.HostRecvQ.Len())
	}
	// The rest must be intact in the card and network staging, not lost.
	inCard := d1.RecvQ.Len() + 8
	if st.Received < 8 {
		t.Errorf("received %d", st.Received)
	}
	if inCard > 30+8 {
		t.Errorf("accounting anomaly: %d", inCard)
	}
}
