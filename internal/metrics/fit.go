package metrics

import (
	"math"
	"sort"

	"fm/internal/sim"
)

// BWPoint is one bandwidth-sweep measurement: payload size N (bytes),
// per-packet time, and delivered payload bandwidth (MB/s).
type BWPoint struct {
	N         int
	PerPacket sim.Duration
	MBps      float64
}

// LatPoint is one latency-sweep measurement.
type LatPoint struct {
	N      int
	OneWay sim.Duration
}

// Fit summarizes a bandwidth sweep with the paper's Table 2/4 metrics.
type Fit struct {
	// T0 is the startup overhead: the intercept of the least-squares fit
	// of per-packet time against payload size (t(N) = t0 + N/r_inf).
	T0 sim.Duration
	// RInf is the asymptotic bandwidth in MB/s from the fit's slope.
	RInf float64
	// NHalf is the packet size achieving RInf/2, interpolated from the
	// measured curve (or extrapolated from the fit if the sweep never
	// reaches it).
	NHalf float64
	// NHalfExtrapolated reports whether NHalf came from the fit rather
	// than the measured curve.
	NHalfExtrapolated bool
}

// FitSweep computes Table 4-style metrics from a bandwidth sweep.
// RefRInf, when positive, overrides the fitted asymptote as the reference
// for n1/2 — the paper does this for the Myrinet API, whose maximum
// message size is too small to measure r_inf, using the SBus write
// bandwidth instead (footnote 3).
func FitSweep(points []BWPoint, refRInf float64) Fit {
	if len(points) < 2 {
		panic("metrics: need at least two sweep points to fit")
	}
	pts := append([]BWPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].N < pts[j].N })

	t0, slope := linear(pts)
	f := Fit{T0: sim.Duration(t0)}
	if slope > 0 {
		// slope is ps/byte; bandwidth = 1/slope bytes/ps.
		f.RInf = 1e12 / slope / MiB
	} else {
		f.RInf = math.Inf(1)
	}
	ref := f.RInf
	if refRInf > 0 {
		ref = refRInf
	}
	f.NHalf, f.NHalfExtrapolated = nHalf(pts, ref, t0, slope)
	return f
}

// linear performs least squares of per-packet time (ps) on payload bytes.
func linear(pts []BWPoint) (intercept, slope float64) {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := float64(p.N)
		y := float64(p.PerPacket)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return intercept, slope
}

// nHalf locates the payload size where bandwidth reaches ref/2.
func nHalf(pts []BWPoint, ref, t0, slope float64) (float64, bool) {
	half := ref / 2
	for i, p := range pts {
		if p.MBps >= half {
			if i == 0 {
				return float64(p.N), false
			}
			// Linear interpolation between the straddling points.
			a, b := pts[i-1], p
			frac := (half - a.MBps) / (b.MBps - a.MBps)
			return float64(a.N) + frac*float64(b.N-a.N), false
		}
	}
	// Sweep never reached half power: solve the fitted model
	// N/(t0 + slope*N) = half (bytes/ps).
	halfBps := half * MiB      // bytes/s
	halfBpPs := halfBps / 1e12 // bytes/ps
	den := 1 - halfBpPs*slope  // 1 - (half/rInf)
	if den <= 0 {
		return math.Inf(1), true
	}
	return halfBpPs * t0 / den, true
}

// Interp returns the measured bandwidth at size n by linear interpolation
// over the sweep (for headline numbers at specific sizes).
func Interp(pts []BWPoint, n int) float64 {
	if len(pts) == 0 {
		return 0
	}
	sorted := append([]BWPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].N < sorted[j].N })
	if n <= sorted[0].N {
		return sorted[0].MBps
	}
	for i := 1; i < len(sorted); i++ {
		if n <= sorted[i].N {
			a, b := sorted[i-1], sorted[i]
			frac := float64(n-a.N) / float64(b.N-a.N)
			return a.MBps + frac*(b.MBps-a.MBps)
		}
	}
	return sorted[len(sorted)-1].MBps
}
