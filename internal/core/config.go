// Package core implements Illinois Fast Messages (FM) 1.0, the paper's
// contribution: a user-level messaging layer delivering low latency and
// high bandwidth for short messages on Myrinet-connected workstations.
//
// The public surface mirrors Table 1 of the paper:
//
//	FM_send_4(dest,handler,i0,i1,i2,i3)  ->  (*Endpoint).Send4
//	FM_send(dest,handler,buf,size)       ->  (*Endpoint).Send
//	FM_extract()                         ->  (*Endpoint).Extract
//
// Each message carries a sender-specified handler that consumes the data
// at the destination; there is no request-reply coupling, message buffers
// do not persist beyond the handler's return, and delivery is reliable
// but unordered (return-to-sender flow control may reorder).
//
// The layer is assembled feature by feature exactly as the paper's
// evaluation builds it (Sections 4.2-4.5): Config selects the LCP loop
// structure, the SBus architecture (hybrid vs. all-DMA), real buffer
// management vs. the vestigial fixed-buffer layer, per-packet LANai
// interpretation, and return-to-sender flow control, so every row of
// Table 4 is a Config value.
package core

import (
	"fm/internal/cost"
	"fm/internal/lanai"
	"fm/internal/lcp"
	"fm/internal/sim"
)

// SBusMode selects how outbound data crosses the I/O bus (Section 4.3).
type SBusMode int

const (
	// Hybrid: the host processor moves outbound data into LANai memory
	// with programmed double-word stores; inbound data arrives by DMA.
	// This is FM 1.0's choice.
	Hybrid SBusMode = iota
	// AllDMA: outbound data is copied into the pinned DMA region and
	// pulled across the bus by the LANai's host-DMA engine.
	AllDMA
)

// FlowProtocol selects the reliable-delivery protocol when FlowControl
// is enabled.
type FlowProtocol int

const (
	// ReturnToSender is FM 1.0's optimistic protocol (Section 4.5):
	// senders reserve local reject-queue space per outstanding packet;
	// overloaded receivers bounce packets back for later retransmission.
	// Buffering is independent of cluster size.
	ReturnToSender FlowProtocol = iota
	// SlidingWindow is the traditional alternative the paper's
	// Discussion proposes comparing against: each sender gets a
	// dedicated per-destination window, so receiver buffering grows
	// linearly with the number of senders.
	SlidingWindow
)

// Config assembles one variant of the messaging layer. DefaultConfig is
// full FM 1.0; the Fig. 4/7/8 ablations switch individual fields off.
type Config struct {
	// Streamed selects the streamed LCP main loop (Figure 2b).
	Streamed bool
	// SBusMode selects hybrid or all-DMA outbound data movement.
	SBusMode SBusMode
	// BufferMgmt enables real buffer management: the cached-counter
	// space protocol on the host, queue wrap handling in the LCP, and
	// batched consumption-counter updates. When false the layer is the
	// "vestigial" Fig. 4 program: the same queues exist but their
	// management is cost-free, modeling the infinite-buffer assumption.
	BufferMgmt bool
	// FlowControl enables reliable-delivery flow control with aggregated
	// and piggybacked acknowledgements; Protocol picks the scheme.
	FlowControl bool
	// Protocol selects return-to-sender (FM 1.0) or a traditional
	// sliding window (the Discussion's comparison).
	Protocol FlowProtocol
	// WindowPerDest is the per-destination window for SlidingWindow. A
	// receiver must reserve WindowPerDest slots per possible sender, so
	// its pinned memory grows with cluster size — the scaling problem
	// return-to-sender avoids.
	WindowPerDest int
	// Interpret adds the per-packet switch() interpretation cost in the
	// LCP (the Figure 7 "+switch()" configuration).
	Interpret bool
	// Aggregate lets the LCP batch received packets into single host-DMA
	// transfers (Section 4.4). On in every paper configuration.
	Aggregate bool
	// PiggybackAcks rides pending acknowledgements on outgoing data
	// packets ("FM 1.0 optimizes further by piggybacking").
	PiggybackAcks bool

	// FramePayload is the maximum payload per frame; FM 1.0 uses 128
	// bytes (Section 5). Send rejects larger buffers: "larger messages
	// will require segmentation and reassembly" (package stream).
	FramePayload int

	// Queue geometry (slots). SendSlots and RecvSlots live in the 128 KB
	// LANai memory; HostRecvSlots and HostOutSlots in the pinned host
	// DMA region.
	SendSlots     int
	RecvSlots     int
	HostRecvSlots int
	HostOutSlots  int

	// WindowSlots is the reject-region capacity: the maximum number of
	// outstanding (unacknowledged) packets a sender may have in the
	// network. Sender buffering is proportional to this, not to the
	// number of hosts (the paper's scalability argument).
	WindowSlots int
	// AckBatch is how many accepted packets a receiver accumulates
	// before emitting a standalone acknowledgement (acks also flush when
	// the receive queue drains, and piggyback on any outgoing data).
	AckBatch int
	// RejectThreshold is the host receive queue backlog above which
	// Extract bounces excess data packets back to their senders
	// (rejection is implemented at the host, Section 5). Zero disables
	// rejection.
	RejectThreshold int
	// RetryDelay is how long a rejected packet waits in the reject queue
	// before retransmission.
	RetryDelay sim.Duration
	// DrainLimit caps packets processed per Extract call; zero means
	// drain everything available. Small values model a slow consumer.
	DrainLimit int

	// MaxHandlers sizes the handler table.
	MaxHandlers int
	// CheckInvariants enables exactly-once assertions (tests).
	CheckInvariants bool
}

// DefaultConfig returns full FM 1.0: streamed LCP, hybrid SBus use,
// buffer management, return-to-sender flow control, 128-byte frames.
func DefaultConfig() Config {
	return Config{
		Streamed:        true,
		SBusMode:        Hybrid,
		BufferMgmt:      true,
		FlowControl:     true,
		Aggregate:       true,
		PiggybackAcks:   true,
		FramePayload:    128,
		SendSlots:       32,
		RecvSlots:       64,
		HostRecvSlots:   256,
		HostOutSlots:    32,
		WindowSlots:     128,
		WindowPerDest:   16,
		AckBatch:        16,
		RejectThreshold: 192,
		RetryDelay:      50 * sim.Microsecond,
		MaxHandlers:     64,
	}
}

// VestigialConfig returns the minimal Fig. 4 layer: streamed LCP plus the
// chosen SBus architecture, no buffer-management costs, no flow control.
func VestigialConfig(mode SBusMode) Config {
	c := DefaultConfig()
	c.SBusMode = mode
	c.BufferMgmt = false
	c.FlowControl = false
	c.PiggybackAcks = false
	c.RejectThreshold = 0
	return c
}

// WithFrame returns c resized for a different frame payload, keeping the
// LANai queue footprint within the 128 KB card memory.
func (c Config) WithFrame(payload int) Config {
	c.FramePayload = payload
	// Keep (Send+Recv) * frame under the card budget with headroom.
	frame := payload + 32
	maxSlots := (lanai.MemoryBytes - 16<<10) / frame
	if c.SendSlots+c.RecvSlots > maxSlots {
		c.SendSlots = maxSlots / 3
		c.RecvSlots = maxSlots - c.SendSlots
	}
	return c
}

// Queues derives the device queue geometry from the layer config.
func (c Config) Queues(p *cost.Params) lanai.QueueConfig {
	return lanai.QueueConfig{
		FrameBytes:    c.FramePayload + p.FMHeaderBytes,
		SendSlots:     c.SendSlots,
		RecvSlots:     c.RecvSlots,
		HostRecvSlots: c.HostRecvSlots,
		HostOutSlots:  c.HostOutSlots,
		ChannelSlots:  2,
	}
}

// LCPOptions derives the control-program configuration for this layer.
func (c Config) LCPOptions(p *cost.Params) lcp.Options {
	o := lcp.Options{
		Streamed:     c.Streamed,
		Interpret:    c.Interpret,
		HostDelivery: true,
		Aggregate:    c.Aggregate,
	}
	if c.SBusMode == AllDMA {
		o.Source = lcp.FromHostDMA
	} else {
		o.Source = lcp.FromSendQueue
	}
	if c.BufferMgmt {
		o.ExtraInstrPerPacket = p.LCPFMExtraInstr
	}
	return o
}
