package bench

import (
	"bytes"
	"strings"
	"testing"
)

// renderFaults runs the faults experiment at the given harness settings
// and returns the rendered report.
func renderFaults(opt Options, workers, shards int) string {
	opt.Workers = workers
	opt.Shards = shards
	var buf bytes.Buffer
	Faults(opt).WriteText(&buf)
	return buf.String()
}

// TestFaultsDeterminismPin is the resilience suite's determinism
// regression pin, the same idiom as the sharded scale smoke: the faults
// report must be byte-identical across worker counts, across shard
// counts (1, 2, 4 — the fault toggles replay on every replica and the
// report prints only shard-invariant quantities), and across repeated
// runs. Any timing- or scheduling-dependent value leaking into the
// report breaks this test.
func TestFaultsDeterminismPin(t *testing.T) {
	opt := DefaultOptions()
	base := renderFaults(opt, 1, 1)
	if w4 := renderFaults(opt, 4, 1); w4 != base {
		t.Fatalf("faults output depends on worker count:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", base, w4)
	}
	if s2 := renderFaults(opt, 1, 2); s2 != base {
		t.Fatalf("faults output depends on shard count:\n--- shards=1 ---\n%s\n--- shards=2 ---\n%s", base, s2)
	}
	if s4 := renderFaults(opt, 4, 4); s4 != base {
		t.Fatalf("faults output at workers=4 shards=4 diverged:\n--- base ---\n%s\n--- w4s4 ---\n%s", base, s4)
	}
	if again := renderFaults(opt, 1, 1); again != base {
		t.Fatal("faults output not reproducible across runs")
	}

	// The pinned run must actually exercise the machinery: faults
	// injected, everything delivered, retransmits observed.
	if got := kvValue(t, base, "fault events injected"); got != "5" {
		t.Fatalf("default plan injected %s events, want 5:\n%s", got, base)
	}
	if got := kvValue(t, base, "all-to-all delivered under faults"); got != "992/992" {
		t.Fatalf("all-to-all under faults delivered %s, want 992/992:\n%s", got, base)
	}
	if got := kvValue(t, base, "all-to-all retransmits"); got == "0" {
		t.Fatalf("fault plan drew no retransmits:\n%s", base)
	}
}

// kvValue extracts the measured column of the named KV line.
func kvValue(t *testing.T, out, metric string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, metric+" ") {
			f := strings.Fields(strings.TrimPrefix(line, metric))
			if len(f) < 2 {
				t.Fatalf("malformed KV line %q", line)
			}
			return f[0]
		}
	}
	t.Fatalf("no KV line for %q in:\n%s", metric, out)
	return ""
}

// TestFaultsEmptyPlan: seed 0 is the clean baseline — nothing injected,
// degraded bisection identical to clean, zero recovery time.
func TestFaultsEmptyPlan(t *testing.T) {
	opt := DefaultOptions()
	opt.FaultSeed = 0
	out := renderFaults(opt, 2, 1)
	if !strings.Contains(out, "empty fault plan (-fault-seed 0)") {
		t.Errorf("empty-plan note missing:\n%s", out)
	}
	for metric, want := range map[string]string{
		"fault events injected":       "0",
		"degraded/clean bisection BW": "100.0%",
		"recovery time (us)":          "0.0",
	} {
		if got := kvValue(t, out, metric); got != want {
			t.Errorf("empty plan: %s = %s, want %s", metric, got, want)
		}
	}
	if strings.Contains(out, "-- fault plan --") {
		t.Errorf("empty plan printed a fault-plan table:\n%s", out)
	}
}

// TestFaultsHandWrittenPlan: -fault-plan overrides the seed and shows up
// verbatim in the notes.
func TestFaultsHandWrittenPlan(t *testing.T) {
	opt := DefaultOptions()
	opt.FaultPlan = "switch 9 106 205"
	out := renderFaults(opt, 1, 1)
	if !strings.Contains(out, "hand-written fault plan (-fault-plan): switch 9 106 205") {
		t.Errorf("hand-written plan not echoed:\n%s", out)
	}
	if got := kvValue(t, out, "component downs (link/switch/node)"); got != "0/1/0" {
		t.Errorf("single switch outage: downs = %s, want 0/1/0", got)
	}
}

// TestValidateFaults: a malformed or out-of-range plan is rejected with
// the reason, before anything runs (the fmbench pre-flight).
func TestValidateFaults(t *testing.T) {
	opt := DefaultOptions()
	if err := ValidateFaults(opt); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	opt.FaultPlan = "switch 9 106"
	if err := ValidateFaults(opt); err == nil || !strings.Contains(err.Error(), "want") {
		t.Errorf("truncated event accepted (err %v)", err)
	}
	opt.FaultPlan = "switch 9999 10 20"
	if err := ValidateFaults(opt); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range switch accepted (err %v)", err)
	}
	opt.FaultPlan = "link 0 10 9000"
	if err := ValidateFaults(opt); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("never-closing window accepted (err %v)", err)
	}
}
