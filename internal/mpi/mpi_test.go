package mpi_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/mpi"
	"fm/internal/sim"
)

const handler = 0

// run builds an n-node FM cluster, starts app(rank, comm) on every
// node with a world communicator, and runs the simulation to
// quiescence.
func run(t *testing.T, n int, app func(rank int, c *mpi.Comm)) {
	t.Helper()
	cl := cluster.NewFM(n, core.DefaultConfig(), cost.Default())
	for id := 0; id < n; id++ {
		id := id
		cl.Start(id, func(ep *core.Endpoint) {
			app(id, mpi.NewWorld(ep, n, handler))
		})
	}
	if err := cl.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// Unexpected messages arriving before the receive is posted must queue
// and match later, in any tag order the receiver asks for.
func TestUnexpectedBeforePost(t *testing.T) {
	run(t, 2, func(rank int, c *mpi.Comm) {
		switch rank {
		case 0:
			for tag := 1; tag <= 3; tag++ {
				c.Send(1, tag, []byte(fmt.Sprintf("msg-%d", tag)))
			}
		case 1:
			// Let all three arrive unexpected before any post.
			c.Endpoint().CPU().Advance(2 * sim.Millisecond)
			for _, tag := range []int{2, 3, 1} { // out of arrival order
				data, st := c.Recv(0, tag)
				if want := fmt.Sprintf("msg-%d", tag); string(data) != want {
					t.Errorf("tag %d: got %q, want %q", tag, data, want)
				}
				if st.Tag != tag || st.Source != 0 || st.Count != len(data) {
					t.Errorf("tag %d: bad status %+v", tag, st)
				}
			}
		}
	})
}

// AnySource and AnyTag wildcards match any application message and
// report the actual envelope in the status.
func TestWildcards(t *testing.T) {
	run(t, 3, func(rank int, c *mpi.Comm) {
		switch rank {
		case 1:
			c.Send(0, 7, []byte("from-1"))
		case 2:
			c.Endpoint().CPU().Advance(1 * sim.Millisecond)
			c.Send(0, 9, []byte("from-2"))
		case 0:
			data, st := c.Recv(mpi.AnySource, mpi.AnyTag)
			if st.Source != 1 || st.Tag != 7 || string(data) != "from-1" {
				t.Errorf("first wildcard recv: %+v %q", st, data)
			}
			data, st = c.Recv(mpi.AnySource, mpi.AnyTag)
			if st.Source != 2 || st.Tag != 9 || string(data) != "from-2" {
				t.Errorf("second wildcard recv: %+v %q", st, data)
			}
		}
	})
}

// A wildcard receive must not capture internal collective traffic.
func TestWildcardSkipsInternalTags(t *testing.T) {
	run(t, 2, func(rank int, c *mpi.Comm) {
		if rank == 0 {
			// Barrier traffic (internal tags) first, then a real message.
			c.Barrier()
			c.Send(1, 3, []byte("user"))
		} else {
			c.Barrier()
			data, st := c.Recv(mpi.AnySource, mpi.AnyTag)
			if st.Tag != 3 || string(data) != "user" {
				t.Errorf("wildcard matched wrong message: %+v %q", st, data)
			}
		}
	})
}

// Nonblocking receives complete in message-arrival order, not post
// order.
func TestOutOfOrderCompletion(t *testing.T) {
	run(t, 2, func(rank int, c *mpi.Comm) {
		switch rank {
		case 0:
			c.Send(1, 8, []byte("late-post-tag"))
			c.Endpoint().CPU().Advance(5 * sim.Millisecond)
			c.Send(1, 7, []byte("early-post-tag"))
		case 1:
			r7 := c.Irecv(0, 7)
			r8 := c.Irecv(0, 8)
			// The tag-8 message is on the wire; tag 7 is 5ms behind it.
			c.Wait(r8)
			if r7.Done() {
				t.Error("r7 complete before its message was sent")
			}
			data, st := c.Wait(r7)
			if string(data) != "early-post-tag" || st.Tag != 7 {
				t.Errorf("r7: %+v %q", st, data)
			}
		}
	})
}

// Same source, same tag: messages are received in send order even
// though the transport may reorder frames (non-overtaking).
func TestNonOvertaking(t *testing.T) {
	const k = 32
	run(t, 2, func(rank int, c *mpi.Comm) {
		switch rank {
		case 0:
			for i := 0; i < k; i++ {
				c.Send(1, 5, []byte{byte(i)})
			}
		case 1:
			for i := 0; i < k; i++ {
				data, _ := c.Recv(0, 5)
				if len(data) != 1 || data[0] != byte(i) {
					t.Fatalf("message %d: got %v", i, data)
				}
			}
		}
	})
}

// Messages larger than one FM frame segment and reassemble; contents
// survive byte-for-byte.
func TestLargeMessageSegmentation(t *testing.T) {
	big := make([]byte, 10_000) // ~93 frames at 128B payload
	for i := range big {
		big[i] = byte(i * 31)
	}
	run(t, 2, func(rank int, c *mpi.Comm) {
		switch rank {
		case 0:
			c.Send(1, 1, big)
		case 1:
			data, st := c.Recv(0, 1)
			if !bytes.Equal(data, big) {
				t.Errorf("large message corrupted (%d bytes, want %d)", len(data), len(big))
			}
			if st.Count != len(big) {
				t.Errorf("status count %d, want %d", st.Count, len(big))
			}
		}
	})
}

// Self-sends loop back through the matcher.
func TestSelfSend(t *testing.T) {
	run(t, 2, func(rank int, c *mpi.Comm) {
		req := c.Irecv(rank, 4)
		c.Send(rank, 4, []byte("loopback"))
		data, st := c.Wait(req)
		if string(data) != "loopback" || st.Source != rank {
			t.Errorf("rank %d self-send: %+v %q", rank, st, data)
		}
	})
}

// The collectives produce MPI semantics on the world communicator.
func TestCollectives(t *testing.T) {
	const n = 8
	run(t, n, func(rank int, c *mpi.Comm) {
		c.Barrier()

		// Bcast from a non-zero root.
		got := c.Bcast(3, []byte(fmt.Sprintf("root-data-%d", rank)))
		if string(got) != "root-data-3" {
			t.Errorf("rank %d bcast: %q", rank, got)
		}

		// Reduce: sum of ranks at root 2.
		sum := c.Reduce(2, []float64{float64(rank)}, mpi.Sum)
		if rank == 2 {
			if want := float64(n * (n - 1) / 2); sum[0] != want {
				t.Errorf("reduce: got %v want %v", sum[0], want)
			}
		} else if sum != nil {
			t.Errorf("rank %d reduce: non-root got %v", rank, sum)
		}

		// Allreduce max.
		all := c.Allreduce([]float64{float64(rank * rank)}, mpi.Max)
		if want := float64((n - 1) * (n - 1)); all[0] != want {
			t.Errorf("rank %d allreduce: got %v want %v", rank, all[0], want)
		}

		// Alltoall personalized exchange.
		out := make([][]byte, n)
		for j := range out {
			out[j] = []byte{byte(rank), byte(j)}
		}
		in := c.Alltoall(out)
		for j := range in {
			if in[j][0] != byte(j) || in[j][1] != byte(rank) {
				t.Errorf("rank %d alltoall from %d: %v", rank, j, in[j])
			}
		}
	})
}

// Split partitions the world into disjoint communicators with
// translated ranks; collectives work within each.
func TestSplit(t *testing.T) {
	const n = 8
	run(t, n, func(rank int, c *mpi.Comm) {
		sub := c.Split(rank%2, -rank) // negative key reverses rank order
		if sub.Size() != n/2 {
			t.Errorf("rank %d: sub size %d", rank, sub.Size())
		}
		// key = -rank sorts descending by world rank: even group
		// {6,4,2,0} -> sub ranks 0..3, odd group {7,5,3,1} likewise.
		wantRank := (n - 1 - rank) / 2
		if sub.Rank() != wantRank {
			t.Errorf("world rank %d: sub rank %d, want %d", rank, sub.Rank(), wantRank)
		}

		// Allreduce within the subgroup: sum of world ranks of members.
		got := sub.Allreduce([]float64{float64(rank)}, mpi.Sum)
		want := 0.0
		for r := rank % 2; r < n; r += 2 {
			want += float64(r)
		}
		if got[0] != want {
			t.Errorf("rank %d subcomm allreduce: got %v want %v", rank, got[0], want)
		}

		// Point-to-point on the subcomm stays inside it.
		if sub.Rank() == 0 {
			sub.Send(sub.Size()-1, 1, []byte{byte(rank % 2)})
		}
		if sub.Rank() == sub.Size()-1 {
			data, st := sub.Recv(0, 1)
			if data[0] != byte(rank%2) || st.Source != 0 {
				t.Errorf("rank %d subcomm recv: %v %+v", rank, data, st)
			}
		}

		// Undefined color joins no group.
		none := c.Split(-1, 0)
		if none != nil {
			t.Errorf("rank %d: negative color produced a communicator", rank)
		}
	})
}

// A parallel-pi smoke test: the layered stack computes the right
// answer with measurable virtual-time cost.
func TestParallelPi(t *testing.T) {
	const n = 4
	const steps = 1 << 12
	run(t, n, func(rank int, c *mpi.Comm) {
		sum := 0.0
		for i := rank; i < steps; i += n {
			x := (float64(i) + 0.5) / steps
			sum += 4.0 / (1.0 + x*x)
		}
		pi := c.Allreduce([]float64{sum / steps}, mpi.Sum)[0]
		if math.Abs(pi-math.Pi) > 1e-6 {
			t.Errorf("rank %d: pi = %v", rank, pi)
		}
	})
}
