package sim

// Resource models a serially-reusable piece of hardware — a bus, a DMA
// engine, a switch output port — with FIFO service in reservation order.
//
// Instead of maintaining an explicit waiter queue, a Resource tracks the
// instant at which it next becomes free. A reservation made at time t for
// duration d is granted the interval [max(t, free), max(t, free)+d] and
// pushes free forward. Because reservations are granted in the order they
// are made and the kernel is deterministic, this is exactly FIFO
// arbitration, with far less bookkeeping than a queue of processes.
type Resource struct {
	k    *Kernel
	name string
	free Time

	// busy accumulates granted service time for utilization reporting.
	busy   Duration
	grants uint64
}

// NewResource creates a resource attached to k. The name is used in
// traces and stats.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Reserve books the next available interval of length d and returns its
// start and end instants. It does not block; device state machines use it
// to compute completion times for events.
func (r *Resource) Reserve(d Duration) (start, end Time) {
	start = r.k.now
	if r.free > start {
		start = r.free
	}
	end = start.Add(d)
	r.free = end
	r.busy += d
	r.grants++
	return start, end
}

// ReserveAt books the next available interval of length d that starts no
// earlier than `earliest`, returning its bounds. Pipelined device chains
// (e.g. a packet head reaching a switch output port) use it to express
// "ready at t, then FIFO".
func (r *Resource) ReserveAt(earliest Time, d Duration) (start, end Time) {
	start = r.k.now
	if earliest > start {
		start = earliest
	}
	if r.free > start {
		start = r.free
	}
	end = start.Add(d)
	r.free = end
	r.busy += d
	r.grants++
	return start, end
}

// FreeAt returns the instant the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.free }

// Grants returns the number of reservations made.
func (r *Resource) Grants() uint64 { return r.grants }

// BusyTime returns the total granted service time.
func (r *Resource) BusyTime() Duration { return r.busy }

// Utilization returns busy time divided by elapsed virtual time.
func (r *Resource) Utilization() float64 {
	if r.k.now == 0 {
		return 0
	}
	return float64(r.busy) / float64(r.k.now)
}

// Use blocks the calling process while it holds the resource for d:
// it reserves the next available interval and sleeps until the interval
// ends. It returns the instant service began (after any queueing delay).
func (p *Proc) Use(r *Resource, d Duration) Time {
	start, end := r.Reserve(d)
	p.SleepUntil(end)
	return start
}
