// Package myriapi models the Myricom-supplied "Myrinet API" messaging
// layer (version 2.0, March 1995), the paper's comparison baseline
// (Section 4.6, Table 3, Figure 9).
//
// The API is feature-rich where FM is lean: it checksums every message,
// preserves delivery order, continuously remaps the network, manages a
// small number of large buffers, and synchronizes host and LANai
// frequently "to pass buffer pointers back and forth". Each feature is
// modeled as the host/LANai cost the paper attributes to it; the result
// is the baseline's characteristic curve — two-order-of-magnitude higher
// t0 and n1/2 than FM at comparable peak bandwidth.
//
// Two send interfaces are provided, as in the real API:
//
//	myri_cmd_send_imm  ->  Variant SendImm (processor moves the data)
//	myri_cmd_send      ->  Variant SendDMA (data staged for DMA)
package myriapi

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/cost"
	"fm/internal/host"
	"fm/internal/lanai"
	"fm/internal/lcp"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

// Variant selects the send interface.
type Variant int

const (
	// SendImm is myri_cmd_send_imm: the host processor moves data to the
	// LANai with programmed I/O.
	SendImm Variant = iota
	// SendDMA is myri_cmd_send: data is pinned, copied to the DMA
	// region, and pulled by the LANai's host-DMA engine.
	SendDMA
)

// Config parameterizes the API layer.
type Config struct {
	Variant Variant
	// MaxMessage is the largest message the API accepts. The real API
	// "does not support message sizes large enough to accurately measure
	// r_inf" (footnote 3); 4 KB models that ceiling.
	MaxMessage  int
	MaxHandlers int
}

// DefaultConfig returns the API as measured in Figure 9.
func DefaultConfig(v Variant) Config {
	return Config{Variant: v, MaxMessage: 4096, MaxHandlers: 64}
}

// Queues returns the API's buffer geometry: "small number of large
// buffers" (Table 3).
func (c Config) Queues(p *cost.Params) lanai.QueueConfig {
	return lanai.QueueConfig{
		FrameBytes:    c.MaxMessage + p.APIHeaderBytes,
		SendSlots:     4,
		RecvSlots:     4,
		HostRecvSlots: 16,
		HostOutSlots:  4,
		ChannelSlots:  2,
	}
}

// LCPOptions returns the API's heavier control program: the baseline loop
// structure multiplexing extra work per packet, no aggregation (one large
// buffer per DMA).
func (c Config) LCPOptions(p *cost.Params) lcp.Options {
	o := lcp.Options{
		Streamed:            false,
		HostDelivery:        true,
		Aggregate:           false,
		ExtraInstrPerPacket: p.APILCPExtraInstr,
	}
	if c.Variant == SendDMA {
		o.Source = lcp.FromHostDMA
	} else {
		o.Source = lcp.FromSendQueue
	}
	return o
}

// Endpoint is one node's API interface. It satisfies the same Messenger
// surface as the FM endpoint so the measurement drivers can compare them.
type Endpoint struct {
	cpu *host.CPU
	dev *lanai.Device
	cfg Config
	p   *cost.Params

	handlers  []func(src int, payload []byte)
	nextSeq   uint64
	expectSeq map[int]uint64 // per-source in-order enforcement
	sends     uint64         // for remap housekeeping
	consumed  uint64
}

// New creates an endpoint; the caller starts the LCP with
// lcp.Start(dev, cfg.LCPOptions(p)).
func New(cpu *host.CPU, dev *lanai.Device, cfg Config, p *cost.Params) *Endpoint {
	return &Endpoint{
		cpu: cpu, dev: dev, cfg: cfg, p: p,
		handlers:  make([]func(int, []byte), cfg.MaxHandlers),
		expectSeq: make(map[int]uint64),
	}
}

// NodeID returns this endpoint's node number.
func (ep *Endpoint) NodeID() int { return ep.dev.ID }

// Now returns the current virtual time (for the measurement drivers).
func (ep *Endpoint) Now() sim.Time { return ep.cpu.Now() }

// RegisterHandler installs a receive handler, mirroring the FM surface.
func (ep *Endpoint) RegisterHandler(id int, h func(src int, payload []byte)) {
	ep.handlers[id] = h
}

// Send transmits one message. It blocks until the data has left the user
// buffer, like the real call.
func (ep *Endpoint) Send(dst, handler int, payload []byte) error {
	if len(payload) > ep.cfg.MaxMessage {
		return fmt.Errorf("myriapi: message %d exceeds API maximum %d", len(payload), ep.cfg.MaxMessage)
	}
	// Per-message fixed cost: kernel-style entry, route lookup in the
	// auto-maintained map, ordered-send bookkeeping, and the host-LANai
	// buffer-pointer handshake (two expensive status reads).
	ep.cpu.Advance(ep.p.APISendFixed)
	ep.cpu.StatusRead()
	ep.cpu.StatusRead()

	// Continuous automatic remapping (Table 3): periodic housekeeping.
	ep.sends++
	if ep.p.APIRemapEvery > 0 && ep.sends%uint64(ep.p.APIRemapEvery) == 0 {
		ep.cpu.Advance(ep.p.APIRemapCost)
	}

	// Message checksum over the payload (Table 3: fault detection).
	ep.cpu.Advance(sim.Duration(len(payload)) * ep.p.APIChecksumByte)

	ep.nextSeq++
	pkt := ep.dev.Fab.NewPacket()
	pkt.Src, pkt.Dst = ep.NodeID(), dst
	pkt.Type = myrinet.APIMessage
	pkt.Handler = handler
	pkt.Seq = ep.nextSeq
	pkt.SetPayload(payload)
	pkt.HeaderBytes = ep.p.APIHeaderBytes

	if ep.cfg.Variant == SendDMA {
		ep.cpu.Advance(ep.p.APISendDMAExtra)
		// Pin and translate the touched pages.
		pages := (len(payload) + ep.p.APIPageBytes - 1) / ep.p.APIPageBytes
		if pages < 1 {
			pages = 1
		}
		ep.cpu.Advance(sim.Duration(pages) * ep.p.APIPinPageCost)
		// Scatter-gather descriptors, one per block.
		blocks := (len(payload) + ep.p.APIDescriptorBlock - 1) / ep.p.APIDescriptorBlock
		if blocks < 1 {
			blocks = 1
		}
		ep.cpu.Advance(sim.Duration(blocks) * ep.p.APIDescriptorCost)
		for ep.dev.HostOutQ.Full() {
			ep.cpu.StatusRead()
			if ep.dev.HostOutQ.Full() {
				ep.cpu.Wait(ep.dev.SendFreed)
			}
		}
		ep.cpu.Memcpy(pkt.WireBytes())
		ep.dev.HostOutQ.Push(pkt)
		ep.cpu.ControlWrite()
		ep.cpu.ControlWrite()
	} else {
		for ep.dev.SendQ.Full() {
			ep.cpu.StatusRead()
			if ep.dev.SendQ.Full() {
				ep.cpu.Wait(ep.dev.SendFreed)
			}
		}
		ep.cpu.PIOWrite(pkt.WireBytes())
		ep.dev.SendQ.Push(pkt)
		ep.cpu.ControlWrite()
	}
	ep.dev.HostDoorbell()
	return nil
}

// Extract processes received messages: checksum verification, in-order
// delivery, handler dispatch, and the per-message buffer-pointer
// handshake back to the LANai.
func (ep *Endpoint) Extract() int {
	ep.cpu.Advance(ep.p.HostExtractPoll)
	n := 0
	for !ep.dev.HostRecvQ.Empty() {
		pkt := ep.dev.HostRecvQ.Pop()
		ep.consumed++
		ep.cpu.Advance(ep.p.APIRecvFixed)
		// Verify the checksum over the payload.
		ep.cpu.Advance(sim.Duration(len(pkt.Payload)) * ep.p.APIChecksumByte)
		// Order preservation: a FIFO network plus ordered queues makes
		// this an assertion; the cost is the bookkeeping.
		want := ep.expectSeq[pkt.Src] + 1
		if pkt.Seq != want {
			panic(fmt.Sprintf("myriapi: out-of-order delivery from %d: seq %d, want %d",
				pkt.Src, pkt.Seq, want))
		}
		ep.expectSeq[pkt.Src] = pkt.Seq
		// Return the buffer pointer to the LANai (frequent, expensive
		// synchronization — the paper's core criticism).
		ep.cpu.ControlWrite()
		ep.dev.HostUpdateRecvConsumed(ep.consumed)

		h := ep.handlers[pkt.Handler]
		if h == nil {
			panic(fmt.Sprintf("myriapi: no handler %d on node %d", pkt.Handler, ep.NodeID()))
		}
		ep.cpu.MemRead(len(pkt.Payload))
		ep.cpu.Advance(ep.p.HostHandlerDispatch)
		h(pkt.Src, pkt.Payload)
		ep.dev.Fab.Release(pkt) // the buffer dies with the handler
		n++
	}
	return n
}

// WaitIncoming blocks until a message is available.
func (ep *Endpoint) WaitIncoming() {
	for ep.dev.HostRecvQ.Empty() {
		ep.cpu.Wait(ep.dev.HostRecvAvail)
	}
}

// Cluster is an n-node machine running the Myrinet API layer.
type Cluster struct {
	*cluster.Hardware
	Cfg Config
	EPs []*Endpoint
}

// NewCluster builds the API cluster on a single crossbar.
func NewCluster(n int, cfg Config, p *cost.Params) *Cluster {
	ports := 8
	if n > ports {
		ports = n
	}
	hw := cluster.NewHardware(n, p, cfg.Queues(p), ports)
	c := &Cluster{Hardware: hw, Cfg: cfg}
	for i := range hw.Devs {
		c.EPs = append(c.EPs, New(hw.CPUs[i], hw.Devs[i], cfg, p))
		lcp.Start(hw.Devs[i], cfg.LCPOptions(p))
	}
	return c
}

// Start launches app as node id's application process.
func (c *Cluster) Start(id int, app func(ep *Endpoint)) {
	ep := c.EPs[id]
	c.CPUs[id].Start(func() { app(ep) })
}
