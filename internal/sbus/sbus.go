// Package sbus models the SPARCstation's I/O bus, the bottleneck resource
// of the whole system (paper Sections 2 and 4.3).
//
// The SBus carries two kinds of traffic, arbitrated FIFO: processor-
// mediated accesses (programmed double-word stores into LANai memory at
// 23.9 MB/s max, expensive uncached status reads) and burst-mode DMA
// initiated by the LANai (40-54 MB/s). The asymmetry between those two
// rates is what forces the paper's hybrid architecture: host stores
// outbound, DMA inbound.
package sbus

import (
	"fm/internal/cost"
	"fm/internal/sim"
)

// Stats counts bus traffic by category.
type Stats struct {
	PIOBytes    uint64
	DMABytes    uint64
	StatusReads uint64
	CtrlWrites  uint64
}

// Bus is one node's SBus. Host-side operations block the calling host
// process; DMA reservations are non-blocking and used by the LANai's
// engines from event context.
type Bus struct {
	k     *sim.Kernel
	p     *cost.Params
	res   *sim.Resource
	stats Stats
}

// New creates a bus for one node.
func New(k *sim.Kernel, p *cost.Params, name string) *Bus {
	return NewAt(new(Bus), k, p, name)
}

// NewAt initializes a bus in caller-provided storage and returns it.
// The cluster layer allocates each node's full stack from a chunked
// arena (cluster.nodeStack); NewAt is the in-place form New wraps.
func NewAt(b *Bus, k *sim.Kernel, p *cost.Params, name string) *Bus {
	*b = Bus{k: k, p: p, res: sim.NewResource(k, name)}
	return b
}

// Stats returns a copy of the traffic counters.
func (b *Bus) Stats() Stats { return b.stats }

// Utilization returns the fraction of virtual time the bus was busy.
func (b *Bus) Utilization() float64 { return b.res.Utilization() }

// PIOWrite copies n bytes into LANai memory with programmed double-word
// stores, blocking the host process for the full copy (the host processor
// is the data mover; paper Section 4.3).
func (b *Bus) PIOWrite(hp *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	b.stats.PIOBytes += uint64(n)
	hp.Use(b.res, b.p.PIOTime(n))
}

// StatusRead models the host reading a LANai status or counter field:
// "reading a network interface status field requires ~15 processor
// cycles" (Section 2).
func (b *Bus) StatusRead(hp *sim.Proc) {
	b.stats.StatusReads++
	hp.Use(b.res, b.p.SBusStatusRead)
}

// ControlWrite models a single uncached host store into LANai memory
// (counter updates and doorbells).
func (b *Bus) ControlWrite(hp *sim.Proc) {
	b.stats.CtrlWrites++
	hp.Use(b.res, b.p.SBusControlWrite)
}

// DMA books an n-byte burst transfer on the bus, starting no earlier than
// `earliest`, and returns the transfer's time bounds. It does not block:
// the LANai's DMA engines call it from event context and schedule their
// completion events at `end`.
func (b *Bus) DMA(earliest sim.Time, n int) (start, end sim.Time) {
	b.stats.DMABytes += uint64(n)
	return b.res.ReserveAt(earliest, b.p.SBusDMATime(n))
}
