package workload

import (
	"reflect"
	"testing"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
	"fm/internal/stats"
)

func sourceCatalog() []Source {
	base := UniformRandom{Seed: 42, Packets: 4}
	return []Source{
		PoissonSource{Base: base, Seed: 7, MeanGap: 5 * sim.Microsecond, Horizon: 200 * sim.Microsecond},
		FixedRateSource{Base: base, Gap: 5 * sim.Microsecond, Horizon: 200 * sim.Microsecond},
	}
}

// Sources are Patterns: pure, bounded by the horizon, nondecreasing
// arrival instants, destinations cycling the base pattern's list.
func TestSourcesPureAndBounded(t *testing.T) {
	for _, src := range sourceCatalog() {
		for _, n := range []int{2, 8, 16} {
			for rank := 0; rank < n; rank++ {
				a := src.Gen(rank, n)
				if !reflect.DeepEqual(a, src.Gen(rank, n)) {
					t.Fatalf("%s: Gen(%d, %d) not reproducible", src.Name(), rank, n)
				}
				base := (UniformRandom{Seed: 42, Packets: 4}).Gen(rank, n)
				prev := sim.Duration(0)
				for i, s := range a {
					if s.At < prev {
						t.Fatalf("%s: arrivals out of order at %d: %v after %v", src.Name(), i, s.At, prev)
					}
					prev = s.At
					if s.At >= src.SourceHorizon() {
						t.Fatalf("%s: arrival %v past horizon %v", src.Name(), s.At, src.SourceHorizon())
					}
					if want := base[i%len(base)]; s.Dst != want.Dst || s.Size != want.Size {
						t.Fatalf("%s: arrival %d is %d/%d, want base cycle %d/%d",
							src.Name(), i, s.Dst, s.Size, want.Dst, want.Size)
					}
				}
			}
		}
	}
}

// The Poisson process is seeded per rank: distinct seeds give distinct
// schedules, distinct ranks give independent streams, and the arrival
// count tracks horizon/mean-gap.
func TestPoissonSeedStreams(t *testing.T) {
	mk := func(seed uint64) PoissonSource {
		return PoissonSource{Base: AllToAll{Rounds: 1}, Seed: seed,
			MeanGap: 2 * sim.Microsecond, Horizon: 400 * sim.Microsecond}
	}
	a, b := mk(1).Gen(0, 8), mk(2).Gen(0, 8)
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical schedules")
	}
	if reflect.DeepEqual(mk(1).Gen(0, 8), mk(1).Gen(1, 8)) {
		t.Error("different ranks produced identical schedules")
	}
	// ~200 expected arrivals; a factor-2 band catches degenerate draws.
	if len(a) < 100 || len(a) > 400 {
		t.Errorf("arrival count %d far from expected ~200", len(a))
	}
}

// Fixed-rate ranks are staggered by Gap*src/n so ticks interleave.
func TestFixedRateStagger(t *testing.T) {
	src := FixedRateSource{Base: AllToAll{Rounds: 1}, Gap: 8 * sim.Microsecond, Horizon: 100 * sim.Microsecond}
	r0, r4 := src.Gen(0, 8), src.Gen(4, 8)
	if r0[0].At != 0 {
		t.Errorf("rank 0 first arrival at %v, want 0", r0[0].At)
	}
	if want := 4 * sim.Microsecond; r4[0].At != want {
		t.Errorf("rank 4 first arrival at %v, want %v", r4[0].At, want)
	}
	for i := 1; i < len(r0); i++ {
		if r0[i].At-r0[i-1].At != src.Gap {
			t.Fatalf("gap %v at arrival %d, want %v", r0[i].At-r0[i-1].At, i, src.Gap)
		}
	}
}

func soakSeriesEqual(a, b *stats.Series) bool {
	if a.Width() != b.Width() || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if *a.Window(i) != *b.Window(i) {
			return false
		}
	}
	return true
}

// A soak drive is deterministic: identical inputs give identical
// timelines, window for window, histogram bucket for bucket.
func TestSoakDriveDeterministic(t *testing.T) {
	p := cost.Default()
	cfg := core.DefaultConfig()
	src := PoissonSource{Base: UniformRandom{Seed: 42, Packets: 4}, Seed: 7,
		MeanGap: 10 * sim.Microsecond, Horizon: 200 * sim.Microsecond}
	opt := SoakOptions{Width: 50 * sim.Microsecond}
	a := SoakDriveFM(ClosSpec(16), cfg, p, src, 112, opt)
	b := SoakDriveFM(ClosSpec(16), cfg, p, src, 112, opt)
	if a.Elapsed != b.Elapsed || !soakSeriesEqual(a.Series, b.Series) {
		t.Fatal("repeated soak drives diverged")
	}
	if a.Messages == 0 {
		t.Fatal("soak generated no traffic")
	}
	off, del, bytes, _ := a.Series.Totals()
	if int(off) != a.Messages || int(del) != a.Messages {
		t.Fatalf("series totals %d offered / %d delivered, want %d both", off, del, a.Messages)
	}
	if int64(bytes) != a.PayloadBytes {
		t.Fatalf("series bytes %d, want %d", bytes, a.PayloadBytes)
	}
	if a.Latency.Count() != uint64(a.Messages) {
		t.Fatalf("latency samples %d, want %d", a.Latency.Count(), a.Messages)
	}
	if a.Series.Len() < a.HorizonWindows() {
		t.Fatalf("series spans %d windows, horizon needs %d", a.Series.Len(), a.HorizonWindows())
	}
	// The drain guarantee: in-flight is zero at the end of the timeline.
	if in := a.Series.InFlight(a.Series.Len() - 1); in != 0 {
		t.Fatalf("in-flight %d at quiescence, want 0", in)
	}
}

// Open-loop overload: past the service capacity the backlog and the
// windowed sojourn p99 must grow across the horizon — the saturation
// signature batch drivers cannot show.
func TestSoakOverloadBacklogGrows(t *testing.T) {
	p := cost.Default()
	cfg := core.DefaultConfig()
	mk := func(gap sim.Duration) SoakResult {
		return SoakDriveFM(ClosSpec(16), cfg, p,
			PoissonSource{Base: UniformRandom{Seed: 42, Packets: 4}, Seed: 7,
				MeanGap: gap, Horizon: 300 * sim.Microsecond},
			112, SoakOptions{Width: 50 * sim.Microsecond, Mode: TerminateHorizon})
	}
	light := mk(40 * sim.Microsecond) // ~2.8 MB/s per node, far below capacity
	heavy := mk(2 * sim.Microsecond)  // ~56 MB/s per node, far above capacity

	lh, hh := light.HorizonWindows(), heavy.HorizonWindows()
	if light.ReportWindows() != lh || heavy.ReportWindows() != hh {
		t.Fatal("horizon mode did not clip the reported span")
	}
	// Heavy load: backlog at the bell far exceeds light load's.
	if hb, lb := heavy.Series.InFlight(hh-1), light.Series.InFlight(lh-1); hb < 10*lb+10 {
		t.Errorf("backlog at horizon: heavy %d vs light %d — no open-loop queue growth", hb, lb)
	}
	// Heavy load: sojourn p99 in the last horizon window dwarfs the
	// first window's (the backlog keeps deepening across the horizon).
	first := heavy.Series.Window(0).Lat.Percentile(0.99)
	lastW := heavy.Series.Window(hh - 1)
	if lastW.Lat.Count() == 0 || lastW.Lat.Percentile(0.99) < 4*first {
		t.Errorf("heavy p99 first=%v last=%v — no blow-up across horizon",
			first, lastW.Lat.Percentile(0.99))
	}
	// Light load drains within its horizon span plus a tail window or
	// two; heavy load's timeline extends well past the bell.
	if heavy.Series.Len() <= hh {
		t.Error("heavy timeline did not extend past the horizon")
	}
}

// Payloads too small for the arrival stamp are rejected up front: a
// soak without sojourn readings has no timeline.
func TestSoakTinyPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for sub-stamp payload")
		}
	}()
	SoakDriveFM(ClosSpec(16), core.DefaultConfig(), cost.Default(),
		FixedRateSource{Base: AllToAll{Rounds: 1}, Gap: 10 * sim.Microsecond, Horizon: 50 * sim.Microsecond},
		4, SoakOptions{Width: 10 * sim.Microsecond})
}
