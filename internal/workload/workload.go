// Package workload is the repository's traffic-pattern subsystem: a
// small vocabulary of deterministic per-rank traffic generators
// (Pattern) and drivers that run any pattern at three stack depths —
// the raw Myrinet fabric, the full FM 1.0 layer, and MPI-on-FM — with
// shared latency/bandwidth/hop collection through internal/stats.
//
// The paper's evaluation is built entirely from traffic patterns:
// ping-pong and streaming carry the figures, and the Discussion's
// flow-control study is a many-to-one hotspot. This package makes those
// patterns (and the classical ones the paper's successors measured:
// uniform random, tornado, incast, neighbor exchange, broadcast storms)
// first-class values, so an experiment is "pattern x fabric x stack
// level" instead of a hand-rolled closure per study.
//
// Determinism rules:
//
//   - Gen(src, n) is a pure function of the pattern value, src, and n.
//     Randomized patterns carry an explicit seed and derive per-rank
//     streams from it (splitmix64), so a run is reproducible by
//     construction — there is no global PRNG state.
//   - Drivers run one simulation per call on a private sim.Kernel;
//     concurrent driver calls share nothing, which is what lets the
//     bench harness fan sweep points out over a worker pool with
//     byte-identical output at any worker count.
package workload

import "fm/internal/sim"

// Send is one message a rank will issue: the destination rank, an
// optional payload-size override, and the earliest virtual instant the
// injection may start.
type Send struct {
	// Dst is the destination rank (node id).
	Dst int
	// Size overrides the driver's default payload size when positive.
	Size int
	// At is the earliest injection instant. Zero means back-to-back:
	// the send starts as soon as the source's previous send has left.
	At sim.Duration
}

// Pattern deterministically generates per-rank traffic for an n-rank
// job. Implementations must be pure: repeated Gen calls with the same
// arguments return equal slices (callers may mutate the returned slice,
// so Gen returns a fresh one each call).
type Pattern interface {
	// Name is the pattern's stable identifier, used in experiment
	// output and test pinning.
	Name() string
	// Gen returns rank src's sends, in issue order, for an n-rank job.
	Gen(src, n int) []Send
}

// StreamingPattern is an optional Pattern refinement for patterns whose
// send lists are closed forms: rank src's j-th send is computable
// directly, so drivers can stream each rank's traffic on demand instead
// of materializing every rank's full list up front. At 16k-node
// all-to-all the materialized lists alone are hundreds of millions of
// Send values — streaming is what keeps the prologue's footprint flat.
//
// Implementations must agree exactly with Gen: RankLen(src, n) ==
// len(Gen(src, n)) and SendAt(src, n, j) == Gen(src, n)[j] for every
// valid j (streaming_test.go pins this for the whole catalog).
// Sequentially-seeded patterns (UniformRandom, the soak Sources) stay
// materialized: their j-th value depends on a PRNG prefix.
type StreamingPattern interface {
	Pattern
	// RankLen returns the number of sends rank src issues, without
	// materializing them.
	RankLen(src, n int) int
	// SendAt returns rank src's j-th send, 0 <= j < RankLen(src, n).
	SendAt(src, n, j int) Send
}

// NodeAdjuster is an optional Pattern refinement for patterns that
// cannot serve every job size. AdjustNodes rounds n up to the nearest
// size the pattern supports (for example, bisection pairing needs an
// even rank count).
type NodeAdjuster interface {
	AdjustNodes(n int) int
}

// AdjustNodes returns the node count the pattern wants for a requested
// n: the pattern's own adjustment when it implements NodeAdjuster, n
// unchanged otherwise.
func AdjustNodes(p Pattern, n int) int {
	if a, ok := p.(NodeAdjuster); ok {
		return a.AdjustNodes(n)
	}
	return n
}

// Total returns the total number of sends the pattern generates across
// all n ranks.
func Total(p Pattern, n int) int {
	total := 0
	for src := 0; src < n; src++ {
		total += len(p.Gen(src, n))
	}
	return total
}

// RecvCounts returns, per rank, how many messages the pattern delivers
// to it — the expected-arrival bookkeeping the FM and MPI drivers need
// before any rank can decide it is done.
func RecvCounts(p Pattern, n int) []int {
	counts := make([]int, n)
	for src := 0; src < n; src++ {
		for _, s := range p.Gen(src, n) {
			counts[s.Dst]++
		}
	}
	return counts
}
