package host

import (
	"testing"

	"fm/internal/cost"
	"fm/internal/sbus"
	"fm/internal/sim"
)

func newCPU() (*sim.Kernel, *CPU) {
	k := sim.NewKernel()
	p := cost.Default()
	b := sbus.New(k, p, "bus")
	return k, New(k, p, b, 0)
}

func TestAdvanceChargesTime(t *testing.T) {
	k, c := newCPU()
	c.Start(func() {
		c.Advance(5 * sim.Microsecond)
		if c.Now() != sim.Time(5*sim.Microsecond) {
			t.Errorf("now = %v", c.Now())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyAndMemReadCosts(t *testing.T) {
	k, c := newCPU()
	c.Start(func() {
		c.Memcpy(1000)
		afterCopy := c.Now()
		if afterCopy != sim.Time(c.P.MemcpyTime(1000)) {
			t.Errorf("memcpy took %v", afterCopy)
		}
		c.MemRead(800)
		read := c.Now().Sub(afterCopy)
		if read != 800*c.P.HostMemReadByte {
			t.Errorf("memread took %v", read)
		}
		c.Memcpy(0)
		c.MemRead(0)
		if c.Now() != afterCopy.Add(read) {
			t.Error("zero-byte ops consumed time")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestBusOpsGoThroughSBus(t *testing.T) {
	k, c := newCPU()
	c.Start(func() {
		c.PIOWrite(64)
		c.StatusRead()
		c.ControlWrite()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	s := c.Bus.Stats()
	if s.PIOBytes != 64 || s.StatusReads != 1 || s.CtrlWrites != 1 {
		t.Errorf("bus stats = %+v", s)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	k, c := newCPU()
	c.Start(func() {
		defer func() {
			if recover() == nil {
				t.Error("second Start did not panic")
			}
		}()
		c.Start(func() {})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestProcOutsideAppPanics(t *testing.T) {
	_, c := newCPU()
	defer func() {
		if recover() == nil {
			t.Error("Proc outside an application did not panic")
		}
	}()
	c.Proc()
}

func TestSequentialAppsAllowed(t *testing.T) {
	k, c := newCPU()
	ran := 0
	c.Start(func() { ran++ })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	// The first app finished; a new one may start.
	c.Start(func() { ran++ })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Errorf("ran = %d", ran)
	}
}

func TestWaitTimeout(t *testing.T) {
	k, c := newCPU()
	s := sim.NewSignal(k, "s")
	c.Start(func() {
		if c.WaitTimeout(s, sim.Us(3)) {
			t.Error("unexpected signal")
		}
		if c.Now() != sim.Time(sim.Us(3)) {
			t.Errorf("timeout at %v", c.Now())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}
