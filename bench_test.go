package fm

// One testing.B benchmark per paper artifact (Figures 3, 4, 7, 8, 9 and
// Table 4), each regenerating a representative measurement point of that
// figure inside the deterministic simulator and reporting the simulated
// result as custom metrics:
//
//	sim-MB/s        delivered payload bandwidth in virtual time
//	sim-lat-us      one-way latency in virtual time
//
// Wall-clock ns/op measures the simulator itself; the sim-* metrics are
// the paper-comparable numbers. Full sweeps: go run ./cmd/fmbench.

import (
	"testing"

	"fm/internal/bench"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myriapi"
)

const (
	benchSize    = 128 // the paper's chosen frame size
	benchPackets = 4096
	benchRounds  = 50
)

// --- Figure 3: LANai-to-LANai, baseline vs. streamed LCP ---

func BenchmarkFig3BaselineLCPBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.LANaiStream(p, false, benchSize, benchPackets).MBps
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig3StreamedLCPBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.LANaiStream(p, true, benchSize, benchPackets).MBps
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig3StreamedLCPLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.LANaiPingPong(p, true, benchSize, benchRounds).OneWay.Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Figure 4: minimal host-to-host, hybrid vs. all-DMA ---

func BenchmarkFig4HybridBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigHybridVestigial(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig4AllDMABandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigAllDMAVestigial(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig4HybridLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(bench.ConfigHybridVestigial(), p, benchSize, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Figure 7: buffer management and switch() interpretation ---

func BenchmarkFig7BufferMgmtBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigBufMgmt(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig7SwitchInterpretationBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigBufSwitch(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

// --- Figure 8 / Table 4 row "flow": the complete FM 1.0 layer ---

func BenchmarkFig8FullFMBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigFullFM(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig8FullFMLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(bench.ConfigFullFM(), p, benchSize, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Figure 9: FM vs. the Myrinet API ---

func BenchmarkFig9APIImmBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.APIStream(myriapi.SendImm, p, benchSize, benchPackets/8)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig9APIDMABandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.APIStream(myriapi.SendDMA, p, benchSize, benchPackets/8)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkFig9APIImmLatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.APIPingPong(myriapi.SendImm, p, benchSize, 10).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Table 4 summary points: headline latencies at 16B ---

func BenchmarkTable4FullFMLatency16B(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(core.DefaultConfig().WithFrame(16), p, 16, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- The mpi experiment: MPI-on-FM cost of layering ---

func BenchmarkMPIBandwidth(b *testing.B) {
	p := cost.Default()
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.MPIStream(p, benchSize, benchPackets).MBps
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkMPILatency(b *testing.B) {
	p := cost.Default()
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.MPIPingPong(p, benchSize, benchRounds).OneWay.Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

// --- Ablation benches: the DESIGN.md design choices ---

func BenchmarkAblationBurstPIO(b *testing.B) {
	p := cost.Default().WithBurstPIO()
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(bench.ConfigFullFM(), p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkAblationFasterLANai(b *testing.B) {
	p := cost.Default().WithFasterLANai(2)
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.FMPingPong(bench.ConfigFullFM(), p, benchSize, benchRounds).Microseconds()
	}
	b.ReportMetric(us, "sim-lat-us")
}

func BenchmarkAblationSlidingWindow(b *testing.B) {
	p := cost.Default()
	cfg := bench.ConfigFullFM()
	cfg.Protocol = core.SlidingWindow
	cfg.RejectThreshold = 0
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(cfg, p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}

func BenchmarkAblationBaselineLCPInFullStack(b *testing.B) {
	p := cost.Default()
	cfg := bench.ConfigFullFM()
	cfg.Streamed = false
	var mbps float64
	for i := 0; i < b.N; i++ {
		_, mbps = bench.FMStream(cfg, p, benchSize, benchPackets)
	}
	b.ReportMetric(mbps, "sim-MB/s")
}
