package myrinet

import (
	"fmt"
	"math/rand"
	"testing"

	"fm/internal/cost"
	"fm/internal/sim"
)

// The formulaic fast path's contract: on a healthy structured fabric it
// returns exactly the route BFS would, for every (source switch,
// destination node) pair — including spine starting points, which
// cross-shard continuations and fault bounces resolve from. These tests
// pin the contract on randomized Clos geometries, on every shard
// replica of partitioned fabrics, and across fault toggles (the fast
// path must disengage during active windows and agree with fault-aware
// BFS again once each toggle clears).

// bfsFrom resolves a route with the fast path disabled, through the
// same router state the production path uses.
func bfsFrom(f *Fabric, srcSw, dst int) []hop {
	form := f.topo.form
	f.topo.form = nil
	defer func() { f.topo.form = form }()
	return f.router.routeFrom(srcSw, dst)
}

func hopsEqual(a, b []hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAllPairs compares the fast path against BFS for every (srcSw,
// dst) pair on one fabric replica, returning the number of pairs
// checked.
func checkAllPairs(t *testing.T, f *Fabric, label string) int {
	t.Helper()
	pairs := 0
	for srcSw := 0; srcSw < f.NumSwitches(); srcSw++ {
		for dst := 0; dst < f.Nodes(); dst++ {
			got := f.router.routeFrom(srcSw, dst)
			gotCopy := append([]hop(nil), got...)
			want := bfsFrom(f, srcSw, dst)
			if !hopsEqual(gotCopy, want) {
				t.Fatalf("%s: route from switch %d to node %d: form %v != bfs %v",
					label, srcSw, dst, gotCopy, want)
			}
			pairs++
		}
	}
	return pairs
}

// randomClosSpecs yields partition-friendly randomized geometries: the
// leaf count divides evenly for 1/2/4 shards, everything else is free.
func randomClosSpecs(rng *rand.Rand, count int) [][4]int {
	specs := make([][4]int, 0, count)
	for len(specs) < count {
		leaves := []int{4, 8}[rng.Intn(2)]
		spines := 1 + rng.Intn(leaves)
		npl := 1 + rng.Intn(4)
		ports := npl + spines
		if leaves > ports {
			ports = leaves
		}
		specs = append(specs, [4]int{spines, leaves, npl, ports})
	}
	return specs
}

func TestFormRouteMatchesBFSOnRandomClos(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, spec := range randomClosSpecs(rng, 12) {
		spines, leaves, npl, ports := spec[0], spec[1], spec[2], spec[3]
		label := fmt.Sprintf("clos(%d,%d,%d,%d)", spines, leaves, npl, ports)
		f := NewClos(sim.NewKernel(), cost.Default(), spines, leaves, npl, ports)
		if f.topo.form == nil {
			t.Fatalf("%s: NewClos did not set the structured form", label)
		}
		if checkAllPairs(t, f, label) == 0 {
			t.Fatalf("%s: no pairs checked", label)
		}
	}
}

func TestFormRouteMatchesBFSOnCrossbar(t *testing.T) {
	f := NewCrossbar(sim.NewKernel(), cost.Default(), 6, 8)
	checkAllPairs(t, f, "crossbar6")
}

// Every shard replica of a partitioned fabric resolves routes
// independently; the fast path must agree with BFS on each replica.
func TestFormRouteMatchesBFSPerShardReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, shards := range []int{1, 2, 4} {
		for _, spec := range randomClosSpecs(rng, 4) {
			spines, leaves, npl, ports := spec[0], spec[1], spec[2], spec[3]
			label := fmt.Sprintf("clos(%d,%d,%d,%d)/shards=%d", spines, leaves, npl, ports, shards)
			fabs := make([]*Fabric, shards)
			for s := range fabs {
				fabs[s] = NewClos(sim.NewKernel(), cost.Default(), spines, leaves, npl, ports)
			}
			part, err := fabs[0].Topology().Partition(shards)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for s := range fabs {
				fabs[s].SetShard(part, s, func(owner int, at sim.Time, pkt *Packet) {})
			}
			for s := range fabs {
				checkAllPairs(t, fabs[s], fmt.Sprintf("%s/replica%d", label, s))
			}
		}
	}
}

// Across a fault timeline: while a link or switch window is active (in
// the mapper's lagged view) the fast path must disengage; at probe
// instants after a toggle clears it must re-engage and agree with
// fault-aware BFS, which by then routes over the fully-healthy graph.
func TestFormRouteFaultToggleEquivalence(t *testing.T) {
	const (
		w1Start = 100 * sim.Microsecond
		w1End   = 300 * sim.Microsecond
		w2Start = 500 * sim.Microsecond
		w2End   = 650 * sim.Microsecond
	)
	for _, shards := range []int{1, 2, 4} {
		label := fmt.Sprintf("shards=%d", shards)
		fabs := make([]*Fabric, shards)
		for s := range fabs {
			fabs[s] = NewClos(sim.NewKernel(), cost.Default(), 4, 4, 2, 8)
		}
		if shards > 1 {
			part, err := fabs[0].Topology().Partition(shards)
			if err != nil {
				t.Fatal(err)
			}
			for s := range fabs {
				fabs[s].SetShard(part, s, func(owner int, at sim.Time, pkt *Packet) {})
			}
		}
		ws := []FaultWindow{
			{Kind: LinkFault, Index: 0, Start: sim.Time(w1Start), End: sim.Time(w1End)},
			{Kind: SwitchFault, Index: 5, Start: sim.Time(w2Start), End: sim.Time(w2End)},
		}
		type probe struct {
			at        sim.Time
			wantQuiet bool
		}
		probes := []probe{
			{at: sim.Time(50 * sim.Microsecond), wantQuiet: true},              // before anything
			{at: sim.Time(w1Start) + sim.Time(DetectLag), wantQuiet: false},    // window 1 detected
			{at: sim.Time(200 * sim.Microsecond), wantQuiet: false},            // mid window 1
			{at: sim.Time(w1End) + sim.Time(DetectLag) + 1, wantQuiet: true},   // window 1 cleared
			{at: sim.Time(400 * sim.Microsecond), wantQuiet: true},             // between windows
			{at: sim.Time(600 * sim.Microsecond), wantQuiet: false},            // mid window 2
			{at: sim.Time(w2End) + sim.Time(DetectLag) + 1, wantQuiet: true},   // window 2 cleared
			{at: sim.Time(1 * sim.Microsecond * 1000 * 10), wantQuiet: true},   // long after
			{at: sim.Time(w1End) + sim.Time(DetectLag), wantQuiet: false},      // recovery boundary stays BFS-side
			{at: sim.Time(w2Start) + sim.Time(DetectLag) - 1, wantQuiet: true}, // just before detection
		}
		for s := range fabs {
			f := fabs[s]
			f.ApplyFaults(ws)
			k := f.Kernel()
			for _, pr := range probes {
				pr := pr
				k.AtArg(pr.at, func(any) {
					if quiet := f.faults.routingQuiet(); quiet != pr.wantQuiet {
						t.Errorf("%s: t=%v routingQuiet = %v, want %v", label, k.Now(), quiet, pr.wantQuiet)
						return
					}
					// Equivalence holds at every quiet instant; during an
					// active window both code paths are fault-aware BFS by
					// construction, so comparing is vacuous — instead
					// assert the fast path stayed disengaged above.
					if pr.wantQuiet {
						checkAllPairs(t, f, fmt.Sprintf("%s/t=%v", label, k.Now()))
					}
				}, nil)
			}
			if err := k.RunAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
