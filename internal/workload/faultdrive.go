package workload

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/stats"
)

// Fault driver: DriveFM under an installed fault plan. Two things
// change against the healthy driver. First, Elapsed is the instant the
// last message reached a handler (max over ranks), not kernel
// quiescence — fault toggles are scheduled events that outlast the
// traffic, so the kernel's final Now() would measure the plan, not the
// run. Second, termination: the healthy driver's exit condition (all
// expected messages received, nothing outstanding) assumes a reliable
// network, but a fault can bounce a standalone ack back to a rank that
// has already finished — acks hold no window slot, so nothing in that
// rank's exit condition covers them. Every rank therefore stays alive
// polling until a settle horizon past the last fault recovery, by which
// instant nothing can be in flight toward it anymore.

// FaultResult extends Result with the resilience counters of a faulted
// run.
type FaultResult struct {
	Result
	// Stats is every rank's endpoint counters summed: Retransmits,
	// NetBounces, RejectsSent/Received, Duplicates (must stay 0), etc.
	Stats core.Stats
	// Fault is the fabric's fault bookkeeping, merged across shard
	// replicas (each event is counted on exactly one replica).
	Fault myrinet.FaultStats
	// Stranded is the number of bounced frames still parked in the
	// fabric at the end of the run; any plan whose windows all close
	// must end with zero.
	Stranded int
}

// settleQuantum is the poll interval of a finished rank waiting out the
// settle horizon, and settleMargin is how far past the last fault
// recovery the run keeps every rank alive: enough for a final bounce to
// travel home, wait out a retry backoff, and be resent — several times
// over, since chained faults can bounce one frame more than once.
const (
	settleQuantum = 10 * sim.Microsecond
	settleSlack   = 200 * sim.Microsecond
)

// settleTime computes the instant by which a run under ws has quiesced:
// the last recovery, plus retry/backoff slack. Zero for an empty plan.
func settleTime(ws []myrinet.FaultWindow, retry sim.Duration) sim.Time {
	var last sim.Time
	for _, w := range ws {
		if w.End > last {
			last = w.End
		}
	}
	if last == 0 {
		return 0
	}
	// Routing trusts a recovered component only DetectLag after the
	// wire does, and stranded bounces are released at that detection
	// toggle — the settle horizon starts there.
	return last.Add(myrinet.DetectLag + 8*retry + settleSlack)
}

// The per-rank drive body is fmRank (drivecore.go) with the last-
// delivery hook and the settle horizon enabled: faulted runs measure
// Elapsed from the last handler dispatch, and every rank polls past the
// final recovery so late bounces drain.

// DriveFMFaults runs the pattern through the full FM stack with the
// compiled fault timeline installed on the fabric. An empty timeline
// reduces to DriveFM's behavior plus the last-delivery Elapsed
// definition. Panics if any message goes undelivered or any frame stays
// stranded — a plan whose windows all close guarantees neither happens.
func DriveFMFaults(spec FabricSpec, cfg core.Config, p *cost.Params, pat Pattern, size int, ws []myrinet.FaultWindow) FaultResult {
	c := cluster.NewFMFrom(spec.Build, cfg, p)
	n := c.Fab.Nodes()
	c.Fab.ApplyFaults(ws)

	base, sends, expect, maxSize := prepare(spec, pat, size, c.Fab)
	res := FaultResult{Result: base}
	settleAt := settleTime(ws, cfg.RetryDelay)

	slab := make([]byte, n*maxSize)
	lasts := make([]sim.Time, n)
	for id := 0; id < n; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			fmRank(ep, sends[id], expect[id], size, slab[id*maxSize:(id+1)*maxSize],
				&res.Latency, &lasts[id], settleAt)
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	var last sim.Time
	for _, t := range lasts {
		if t > last {
			last = t
		}
	}
	res.Elapsed = sim.Duration(last)
	for _, ep := range c.EPs {
		mergeCoreStats(&res.Stats, ep.Stats())
	}
	res.Fault = c.Fab.FaultStats()
	res.Stranded = c.Fab.PendingStranded()
	checkFaultRun(&res, spec.Name, pat.Name())
	return res
}

// DriveFMFaultsSharded is DriveFMFaults split over `shards` kernels.
// Every replica installs the identical timeline: toggles fire at the
// same virtual instants on each replica's own kernel, so the replicas'
// routers never disagree and cross-shard merges stay deterministic.
func DriveFMFaultsSharded(spec FabricSpec, cfg core.Config, p *cost.Params, pat Pattern, size int, ws []myrinet.FaultWindow, shards int) FaultResult {
	if shards <= 1 {
		return DriveFMFaults(spec, cfg, p, pat, size, ws)
	}
	c, err := cluster.NewFMShardedFrom(spec.Build, cfg, p, shards)
	if err != nil {
		panic(fmt.Sprintf("workload: %s: %v", spec.Name, err))
	}
	n := len(c.EPs)
	for _, f := range c.Fabs {
		f.ApplyFaults(ws)
	}

	base, sends, expect, maxSize := prepare(spec, pat, size, c.Fabs...)
	res := FaultResult{Result: base}
	settleAt := settleTime(ws, cfg.RetryDelay)

	slab := make([]byte, n*maxSize)
	lasts := make([]sim.Time, n)
	hists := make([]stats.Histogram, shards)
	for id := 0; id < n; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			fmRank(ep, sends[id], expect[id], size, slab[id*maxSize:(id+1)*maxSize],
				&hists[c.Part.NodeShard[id]], &lasts[id], settleAt)
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	mergeLatency(&res.Result, hists)
	var last sim.Time
	for _, t := range lasts {
		if t > last {
			last = t
		}
	}
	res.Elapsed = sim.Duration(last)
	res.Shards = c.Group.Stats()
	for _, ep := range c.EPs {
		mergeCoreStats(&res.Stats, ep.Stats())
	}
	for _, f := range c.Fabs {
		res.Fault.Merge(f.FaultStats())
		res.Stranded += f.PendingStranded()
	}
	checkFaultRun(&res, spec.Name, pat.Name())
	return res
}

// mergeCoreStats sums one endpoint's counters into the aggregate.
func mergeCoreStats(dst *core.Stats, s core.Stats) {
	dst.Sent += s.Sent
	dst.Delivered += s.Delivered
	dst.AcksSent += s.AcksSent
	dst.AcksPiggybacked += s.AcksPiggybacked
	dst.SeqsAcked += s.SeqsAcked
	dst.RejectsSent += s.RejectsSent
	dst.RejectsReceived += s.RejectsReceived
	dst.NetBounces += s.NetBounces
	dst.Retransmits += s.Retransmits
	dst.Duplicates += s.Duplicates
	dst.SendBlocks += s.SendBlocks
}

// checkFaultRun enforces the reliability contract after a faulted run:
// everything delivered exactly once, nothing stranded in the fabric.
func checkFaultRun(res *FaultResult, fabric, pattern string) {
	if int(res.Stats.Delivered) != res.Messages {
		panic(fmt.Sprintf("workload: %s on %s under faults delivered %d/%d messages",
			pattern, fabric, res.Stats.Delivered, res.Messages))
	}
	if res.Stranded != 0 {
		panic(fmt.Sprintf("workload: %s on %s under faults left %d frames stranded",
			pattern, fabric, res.Stranded))
	}
	if res.Stats.Duplicates != 0 {
		panic(fmt.Sprintf("workload: %s on %s under faults delivered %d duplicates",
			pattern, fabric, res.Stats.Duplicates))
	}
}
