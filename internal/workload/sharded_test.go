package workload

import (
	"testing"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

// TestDriveRawShardedDelegatesAtOne pins the `-shards 1` contract at
// the driver level: shards=1 must be the single-kernel path itself,
// not a one-shard group that happens to agree.
func TestDriveRawShardedDelegatesAtOne(t *testing.T) {
	p := cost.Default()
	pat := UniformRandom{Seed: 7, Packets: 8}
	a := DriveRaw(ClosSpec(32), p, pat, 112)
	b := DriveRawSharded(ClosSpec(32), p, pat, 112, 1)
	if a.Elapsed != b.Elapsed || a.Messages != b.Messages || a.Latency.Count() != b.Latency.Count() ||
		a.Latency.Mean() != b.Latency.Mean() || a.MeanHops != b.MeanHops {
		t.Fatalf("shards=1 diverged from DriveRaw:\n got %+v\nwant %+v", b, a)
	}
}

// TestDriveRawShardedDeterministic runs the same contended sharded
// drive twice and requires identical results — the fixed-shard-count
// determinism invariant.
func TestDriveRawShardedDeterministic(t *testing.T) {
	p := cost.Default()
	pat := AllToAll{Rounds: 1}
	a := DriveRawSharded(ClosSpec(64), p, pat, 112, 4)
	b := DriveRawSharded(ClosSpec(64), p, pat, 112, 4)
	if a.Elapsed != b.Elapsed || a.Latency.Mean() != b.Latency.Mean() || a.Latency.Max() != b.Latency.Max() {
		t.Fatalf("repeated sharded runs diverged: %v/%v vs %v/%v",
			a.Elapsed, a.Latency.Mean(), b.Elapsed, b.Latency.Mean())
	}
}

// TestShardedRawRegression pins the `-shards 2` outcome for the
// fabrics-style Clos-64 all-to-all point, so any change to the barrier,
// merge order, or partition assignment shows up as a diff here instead
// of silently shifting published numbers.
func TestShardedRawRegression(t *testing.T) {
	p := cost.Default()
	res := DriveRawSharded(ClosSpec(64), p, AllToAll{Rounds: 1}, 112, 2)
	if res.Messages != 64*63 {
		t.Fatalf("messages = %d, want %d", res.Messages, 64*63)
	}
	if res.Latency.Count() != uint64(res.Messages) {
		t.Fatalf("latency samples = %d, want %d", res.Latency.Count(), res.Messages)
	}
	// The pinned completion time of this exact configuration (102.95us).
	const wantElapsed = 102950000 * sim.Picosecond
	if res.Elapsed != wantElapsed {
		t.Fatalf("elapsed = %d ps (%v), pinned %d ps (%v)", res.Elapsed, res.Elapsed, wantElapsed, wantElapsed)
	}
}

// TestShardedFMSmall runs the full FM stack across 2 shards on a small
// Clos and checks completion, delivery accounting, and determinism.
func TestShardedFMSmall(t *testing.T) {
	p := cost.Default()
	cfg := core.DefaultConfig()
	a := DriveFMSharded(ClosSpec(16), cfg, p, AllToAll{Rounds: 1}, 112, 2)
	if a.Messages != 16*15 {
		t.Fatalf("messages = %d, want %d", a.Messages, 16*15)
	}
	if a.Latency.Count() != uint64(a.Messages) {
		t.Fatalf("latency samples = %d, want %d", a.Latency.Count(), a.Messages)
	}
	b := DriveFMSharded(ClosSpec(16), cfg, p, AllToAll{Rounds: 1}, 112, 2)
	if a.Elapsed != b.Elapsed || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("repeated sharded FM runs diverged: %v vs %v", a.Elapsed, b.Elapsed)
	}
	t.Logf("sharded FM clos-16: elapsed=%v meanLat=%v", a.Elapsed, a.Latency.Mean())
}
