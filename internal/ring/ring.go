// Package ring provides the bounded FIFO queue used for every queue in
// the FM design: the LANai send and receive queues, the host receive
// queue, and the host reject queue (paper Figure 6).
//
// The structure mirrors the paper's producer/consumer counter scheme
// (Section 4.4): the producer owns a monotonically increasing "sent"
// counter and the consumer owns a trailing counter, so each side can keep
// its own counter in a register and synchronization reduces to reading
// the other side's counter. Produced and Consumed expose those counters
// so the simulated host/LANai coordination can match the paper exactly.
package ring

import "fmt"

// Ring is a bounded FIFO queue with monotonic producer/consumer counters.
// The zero value is not usable; construct with New.
type Ring[T any] struct {
	buf      []T
	produced uint64 // total items ever pushed (the paper's hostsent)
	consumed uint64 // total items ever popped (the paper's lanaisent)
	name     string
}

// New returns an empty ring holding at most capacity items.
func New[T any](name string, capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ring %q: capacity %d must be positive", name, capacity))
	}
	return &Ring[T]{buf: make([]T, capacity), name: name}
}

// Name returns the queue's diagnostic name.
func (r *Ring[T]) Name() string { return r.name }

// Cap returns the queue capacity in items.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of items currently queued.
func (r *Ring[T]) Len() int { return int(r.produced - r.consumed) }

// Free returns the remaining capacity.
func (r *Ring[T]) Free() int { return r.Cap() - r.Len() }

// Empty reports whether the queue holds no items.
func (r *Ring[T]) Empty() bool { return r.produced == r.consumed }

// Full reports whether the queue is at capacity.
func (r *Ring[T]) Full() bool { return r.Len() == len(r.buf) }

// Produced returns the total number of items ever pushed. This is the
// producer-owned counter of the paper's counter pair.
func (r *Ring[T]) Produced() uint64 { return r.produced }

// Consumed returns the total number of items ever popped: the
// consumer-owned counter, which "always trails" Produced by Len.
func (r *Ring[T]) Consumed() uint64 { return r.consumed }

// Push appends v. It panics on overflow: callers model flow control
// explicitly and must check Full first, as the real host and LCP do.
func (r *Ring[T]) Push(v T) {
	if r.Full() {
		panic(fmt.Sprintf("ring %q: push on full queue (cap %d)", r.name, len(r.buf)))
	}
	r.buf[r.produced%uint64(len(r.buf))] = v
	r.produced++
}

// TryPush appends v and reports success, refusing on a full queue.
func (r *Ring[T]) TryPush(v T) bool {
	if r.Full() {
		return false
	}
	r.Push(v)
	return true
}

// Pop removes and returns the oldest item. It panics on underflow.
func (r *Ring[T]) Pop() T {
	if r.Empty() {
		panic(fmt.Sprintf("ring %q: pop on empty queue", r.name))
	}
	i := r.consumed % uint64(len(r.buf))
	v := r.buf[i]
	var zero T
	r.buf[i] = zero // release references
	r.consumed++
	return v
}

// TryPop removes the oldest item if one exists.
func (r *Ring[T]) TryPop() (T, bool) {
	if r.Empty() {
		var zero T
		return zero, false
	}
	return r.Pop(), true
}

// Peek returns the oldest item without removing it.
func (r *Ring[T]) Peek() T {
	if r.Empty() {
		panic(fmt.Sprintf("ring %q: peek on empty queue", r.name))
	}
	return r.buf[r.consumed%uint64(len(r.buf))]
}

// PeekAt returns the i-th oldest item (0 = head) without removing it.
func (r *Ring[T]) PeekAt(i int) T {
	if i < 0 || i >= r.Len() {
		panic(fmt.Sprintf("ring %q: peek index %d out of range (len %d)", r.name, i, r.Len()))
	}
	return r.buf[(r.consumed+uint64(i))%uint64(len(r.buf))]
}

// Drain pops every queued item into a new slice, oldest first.
func (r *Ring[T]) Drain() []T {
	out := make([]T, 0, r.Len())
	for !r.Empty() {
		out = append(out, r.Pop())
	}
	return out
}

// Reset empties the queue without resetting the counters (counters are
// monotonic for the life of the queue, as in the paper's scheme).
func (r *Ring[T]) Reset() {
	for !r.Empty() {
		r.Pop()
	}
}
