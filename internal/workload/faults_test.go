package workload

import (
	"strings"
	"testing"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

func TestParseFaultPlanRoundTrip(t *testing.T) {
	text := "link 3 10 40; switch 1 20 60\nnode 0 5 15; loss 2 30 50; corrupt 4 1 99"
	p, err := ParseFaultPlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(p.Events))
	}
	want := []FaultEvent{
		{myrinet.LinkFault, 3, 10, 40},
		{myrinet.SwitchFault, 1, 20, 60},
		{myrinet.NodeFault, 0, 5, 15},
		{myrinet.LossBurst, 2, 30, 50},
		{myrinet.CorruptBurst, 4, 1, 99},
	}
	for i, e := range p.Events {
		if e != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	// String renders the canonical text; parsing it again is identical.
	again, err := ParseFaultPlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Events) != len(p.Events) {
		t.Fatalf("round-trip lost events: %v vs %v", again.Events, p.Events)
	}
	for i := range again.Events {
		if again.Events[i] != p.Events[i] {
			t.Fatalf("round-trip event %d = %+v, want %+v", i, again.Events[i], p.Events[i])
		}
	}
}

func TestParseFaultPlanIgnoresNoise(t *testing.T) {
	p, err := ParseFaultPlan("  # a comment\n\nlink 0 1 2 # trailing\n;;\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 || p.Events[0] != (FaultEvent{myrinet.LinkFault, 0, 1, 2}) {
		t.Fatalf("parsed %+v", p.Events)
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, bad := range []string{
		"link 0 1",     // too few fields
		"link 0 1 2 3", // too many
		"quark 0 1 2",  // unknown kind
		"link x 1 2",   // bad index
		"link 0 x 2",   // bad start
		"link 0 1 x",   // bad end
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestFaultPlanWindowsValidates(t *testing.T) {
	spec := ClosSpec(16)
	topo := spec.Build(sim.NewKernel(), cost.Default()).Topology()
	ok := FaultPlan{Events: []FaultEvent{{myrinet.LinkFault, 0, 10, 20}}}
	if _, err := ok.Windows(topo, 100); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []FaultEvent{
		{myrinet.LinkFault, topo.NumLinks(), 10, 20},    // link index range
		{myrinet.SwitchFault, topo.NumSwitches(), 1, 2}, // switch index range
		{myrinet.NodeFault, -1, 1, 2},                   // negative index
		{myrinet.LinkFault, 0, 20, 20},                  // empty window
		{myrinet.LinkFault, 0, -5, 20},                  // negative start
		{myrinet.LinkFault, 0, 10, 200},                 // past horizon
	} {
		p := FaultPlan{Events: []FaultEvent{bad}}
		if _, err := p.Windows(topo, 100); err == nil {
			t.Fatalf("Windows accepted %+v", bad)
		}
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	spec := ClosSpec(32)
	topo := spec.Build(sim.NewKernel(), cost.Default()).Topology()
	a := RandomFaultPlan(1995, topo, 6, 400)
	b := RandomFaultPlan(1995, topo, 6, 400)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	if len(a.Events) != 6 {
		t.Fatalf("generated %d events, want 6", len(a.Events))
	}
	if _, err := a.Windows(topo, 400); err != nil {
		t.Fatalf("generated plan does not validate: %v", err)
	}
	c := RandomFaultPlan(7, topo, 6, 400)
	if a.String() == c.String() {
		t.Fatal("different seeds produced the same plan")
	}
}

// TestDriveFMFaultsDelivers is the pipeline smoke: a mid-run link kill
// plus a loss burst on a 16-node Clos still delivers every all-to-all
// message, with the retransmit machinery visibly exercised.
func TestDriveFMFaultsDelivers(t *testing.T) {
	spec := ClosSpec(16)
	topo := spec.Build(sim.NewKernel(), cost.Default()).Topology()
	plan := FaultPlan{Events: []FaultEvent{
		{myrinet.LinkFault, 0, 20, 120},
		{myrinet.LossBurst, 3, 30, 90},
	}}
	ws, err := plan.Windows(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := DriveFMFaults(spec, core.DefaultConfig(), cost.Default(), AllToAll{Rounds: 2}, 64, ws)
	if int(res.Stats.Delivered) != res.Messages {
		t.Fatalf("delivered %d/%d", res.Stats.Delivered, res.Messages)
	}
	if res.Stranded != 0 {
		t.Fatalf("%d frames stranded", res.Stranded)
	}
	if res.Fault.Downs() == 0 || res.Fault.Recoveries == 0 {
		t.Fatalf("fault toggles unobserved: %+v", res.Fault)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("Elapsed = %v", res.Elapsed)
	}
}

// TestDriveFMFaultsEmptyPlanMatchesDriveFM pins the no-fault behavior:
// with no windows the fault driver observes the same traffic as DriveFM
// (message totals and latency distribution; Elapsed is defined
// differently — last delivery vs. cluster quiescence — so it is only
// bounded, not equal).
func TestDriveFMFaultsEmptyPlanMatchesDriveFM(t *testing.T) {
	spec := ClosSpec(16)
	cfg := core.DefaultConfig()
	p := cost.Default()
	pat := AllToAll{Rounds: 1}
	clean := DriveFM(spec, cfg, p, pat, 64)
	faulted := DriveFMFaults(spec, cfg, p, pat, 64, nil)
	if faulted.Messages != clean.Messages || faulted.PayloadBytes != clean.PayloadBytes {
		t.Fatalf("totals differ: %+v vs %+v", faulted.Result, clean)
	}
	if faulted.Latency.Summary() != clean.Latency.Summary() {
		t.Fatal("latency distribution differs with an empty plan")
	}
	if faulted.Elapsed > clean.Elapsed {
		t.Fatalf("last delivery %v after quiescence %v", faulted.Elapsed, clean.Elapsed)
	}
	if faulted.Stats.Retransmits != 0 || faulted.Stats.NetBounces != 0 || faulted.Fault.Downs() != 0 {
		t.Fatalf("phantom fault activity on an empty plan: %+v %+v", faulted.Stats, faulted.Fault)
	}
}

// TestDriveFMFaultsShardedAgrees drives the same plan single-kernel and
// across 2 and 4 shards: delivery is complete everywhere and the
// contention-invariant aggregates agree (totals, zero stranding, zero
// duplicates); timing-dependent counters may differ across shard counts
// within the reservation-order ambiguity documented in sharded.go.
func TestDriveFMFaultsShardedAgrees(t *testing.T) {
	spec := ClosSpec(32)
	cfg := core.DefaultConfig()
	p := cost.Default()
	topo := spec.Build(sim.NewKernel(), p).Topology()
	plan := RandomFaultPlan(42, topo, 5, 300)
	ws, err := plan.Windows(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	pat := AllToAll{Rounds: 1}
	single := DriveFMFaults(spec, cfg, p, pat, 64, ws)
	for _, shards := range []int{2, 4} {
		sh := DriveFMFaultsSharded(spec, cfg, p, pat, 64, ws, shards)
		if sh.Messages != single.Messages || int(sh.Stats.Delivered) != sh.Messages {
			t.Fatalf("shards=%d delivered %d/%d (single %d)", shards, sh.Stats.Delivered, sh.Messages, single.Messages)
		}
		if sh.Stranded != 0 || sh.Stats.Duplicates != 0 {
			t.Fatalf("shards=%d stranded=%d duplicates=%d", shards, sh.Stranded, sh.Stats.Duplicates)
		}
		if sh.Fault.Downs() != single.Fault.Downs() || sh.Fault.Recoveries != single.Fault.Recoveries {
			t.Fatalf("shards=%d toggle counts diverge: %+v vs %+v", shards, sh.Fault, single.Fault)
		}
	}
	// And a fixed shard count reproduces itself exactly.
	a := DriveFMFaultsSharded(spec, cfg, p, pat, 64, ws, 2)
	b := DriveFMFaultsSharded(spec, cfg, p, pat, 64, ws, 2)
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats || a.Fault != b.Fault ||
		a.Latency.Summary() != b.Latency.Summary() {
		t.Fatal("sharded faulted run is not reproducible")
	}
}

// FuzzParseFaultPlan asserts the decoder never panics and that every
// accepted plan round-trips through its canonical rendering.
func FuzzParseFaultPlan(f *testing.F) {
	f.Add("link 3 10 40; switch 1 20 60")
	f.Add("node 0 5 15\nloss 2 30 50")
	f.Add("# only a comment")
	f.Add("corrupt 4 -1 -2;;; link")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseFaultPlan(s)
		if err != nil {
			return
		}
		again, err := ParseFaultPlan(p.String())
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", p.String(), err)
		}
		if len(again.Events) != len(p.Events) {
			t.Fatalf("round trip changed event count: %d vs %d", len(again.Events), len(p.Events))
		}
		for i := range again.Events {
			if again.Events[i] != p.Events[i] {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, again.Events[i], p.Events[i])
			}
		}
		_ = strings.TrimSpace(s)
	})
}
