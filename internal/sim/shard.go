package sim

import (
	"fmt"
	"sort"
	"time"
)

// Conservative parallel simulation: a ShardGroup runs N kernels in
// lockstep time windows. Each shard owns a disjoint piece of the model
// and runs its own event loop; anything one shard schedules on another
// must lie at least one lookahead window in the future (the
// Chandy-Misra-Bryant discipline — here the window is the minimum
// cross-shard link latency, so the model itself guarantees the bound).
//
// Every barrier round:
//
//  1. The coordinator picks T, the earliest pending instant across all
//     shards, and sets the window horizon to T+window-1.
//  2. Every shard with work inside the window runs its kernel up to the
//     horizon on its own goroutine (Kernel.Step), accumulating
//     cross-shard posts in per-destination outboxes.
//  3. At the barrier the outboxes are exchanged: each destination's
//     inbox is sorted by (at, source shard, post seq) and scheduled
//     into its kernel in that order.
//
// Lookahead makes step 2 safe — no event inside [T, T+window) can be
// created by another shard during the round, because posts land at
// >= now+window > horizon. The merge order in step 3 makes the whole
// run deterministic: inbox events are assigned local seq numbers in a
// canonical order that does not depend on goroutine scheduling, so
// every kernel pops its queue in exactly the same (at, seq) order on
// every run, at any host parallelism.

// xevent is one cross-shard post buffered in an outbox between
// barriers: an event plus the (source shard, post sequence) pair that
// canonically orders same-instant boundary events during the merge.
type xevent struct {
	at  Time
	src int
	seq uint64
	fn  func(any)
	arg any
}

// ShardStats reports one shard's share of a ShardGroup run.
type ShardStats struct {
	// Events is the number of events the shard's kernel executed.
	Events uint64
	// Posted counts cross-shard events this shard sent.
	Posted uint64
	// Windows counts barrier rounds in which the shard had work.
	Windows uint64
	// Busy is the wall-clock time the shard's goroutine spent running
	// its kernel (not waiting at barriers).
	Busy time.Duration
}

// Shard is one member kernel of a ShardGroup.
type Shard struct {
	g   *ShardGroup
	id  int
	k   *Kernel
	out [][]xevent // per-destination outbox, drained at each barrier
	seq uint64     // post sequence, monotone across the run

	stats ShardStats
}

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Kernel returns the shard's kernel. Model construction schedules on it
// directly; during a run it must only be touched by events executing on
// it (single-kernel discipline, per shard).
func (s *Shard) Kernel() *Kernel { return s.k }

// Post schedules fn(arg) at absolute time at on shard dst. Posts to the
// shard itself schedule directly; posts to another shard are buffered
// in the outbox and delivered at the next barrier. A cross-shard post
// closer than one lookahead window violates the conservative-execution
// contract and panics: the destination may already have simulated past
// that instant.
func (s *Shard) Post(dst int, at Time, fn func(any), arg any) {
	if dst == s.id {
		s.k.AtArg(at, fn, arg)
		return
	}
	if at < s.k.now.Add(s.g.window) {
		panic(fmt.Sprintf("sim: shard %d posted to shard %d at %v, under the %v lookahead window (now %v)",
			s.id, dst, at, s.g.window, s.k.now))
	}
	s.seq++
	s.stats.Posted++
	s.out[dst] = append(s.out[dst], xevent{at: at, src: s.id, seq: s.seq, fn: fn, arg: arg})
}

// ShardGroup coordinates n shard kernels through windowed barriers.
type ShardGroup struct {
	window  Duration
	shards  []*Shard
	windows uint64

	inbox []xevent // merge scratch, reused across barriers
}

// NewShardGroup creates n shards with the given lookahead window. The
// window must be positive when n > 1: it is the guarantee that makes
// running the shards concurrently safe.
func NewShardGroup(n int, window Duration) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: shard group needs at least one shard, got %d", n))
	}
	if n > 1 && window <= 0 {
		panic(fmt.Sprintf("sim: %d shards need a positive lookahead window, got %v", n, window))
	}
	g := &ShardGroup{window: window}
	for i := 0; i < n; i++ {
		s := &Shard{g: g, id: i, k: NewKernel(), out: make([][]xevent, n)}
		g.shards = append(g.shards, s)
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// Window returns the group's lookahead window.
func (g *ShardGroup) Window() Duration { return g.window }

// Windows returns the number of barrier rounds executed so far.
func (g *ShardGroup) Windows() uint64 { return g.windows }

// Stats returns a snapshot of every shard's counters, indexed by shard.
func (g *ShardGroup) Stats() []ShardStats {
	out := make([]ShardStats, len(g.shards))
	for i, s := range g.shards {
		out[i] = s.stats
	}
	return out
}

// Now returns the latest virtual instant any shard has reached — the
// group-level analogue of Kernel.Now after a run.
func (g *ShardGroup) Now() Time {
	var t Time
	for _, s := range g.shards {
		if n := s.k.Now(); n > t {
			t = n
		}
	}
	return t
}

// Run executes every shard to quiescence — no pending events anywhere,
// no undelivered cross-shard posts — then unwinds each shard's parked
// processes in shard order. It returns the first failure by (shard,
// kernel) order. Run may only be called once per group.
func (g *ShardGroup) Run() error {
	n := len(g.shards)
	if n == 1 {
		// Degenerate group: no barriers, no worker handoff — exactly a
		// single-kernel run.
		s := g.shards[0]
		err := s.k.RunAll()
		s.stats.Events = s.k.EventsRun()
		return err
	}

	start := make([]chan Time, n)
	for i := range start {
		start[i] = make(chan Time, 1)
	}
	done := make(chan int, n)
	errs := make([]error, n)
	// panics[i] is written only by shard i's goroutine: an event
	// callback that panics on a shard must reach the Run caller, the
	// same propagation a single-kernel Run gives its caller.
	panics := make([]any, n)
	for _, s := range g.shards {
		s := s
		go func() {
			for horizon := range start[s.id] {
				began := time.Now()
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[s.id] = r
						}
					}()
					errs[s.id] = s.k.Step(horizon)
				}()
				s.stats.Busy += time.Since(began)
				s.stats.Windows++
				done <- s.id
			}
		}()
	}
	defer func() {
		for i := range start {
			close(start[i])
		}
	}()

	for {
		// Pick the next window: [T, T+window) from the earliest pending
		// instant anywhere.
		var (
			base Time
			any  bool
		)
		for _, s := range g.shards {
			if at, ok := s.k.NextEventAt(); ok && (!any || at < base) {
				base, any = at, true
			}
		}
		if !any {
			break
		}
		horizon := base.Add(g.window) - 1
		if horizon < base { // window butts against MaxTime
			horizon = MaxTime
		}
		g.windows++

		// Dispatch every shard with work inside the window; the rest
		// keep their clocks parked and cost nothing this round.
		dispatched := 0
		for _, s := range g.shards {
			if at, ok := s.k.NextEventAt(); ok && at <= horizon {
				start[s.id] <- horizon
				dispatched++
			}
		}
		for i := 0; i < dispatched; i++ {
			<-done
		}
		failed := false
		for i := range g.shards {
			if errs[i] != nil || panics[i] != nil {
				failed = true
				break
			}
		}
		if failed {
			break
		}
		g.exchange()
	}

	// Teardown in shard order keeps process unwinding deterministic.
	// Cross-shard posts buffered by a failed round are dropped — their
	// destinations never advance to them, exactly as a single kernel
	// abandons its queue beyond the failure.
	for _, s := range g.shards {
		s.stats.Events = s.k.EventsRun()
		if panics[s.id] != nil {
			continue // a panicked shard's kernel state is indeterminate
		}
		if err := s.k.Finish(); err != nil && errs[s.id] == nil {
			errs[s.id] = err
		}
	}
	for i := range g.shards {
		if panics[i] != nil {
			panic(panics[i])
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// exchange runs one barrier: every outbox drains into its destination
// kernel in the canonical (at, source shard, post seq) order, which
// assigns boundary events their local seq numbers deterministically.
func (g *ShardGroup) exchange() {
	for _, dst := range g.shards {
		in := g.inbox[:0]
		for _, src := range g.shards {
			box := src.out[dst.id]
			in = append(in, box...)
			clearX(box)
			src.out[dst.id] = box[:0]
		}
		if len(in) == 0 {
			continue
		}
		sort.Slice(in, func(a, b int) bool {
			x, y := &in[a], &in[b]
			if x.at != y.at {
				return x.at < y.at
			}
			if x.src != y.src {
				return x.src < y.src
			}
			return x.seq < y.seq
		})
		for i := range in {
			dst.k.AtArg(in[i].at, in[i].fn, in[i].arg)
		}
		clearX(in)
		g.inbox = in[:0]
	}
}

// clearX zeroes a drained xevent slice so buffered fn/arg references do
// not pin their objects until the slice is next overwritten.
func clearX(box []xevent) {
	for i := range box {
		box[i] = xevent{}
	}
}
