package sim

import (
	"fmt"
	"sort"
)

// Kernel is the event loop at the heart of a simulation. It owns the
// virtual clock and the event queue and coordinates process scheduling.
// A Kernel (and everything scheduled on it) must be driven from a single
// goroutine; process goroutines are synchronized internally so that only
// one of them is ever runnable at a time.
type Kernel struct {
	now     Time
	heap    eventHeap
	seq     uint64
	stopped bool
	failure error

	// yield is the handoff channel on which a running process returns
	// control to the kernel. It is unbuffered: resuming a process and
	// waiting for it to block again is a strict rendezvous.
	yield chan struct{}

	// parked holds processes blocked on a Signal (as opposed to a timed
	// sleep, which keeps a pending event alive). Stop uses it to unwind
	// their goroutines.
	parked map[*Proc]struct{}

	procs     int // live process count
	nextProc  int
	trace     *Trace
	eventsRun uint64
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsRun reports how many events the kernel has executed, which is a
// useful determinism fingerprint in tests.
func (k *Kernel) EventsRun() uint64 { return k.eventsRun }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) At(t Time, fn func()) {
	k.AtArg(t, callClosure, fn)
}

// AtArg schedules fn(arg) at absolute time t. This is the
// allocation-free form of At: hot schedule sites pass a package-level
// function and a pointer argument instead of building a closure per
// event. arg must not be retained by the caller in a way that outlives
// the event unless that is intended.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.heap.Push(event{at: t, seq: k.seq, fn: fn, arg: arg})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now.Add(d), fn)
}

// AfterArg schedules fn(arg) to run d after the current time (the
// allocation-free form of After).
func (k *Kernel) AfterArg(d Duration, fn func(any), arg any) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.AtArg(k.now.Add(d), fn, arg)
}

// Run executes events until the queue is empty or the horizon is reached,
// then unwinds any processes still parked on signals. horizon may be
// MaxTime for an unbounded run. It returns the first process failure, if
// any process panicked.
func (k *Kernel) Run(horizon Time) error {
	for k.heap.Len() > 0 && k.failure == nil {
		if k.heap.Peek().at > horizon {
			break
		}
		e := k.heap.Pop()
		k.now = e.at
		k.eventsRun++
		e.call()
	}
	k.stopParked()
	return k.failure
}

// RunAll is Run with an unbounded horizon.
func (k *Kernel) RunAll() error { return k.Run(MaxTime) }

// stopParked wakes every process blocked on a signal with the stop
// sentinel so its goroutine can exit. Timed sleepers are abandoned (their
// wake events were drained or are beyond the horizon); their goroutines
// are released the same way if their events remain.
func (k *Kernel) stopParked() {
	k.stopped = true
	for len(k.parked) > 0 {
		// Deterministic order: lowest process id first.
		ps := make([]*Proc, 0, len(k.parked))
		for p := range k.parked {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
		for _, p := range ps {
			if _, still := k.parked[p]; still {
				delete(k.parked, p)
				k.resumeProc(p)
			}
		}
	}
	// Any remaining timed sleepers still hold pending wake events; run
	// them so the goroutines observe stopped and unwind.
	for k.heap.Len() > 0 {
		e := k.heap.Pop()
		// Do not advance the clock during teardown.
		e.call()
	}
}

// resumeProc transfers control to p and waits for it to block again or
// terminate. Must only be called from kernel context.
func (k *Kernel) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// fail records the first process failure; the run loop stops on the next
// iteration.
func (k *Kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
}
