package workload

import (
	"testing"

	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/sim"
)

// TestResilienceSingleFault is the resilience property test: on
// randomized two-level Clos topologies, any single link or switch
// failure opening mid-traffic still delivers 100% of an all-to-all
// pattern — nothing lost, nothing stranded, no duplicates — and the
// retransmit machinery is visibly exercised (the fault lands while
// packets are in flight, so at least one bounces and resends). The
// property must hold identically split across 1, 2, 4, and 8 shard
// kernels. Everything derives from the seed, so a passing seed passes
// forever.
func TestResilienceSingleFault(t *testing.T) {
	cfg := core.DefaultConfig()
	p := cost.Default()
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		r := newSplitMix64(seed, 0xc105)
		// Both sizes have 8 leaf groups, the shard ceiling this test
		// needs; which one, and which component dies, varies per seed.
		nodes := 32
		if r.next()%2 == 1 {
			nodes = 64
		}
		spec := ClosSpec(nodes)
		topo := spec.Build(sim.NewKernel(), p).Topology()

		ev := FaultEvent{Kind: myrinet.LinkFault, Index: int(r.next() % uint64(topo.NumLinks()))}
		if r.next()%2 == 1 {
			var spines []int
			for sw := 0; sw < topo.NumSwitches(); sw++ {
				if !topo.HostsNodes(sw) {
					spines = append(spines, sw)
				}
			}
			ev = FaultEvent{Kind: myrinet.SwitchFault, Index: spines[r.next()%uint64(len(spines))]}
		}
		// The window must open while the doomed component actually
		// carries traffic, or there is nothing to bounce: the all-to-all
		// walks destinations in offset order, and on clos-64 every
		// dst in spine s's residue class stays intra-leaf for the first
		// seven offsets, so the spines only get busy ~100us in (clos-32's
		// four-node leaves cross leaves from offset 4, ~30us in). The
		// draw lands mid-busy-phase and closes well before the pattern
		// drains (clean elapsed is ~640us / ~1.2ms).
		if nodes == 64 {
			ev.StartUs = 100 + int64(r.next()%120)
		} else {
			ev.StartUs = 30 + int64(r.next()%70)
		}
		ev.EndUs = ev.StartUs + 50 + int64(r.next()%60)
		ws, err := FaultPlan{Seed: seed, Events: []FaultEvent{ev}}.Windows(topo, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		for _, shards := range []int{1, 2, 4, 8} {
			res := DriveFMFaultsSharded(spec, cfg, p, AllToAll{Rounds: 1}, 64, ws, shards)
			if int(res.Stats.Delivered) != res.Messages {
				t.Fatalf("seed %d (%s %d on clos-%d) shards=%d: delivered %d/%d",
					seed, ev.Kind, ev.Index, nodes, shards, res.Stats.Delivered, res.Messages)
			}
			if res.Stranded != 0 || res.Stats.Duplicates != 0 {
				t.Fatalf("seed %d (%s %d on clos-%d) shards=%d: stranded=%d duplicates=%d",
					seed, ev.Kind, ev.Index, nodes, shards, res.Stranded, res.Stats.Duplicates)
			}
			if res.Stats.Retransmits == 0 {
				t.Fatalf("seed %d (%s %d on clos-%d) shards=%d: fault window [%d,%d)us drew no retransmits (bounced=%d)",
					seed, ev.Kind, ev.Index, nodes, shards, ev.StartUs, ev.EndUs, res.Fault.Bounced)
			}
			if res.Fault.Downs() != 1 || res.Fault.Recoveries != 1 {
				t.Fatalf("seed %d shards=%d: toggles miscounted: %+v", seed, shards, res.Fault)
			}
		}
	}
}
