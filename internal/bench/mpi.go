package bench

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/mpi"
	"fm/internal/sim"
)

// The MPI-layering experiment: the paper positions FM as a substrate
// for communication libraries (MPI first, Section 7), and the
// historical follow-on — MPI-FM — measured what that layering costs.
// This experiment reproduces the comparison in simulation: raw FM vs.
// MPI-on-FM bandwidth and latency sweeps, with Table 2 fits (t0, r_inf,
// n1/2), on the paper's crossbar and on a 2-level Clos where the pair
// communicates across leaf switches. A final segmented curve keeps the
// paper's 128-byte frame fixed so messages above one frame pay
// MPI's segmentation and reassembly.

// mpiPair is one fresh cluster with an MPI world; ranks a and b
// communicate.
type mpiPair struct {
	c    *cluster.FM
	a, b int
}

// mpiPairMaker builds the pair for one measurement at one payload size.
type mpiPairMaker func(size int) mpiPair

// mpiTag is the application tag the drivers use.
const mpiTag = 1

// mpiCrossbar builds the two-node crossbar pair. When frame > 0 the FM
// frame is pinned to that payload (segmentation territory); otherwise
// it is sized so one MPI message fits one fragment, mirroring how
// fmMaker reframes raw FM per size.
func mpiCrossbar(p *cost.Params, frame int) mpiPairMaker {
	return func(size int) mpiPair {
		f := frame
		if f == 0 {
			f = size + mpi.HeaderBytes
		}
		c := cluster.NewFM(2, core.DefaultConfig().WithFrame(f), p)
		return mpiPair{c: c, a: 0, b: 1}
	}
}

// mpiClos builds a 2-spine / 2-leaf Clos with one node per leaf, so the
// pair's traffic crosses leaf -> spine -> leaf.
func mpiClos(p *cost.Params) mpiPairMaker {
	return func(size int) mpiPair {
		c := cluster.NewFMClos(2, 2, 1, 4, core.DefaultConfig().WithFrame(size+mpi.HeaderBytes), p)
		return mpiPair{c: c, a: 0, b: 1}
	}
}

// fmClosPairMaker runs raw FM between the same cross-leaf pair, for the
// like-for-like Clos comparison.
func fmClosPairMaker(cfg core.Config, p *cost.Params) pairMaker {
	return func(size int) metrics.Pair {
		c := cluster.NewFMClos(2, 2, 1, 4, cfg.WithFrame(size), p)
		return metrics.Pair{
			A:      c.EPs[0],
			B:      c.EPs[1],
			StartA: func(app func()) { c.CPUs[0].Start(app) },
			StartB: func(app func()) { c.CPUs[1].Start(app) },
			Run:    c.Run,
		}
	}
}

// mpiStreamPoint measures MPI bandwidth at one size: rank a sends
// `packets` tagged messages as fast as the layers allow; the clock
// stops when rank b's last Recv completes (matching and reassembly
// included, as in the paper's host-level methodology).
func mpiStreamPoint(mk mpiPairMaker, size, packets int) metrics.BWPoint {
	pr := mk(size)
	n := len(pr.c.EPs)
	var start, end sim.Time
	pr.c.Start(pr.b, func(ep *core.Endpoint) {
		comm := mpi.NewWorld(ep, n, 0)
		for i := 0; i < packets; i++ {
			comm.Recv(pr.a, mpiTag)
		}
		end = ep.Now()
	})
	pr.c.Start(pr.a, func(ep *core.Endpoint) {
		comm := mpi.NewWorld(ep, n, 0)
		buf := make([]byte, size)
		start = ep.Now()
		for i := 0; i < packets; i++ {
			comm.Send(pr.b, mpiTag, buf)
		}
	})
	if err := pr.c.Run(); err != nil {
		panic(fmt.Sprintf("bench mpi stream @%dB: %v", size, err))
	}
	elapsed := end.Sub(start)
	return metrics.BWPoint{
		N:         size,
		PerPacket: elapsed / sim.Duration(packets),
		MBps:      metrics.Bandwidth(size, packets, elapsed),
	}
}

// mpiLatPoint measures MPI one-way latency by tagged ping-pong,
// elapsed/(2*rounds) as in Section 4.1.
func mpiLatPoint(mk mpiPairMaker, size, rounds int) metrics.LatPoint {
	pr := mk(size)
	n := len(pr.c.EPs)
	var start, end sim.Time
	pr.c.Start(pr.b, func(ep *core.Endpoint) {
		comm := mpi.NewWorld(ep, n, 0)
		for i := 0; i < rounds; i++ {
			data, _ := comm.Recv(pr.a, mpiTag)
			comm.Send(pr.a, mpiTag, data)
		}
	})
	pr.c.Start(pr.a, func(ep *core.Endpoint) {
		comm := mpi.NewWorld(ep, n, 0)
		buf := make([]byte, size)
		start = ep.Now()
		for i := 0; i < rounds; i++ {
			comm.Send(pr.b, mpiTag, buf)
			comm.Recv(pr.b, mpiTag)
		}
		end = ep.Now()
	})
	if err := pr.c.Run(); err != nil {
		panic(fmt.Sprintf("bench mpi pingpong @%dB: %v", size, err))
	}
	return metrics.LatPoint{N: size, OneWay: end.Sub(start) / sim.Duration(2*rounds)}
}

// mpiCurve sweeps one MPI configuration, parallelizing the independent
// measurements exactly like hostCurve (disjoint result slots, so the
// output is byte-identical at any worker count).
func mpiCurve(name string, mk mpiPairMaker, sizes []int, opt Options, withLat bool) Curve {
	c := Curve{Name: name}
	c.BW = make([]metrics.BWPoint, len(sizes))
	if withLat {
		c.Lat = make([]metrics.LatPoint, len(sizes))
	}
	var jobs []func()
	for i, size := range sizes {
		i, size := i, size
		jobs = append(jobs, func() {
			c.BW[i] = mpiStreamPoint(mk, size, opt.Packets)
		})
		if withLat {
			jobs = append(jobs, func() {
				c.Lat[i] = mpiLatPoint(mk, size, opt.Rounds)
			})
		}
	}
	runParallel(opt.Workers, jobs)
	c.Fit = metrics.FitSweep(c.BW, 0)
	return c
}

// MPILayering regenerates the cost-of-layering comparison: MPI-on-FM
// vs. raw FM on crossbar and Clos fabrics.
func MPILayering(opt Options) *Report {
	p := cost.Default()
	r := &Report{ID: "mpi", Title: "MPI on FM: the cost of layering"}

	curves := make([]Curve, 5)
	jobs := []func(){
		func() {
			curves[0] = hostCurve("Raw FM (crossbar)", fmMaker(cfgFullFM(), p), opt.Sizes, serial(opt), true, 0)
		},
		func() {
			curves[1] = mpiCurve("MPI on FM (crossbar)", mpiCrossbar(p, 0), opt.Sizes, serial(opt), true)
		},
		func() {
			curves[2] = hostCurve("Raw FM (Clos, cross-leaf)", fmClosPairMaker(cfgFullFM(), p), opt.Sizes, serial(opt), true, 0)
		},
		func() {
			curves[3] = mpiCurve("MPI on FM (Clos, cross-leaf)", mpiClos(p), opt.Sizes, serial(opt), true)
		},
		func() {
			curves[4] = mpiCurve("MPI on FM (crossbar, fixed 128B frames, segmented)",
				mpiCrossbar(p, core.DefaultConfig().FramePayload), opt.Sizes, serial(opt), false)
		},
	}
	runParallel(opt.Workers, jobs)
	r.Curves = curves

	raw, layered := curves[0].Fit, curves[1].Fit
	rawClos, layeredClos := curves[2].Fit, curves[3].Fit
	smallLat := func(c Curve) float64 { return c.Lat[0].OneWay.Microseconds() }
	r.KVs = []KV{
		{fmt.Sprintf("crossbar: layering cost in latency @%dB (us)", opt.Sizes[0]),
			fmt.Sprintf("%+.1f", smallLat(curves[1])-smallLat(curves[0])), "a few us (matching + copies)"},
		{"crossbar: layering cost in t0 (us)",
			fmt.Sprintf("%+.1f", layered.T0.Microseconds()-raw.T0.Microseconds()), "matching + header build"},
		{"crossbar: layering cost in r_inf (MB/s)",
			fmt.Sprintf("%+.1f", layered.RInf-raw.RInf), "copies cost ~40%"},
		{"crossbar: n1/2 growth (B)",
			fmt.Sprintf("%+.0f", layered.NHalf-raw.NHalf), "small (t0 and r_inf drop together)"},
		{"clos: layering cost in t0 (us)",
			fmt.Sprintf("%+.1f", layeredClos.T0.Microseconds()-rawClos.T0.Microseconds()), "same software cost"},
		{fmt.Sprintf("clos vs. crossbar: raw FM latency @%dB (us)", opt.Sizes[0]),
			fmt.Sprintf("%+.1f", smallLat(curves[2])-smallLat(curves[0])), "wire + 2 extra switch stages"},
	}
	r.Notes = append(r.Notes,
		"the historical MPI-FM lesson, reproduced: matching and bookkeeping add a fixed few microseconds to every message, and the layer's two extra memory copies (send staging, receive copy-out) cost a large fraction of r_inf — the loss that pushed FM 2.0 toward a gather/scatter interface",
		fmt.Sprintf("MPI fragments carry a %d-byte envelope; single-fragment curves size the frame to the message, the segmented curve pins the paper's 128B frame and pays reassembly above one fragment", mpi.HeaderBytes),
		"clos pair crosses leaf -> spine -> leaf (2 spines x 2 leaves, one node per leaf): the topology's extra latency is visible in raw FM and inherited unchanged by MPI; streaming bandwidth is unaffected because the extra hops pipeline",
	)
	return r
}
