package stream

import (
	"bytes"
	"crypto/sha256"
	"io"
	"math/rand"
	"testing"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/sim"
)

const h = 5 // handler id used by the mux in tests

// transfer pushes data from node 0 to node 1 over one stream and returns
// what node 1 read.
func transfer(t *testing.T, cfg core.Config, data []byte, chunk int) []byte {
	t.Helper()
	c := cluster.NewFM(2, cfg, cost.Default())
	var got []byte
	c.Start(1, func(ep *core.Endpoint) {
		conn := NewMux(ep, h).Open(0, 1)
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
	})
	c.Start(0, func(ep *core.Endpoint) {
		conn := NewMux(ep, h).Open(1, 1)
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := conn.Write(data[off:end]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		if err := conn.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		// Keep pumping acks until the layer quiesces.
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSmallTransfer(t *testing.T) {
	data := []byte("hello fast messages")
	got := transfer(t, core.DefaultConfig(), data, 1000)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 100<<10) // 100 KiB across ~800 frames
	rng.Read(data)
	got := transfer(t, core.DefaultConfig(), data, 8192)
	if len(got) != len(data) {
		t.Fatalf("len = %d, want %d", len(got), len(data))
	}
	if sha256.Sum256(got) != sha256.Sum256(data) {
		t.Fatal("payload hash mismatch")
	}
}

func TestEmptyWriteAndImmediateClose(t *testing.T) {
	got := transfer(t, core.DefaultConfig(), nil, 64)
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

// TestReorderingUnderRejection: a slow consumer with aggressive rejection
// forces return-to-sender retransmissions, which reorder FM delivery; the
// stream must still reconstruct the exact byte sequence. This is the
// paper's "delivery order is not preserved" drawback being repaired one
// layer up.
func TestReorderingUnderRejection(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckInvariants = true
	cfg.HostRecvSlots = 24
	cfg.RejectThreshold = 6
	cfg.DrainLimit = 2
	cfg.WindowSlots = 48
	cfg.RetryDelay = 15 * sim.Microsecond

	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 24<<10)
	rng.Read(data)

	c := cluster.NewFM(2, cfg, cost.Default())
	var got []byte
	sawOOO := false
	var rejects uint64
	c.Start(1, func(ep *core.Endpoint) {
		conn := NewMux(ep, h).Open(0, 1)
		buf := make([]byte, 1024)
		for {
			n, err := conn.Read(buf)
			got = append(got, buf[:n]...)
			if conn.Pending() > 0 {
				sawOOO = true
			}
			// Model a busy receiver so the queue backs up.
			ep.CPU().Advance(25 * sim.Microsecond)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
		rejects = ep.Stats().RejectsSent
	})
	c.Start(0, func(ep *core.Endpoint) {
		conn := NewMux(ep, h).Open(1, 1)
		if _, err := conn.Write(data); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := conn.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("stream corrupted under rejection: %d/%d bytes", len(got), len(data))
	}
	if rejects == 0 {
		t.Log("warning: no rejects triggered; reordering path unexercised this run")
	}
	_ = sawOOO // reordering is configuration-dependent; correctness is what we assert
}

// TestBidirectionalStreams: both directions of one stream id at once.
func TestBidirectionalStreams(t *testing.T) {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	msgA, msgB := bytes.Repeat([]byte("a"), 5000), bytes.Repeat([]byte("b"), 3000)
	var gotA, gotB []byte
	run := func(me int, out []byte, in *[]byte) func(ep *core.Endpoint) {
		return func(ep *core.Endpoint) {
			conn := NewMux(ep, h).Open(1-me, 9)
			if _, err := conn.Write(out); err != nil {
				t.Errorf("write: %v", err)
			}
			if err := conn.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
			b, err := io.ReadAll(conn)
			if err != nil {
				t.Errorf("readall: %v", err)
			}
			*in = b
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		}
	}
	c.Start(0, run(0, msgA, &gotB))
	c.Start(1, run(1, msgB, &gotA))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, msgA) || !bytes.Equal(gotB, msgB) {
		t.Fatalf("bidirectional mismatch: %d/%d and %d/%d",
			len(gotA), len(msgA), len(gotB), len(msgB))
	}
}

// TestMultipleStreamsInterleaved: two stream ids share one mux and one
// handler without crosstalk.
func TestMultipleStreamsInterleaved(t *testing.T) {
	c := cluster.NewFM(2, core.DefaultConfig(), cost.Default())
	d1 := bytes.Repeat([]byte{0x11}, 4000)
	d2 := bytes.Repeat([]byte{0x22}, 6000)
	var got1, got2 []byte
	c.Start(1, func(ep *core.Endpoint) {
		m := NewMux(ep, h)
		c1, c2 := m.Open(0, 1), m.Open(0, 2)
		b1, err := io.ReadAll(c1)
		if err != nil {
			t.Errorf("read 1: %v", err)
		}
		b2, err := io.ReadAll(c2)
		if err != nil {
			t.Errorf("read 2: %v", err)
		}
		got1, got2 = b1, b2
	})
	c.Start(0, func(ep *core.Endpoint) {
		m := NewMux(ep, h)
		c1, c2 := m.Open(1, 1), m.Open(1, 2)
		// Interleave writes between the two streams.
		for off := 0; off < 4000; off += 500 {
			if _, err := c1.Write(d1[off : off+500]); err != nil {
				t.Errorf("w1: %v", err)
			}
			if _, err := c2.Write(d2[off : off+500]); err != nil {
				t.Errorf("w2: %v", err)
			}
		}
		if _, err := c2.Write(d2[4000:]); err != nil {
			t.Errorf("w2 tail: %v", err)
		}
		c1.Close()
		c2.Close()
		for ep.Outstanding() > 0 {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, d1) || !bytes.Equal(got2, d2) {
		t.Fatal("stream crosstalk or loss")
	}
}

// TestRandomChunkSizesProperty: arbitrary write chunkings all reassemble.
func TestRandomChunkSizesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		n := 1 + rng.Intn(20<<10)
		data := make([]byte, n)
		rng.Read(data)
		chunk := 1 + rng.Intn(4096)
		got := transfer(t, core.DefaultConfig(), data, chunk)
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d (n=%d chunk=%d): mismatch", trial, n, chunk)
		}
	}
}
