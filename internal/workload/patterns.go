package workload

import "fmt"

// The pattern catalog. The first two are ports of the traffic the
// fabrics/scale experiments hand-rolled; the rest are the classical
// interconnect stress patterns the paper's successors (and every
// network-simulation suite since) measure.

// AllToAll sends Rounds packets from every rank to every other rank,
// destination order rotated per source so the pattern is not a
// synchronized hotspot sweep.
type AllToAll struct {
	Rounds int
}

// Name implements Pattern.
func (AllToAll) Name() string { return "all-to-all" }

// Gen implements Pattern.
func (a AllToAll) Gen(src, n int) []Send {
	out := make([]Send, 0, a.Rounds*(n-1))
	for r := 0; r < a.Rounds; r++ {
		for off := 1; off < n; off++ {
			out = append(out, Send{Dst: (src + off) % n})
		}
	}
	return out
}

// RankLen implements StreamingPattern.
func (a AllToAll) RankLen(src, n int) int {
	if a.Rounds <= 0 || n <= 1 {
		return 0
	}
	return a.Rounds * (n - 1)
}

// SendAt implements StreamingPattern.
func (a AllToAll) SendAt(src, n, j int) Send {
	return Send{Dst: (src + j%(n-1) + 1) % n}
}

// Bisection pairs rank i with rank (i+n/2)%n: every packet crosses the
// fabric's midline, the worst case for topologies without full
// bisection bandwidth. The pairing needs an even rank count, so the
// pattern implements NodeAdjuster and rounds odd jobs up by one.
type Bisection struct {
	Packets int
}

// Name implements Pattern.
func (Bisection) Name() string { return "bisection" }

// AdjustNodes implements NodeAdjuster: bisection pairing needs an even
// node count.
func (Bisection) AdjustNodes(n int) int {
	if n%2 != 0 {
		n++
	}
	return n
}

// Gen implements Pattern.
func (b Bisection) Gen(src, n int) []Send {
	out := make([]Send, b.Packets)
	for i := range out {
		out[i] = Send{Dst: (src + n/2) % n}
	}
	return out
}

// RankLen implements StreamingPattern.
func (b Bisection) RankLen(src, n int) int { return b.Packets }

// SendAt implements StreamingPattern.
func (b Bisection) SendAt(src, n, j int) Send { return Send{Dst: (src + n/2) % n} }

// UniformRandom sends Packets messages from every rank to destinations
// drawn uniformly from the other n-1 ranks. Each rank's stream is a
// splitmix64 sequence derived from (Seed, src), so the pattern is
// reproducible by construction: no global PRNG, no ordering hazards.
// When MinBytes is positive, each send also draws a payload size
// uniformly from [MinBytes, MaxBytes] (an inverted range is a
// programming error and panics); otherwise sends use the driver's
// default size.
type UniformRandom struct {
	Seed    uint64
	Packets int
	// MinBytes and MaxBytes bound the optional per-send payload size
	// draw. MinBytes zero (the default) leaves sizing to the driver.
	MinBytes, MaxBytes int
}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform-random" }

// Gen implements Pattern.
func (u UniformRandom) Gen(src, n int) []Send {
	if u.MinBytes > 0 && u.MaxBytes < u.MinBytes {
		panic(fmt.Sprintf("workload: UniformRandom size range [%d, %d] is inverted",
			u.MinBytes, u.MaxBytes))
	}
	if n < 2 {
		return nil // no other rank to draw
	}
	rng := newSplitMix64(u.Seed, uint64(src))
	out := make([]Send, u.Packets)
	for i := range out {
		dst := int(rng.next() % uint64(n-1))
		if dst >= src {
			dst++ // skip self: map [0,n-2] onto the other n-1 ranks
		}
		s := Send{Dst: dst}
		if u.MinBytes > 0 {
			s.Size = u.MinBytes + int(rng.next()%uint64(u.MaxBytes-u.MinBytes+1))
		}
		out[i] = s
	}
	return out
}

// Tornado is the classical adversarial permutation: every rank sends
// Packets messages to the rank almost half way around the ring,
// (src + ceil(n/2) - 1) mod n. On ring-like topologies the offset
// defeats shortest-path load balancing; on a full-bisection fabric it
// is just another permutation.
type Tornado struct {
	Packets int
}

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Gen implements Pattern.
func (t Tornado) Gen(src, n int) []Send {
	if n < 2 {
		return nil // no other rank to shift onto
	}
	shift := (n+1)/2 - 1
	if shift < 1 {
		shift = 1 // degenerate 2-rank job: the only other rank
	}
	out := make([]Send, t.Packets)
	for i := range out {
		out[i] = Send{Dst: (src + shift) % n}
	}
	return out
}

// RankLen implements StreamingPattern.
func (t Tornado) RankLen(src, n int) int {
	if n < 2 {
		return 0
	}
	return t.Packets
}

// SendAt implements StreamingPattern.
func (t Tornado) SendAt(src, n, j int) Send {
	shift := (n+1)/2 - 1
	if shift < 1 {
		shift = 1
	}
	return Send{Dst: (src + shift) % n}
}

// Incast is the k-to-1 convergence pattern (the Discussion's hotspot):
// every rank except Target sends Packets messages to Target. It is the
// stress case for receiver-side flow control — under FM's
// return-to-sender discipline the overflow lives at the senders.
type Incast struct {
	Target  int
	Packets int
}

// Name implements Pattern.
func (Incast) Name() string { return "incast" }

// Gen implements Pattern.
func (c Incast) Gen(src, n int) []Send {
	if src == c.Target%n {
		return nil
	}
	out := make([]Send, c.Packets)
	for i := range out {
		out[i] = Send{Dst: c.Target % n}
	}
	return out
}

// RankLen implements StreamingPattern.
func (c Incast) RankLen(src, n int) int {
	if src == c.Target%n {
		return 0
	}
	return c.Packets
}

// SendAt implements StreamingPattern.
func (c Incast) SendAt(src, n, j int) Send { return Send{Dst: c.Target % n} }

// Neighbor is the ring-shift/halo-exchange pattern: each round, every
// rank sends one message to its left neighbor and one to its right
// neighbor (in that order). With Wrap the ring closes; without it the
// boundary ranks skip their missing side — exactly the communication
// structure of a 1-D stencil halo exchange (examples/halo). Bytes, when
// positive, sizes every message (a halo is a fixed few bytes).
type Neighbor struct {
	Rounds int
	Wrap   bool
	Bytes  int
}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Gen implements Pattern.
func (g Neighbor) Gen(src, n int) []Send {
	left, right, hasL, hasR := g.ends(src, n)
	var out []Send
	for r := 0; r < g.Rounds; r++ {
		if hasL {
			out = append(out, Send{Dst: left, Size: g.Bytes})
		}
		if hasR {
			out = append(out, Send{Dst: right, Size: g.Bytes})
		}
	}
	return out
}

// ends resolves rank src's neighbors and whether each side exists
// (boundary ranks without wrap miss one; tiny rings degenerate).
func (g Neighbor) ends(src, n int) (left, right int, hasL, hasR bool) {
	left, right = src-1, src+1
	if g.Wrap {
		left, right = (src+n-1)%n, (src+1)%n
		if right == left {
			right = src // 2-rank ring: one distinct neighbor, one send
		}
	}
	return left, right, left >= 0 && left != src, right < n && right != src
}

// RankLen implements StreamingPattern.
func (g Neighbor) RankLen(src, n int) int {
	if g.Rounds <= 0 {
		return 0
	}
	_, _, hasL, hasR := g.ends(src, n)
	per := 0
	if hasL {
		per++
	}
	if hasR {
		per++
	}
	return g.Rounds * per
}

// SendAt implements StreamingPattern.
func (g Neighbor) SendAt(src, n, j int) Send {
	left, right, hasL, hasR := g.ends(src, n)
	per := 0
	if hasL {
		per++
	}
	if hasR {
		per++
	}
	if hasL && j%per == 0 {
		return Send{Dst: left, Size: g.Bytes}
	}
	return Send{Dst: right, Size: g.Bytes}
}

// Broadcast is the storm pattern: rank Root sends Rounds copies to
// every other rank, in ascending rank order per round — the 1-to-all
// inverse of incast, serialized at the root's single uplink.
type Broadcast struct {
	Root   int
	Rounds int
}

// Name implements Pattern.
func (Broadcast) Name() string { return "broadcast" }

// Gen implements Pattern.
func (b Broadcast) Gen(src, n int) []Send {
	if src != b.Root%n {
		return nil
	}
	out := make([]Send, 0, b.Rounds*(n-1))
	for r := 0; r < b.Rounds; r++ {
		for dst := 0; dst < n; dst++ {
			if dst != src {
				out = append(out, Send{Dst: dst})
			}
		}
	}
	return out
}

// RankLen implements StreamingPattern.
func (b Broadcast) RankLen(src, n int) int {
	if src != b.Root%n || b.Rounds <= 0 || n <= 1 {
		return 0
	}
	return b.Rounds * (n - 1)
}

// SendAt implements StreamingPattern.
func (b Broadcast) SendAt(src, n, j int) Send {
	dst := j % (n - 1)
	if dst >= src {
		dst++ // per round, destinations ascend skipping the root itself
	}
	return Send{Dst: dst}
}

// splitMix64 is the SplitMix64 PRNG (Steele, Lea, Flood 2014): one
// 64-bit state word, period 2^64, and statistically solid output from
// any seed — including sequential ones, which is why per-rank streams
// can be derived by simple seed arithmetic.
type splitMix64 struct {
	state uint64
}

// newSplitMix64 derives the stream for one rank: the golden-ratio
// increment separates adjacent ranks' streams.
func newSplitMix64(seed, stream uint64) *splitMix64 {
	return &splitMix64{state: seed + stream*0x9e3779b97f4a7c15}
}

func (r *splitMix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
