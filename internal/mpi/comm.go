package mpi

import (
	"fmt"
	"sort"

	"fm/internal/core"
)

// Status describes a completed receive: the sender's rank in this
// communicator, the message tag, and the payload byte count.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is a nonblocking operation handle. Requests complete in
// whatever order their messages arrive — not necessarily post order.
type Request struct {
	comm *Comm
	recv bool
	done bool

	// Posted receive envelope (may hold wildcards).
	src, tag int

	// Results, valid once done.
	data   []byte
	status Status
}

// Done reports whether the operation has completed. For receives this
// means the full message (all fragments) has arrived and matched.
func (r *Request) Done() bool { return r.done }

// message is one MPI message being reassembled and matched. It is
// created when the first fragment arrives and carries the envelope from
// that fragment (every fragment repeats it).
type message struct {
	srcRank  int
	tag      int
	segCount int
	got      int
	segs     [][]byte
	req      *Request // matched posting, nil while unexpected
}

func (m *message) complete() bool { return m.got == m.segCount }

func (m *message) assemble() []byte {
	var out []byte
	for _, s := range m.segs {
		out = append(out, s...)
	}
	return out
}

// inflightKey identifies one in-progress message from one source node.
type inflightKey struct {
	srcNode int
	msgSeq  uint32
}

// Comm is one node's membership in a communicator: an ordered group of
// nodes with its own rank numbering and an isolated matching context.
// All members of a group must create communicators (World, Split) and
// invoke collectives in the same order — the usual MPI constraint.
type Comm struct {
	eng   *Engine
	ctx   uint32
	nodes []int       // rank -> world node id
	ranks map[int]int // world node id -> rank
	rank  int

	nextMsgSeq map[int]uint32 // per destination node, this context
	posted     []*Request     // posted receives, post order
	unexpected []*message     // unmatched messages, arrival order
	inflight   map[inflightKey]*message

	collSeq uint32 // collective invocation counter (internal tags)
	nSplits uint32 // child-context allocation counter
}

// NewWorld joins the cluster-wide communicator spanning nodes
// 0..size-1, binding FM handler id h on this endpoint. Every member
// must use the same size and handler id. This is the MPI layer's entry
// point; derive further communicators with Split.
func NewWorld(ep *core.Endpoint, size, h int) *Comm {
	eng := newEngine(ep, h)
	nodes := make([]int, size)
	for i := range nodes {
		nodes[i] = i
	}
	return newComm(eng, 0, nodes)
}

func newComm(eng *Engine, ctx uint32, nodes []int) *Comm {
	me := eng.ep.NodeID()
	c := &Comm{
		eng:        eng,
		ctx:        ctx,
		nodes:      append([]int(nil), nodes...),
		ranks:      make(map[int]int, len(nodes)),
		rank:       -1,
		nextMsgSeq: make(map[int]uint32),
		inflight:   make(map[inflightKey]*message),
	}
	for r, n := range nodes {
		c.ranks[n] = r
		if n == me {
			c.rank = r
		}
	}
	if c.rank < 0 {
		panic(fmt.Sprintf("mpi: node %d is not a member of the group %v", me, nodes))
	}
	eng.register(c)
	return c
}

// Rank returns this member's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Endpoint exposes the underlying FM endpoint (virtual clock, CPU cost
// accounting, protocol statistics).
func (c *Comm) Endpoint() *core.Endpoint { return c.eng.ep }

// Size returns the communicator's group size.
func (c *Comm) Size() int { return c.size() }

func (c *Comm) size() int { return len(c.nodes) }

// node translates a rank in this communicator to a world node id.
func (c *Comm) node(rank int) int {
	if rank < 0 || rank >= c.size() {
		panic(fmt.Sprintf("mpi: rank %d outside communicator of size %d", rank, c.size()))
	}
	return c.nodes[rank]
}

// --- Point-to-point ---

// Isend starts a nonblocking tagged send of data to rank dst. The
// request is complete when the layer has copied the data out, which —
// as in FM itself, where FM_send returns once the host has moved the
// frame — happens before Isend returns; the handle exists for symmetry
// and Waitall convenience. Tags must be non-negative.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.checkUserTag(tag)
	c.isend(dst, tag, data)
	return &Request{comm: c, done: true}
}

// Send is the blocking tagged send (complete when the buffer is
// reusable, i.e. immediately after the layer's copy).
func (c *Comm) Send(dst, tag int, data []byte) {
	c.checkUserTag(tag)
	c.isend(dst, tag, data)
}

func (c *Comm) checkUserTag(tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: application tags must be >= 0 (got %d)", tag))
	}
}

// isend transmits under any tag (collectives use negative tags).
func (c *Comm) isend(dst, tag int, data []byte) {
	c.eng.ep.CPU().Advance(postCost)
	dstNode := c.node(dst)
	seq := c.nextMsgSeq[dstNode]
	c.nextMsgSeq[dstNode]++
	if dstNode == c.eng.ep.NodeID() {
		// Self-send: loop back through the matcher without touching FM
		// (FM has no self-send; MPI programs expect one).
		c.acceptLocal(dstNode, tag, seq, data)
		return
	}
	c.eng.sendFragments(dstNode, c.ctx, tag, seq, data)
}

// acceptLocal feeds a self-send through the same fragmentation path the
// wire uses, so segmentation and matching behave identically.
func (c *Comm) acceptLocal(node, tag int, seq uint32, data []byte) {
	maxData := c.eng.maxData()
	segs := 1
	if len(data) > 0 {
		segs = (len(data) + maxData - 1) / maxData
	}
	for s := 0; s < segs; s++ {
		lo := s * maxData
		hi := lo + maxData
		if hi > len(data) {
			hi = len(data)
		}
		c.eng.ep.CPU().Memcpy(hi - lo)
		c.acceptFrag(node, fragment{
			ctx: c.ctx, tag: tag, msgSeq: seq,
			segIdx: s, segCount: segs,
			body: append([]byte(nil), data[lo:hi]...),
		})
	}
}

// Irecv posts a nonblocking tagged receive. src may be AnySource and
// tag may be AnyTag; wildcards match application tags only.
func (c *Comm) Irecv(src, tag int) *Request {
	if src != AnySource {
		c.node(src) // validate
	}
	c.eng.ep.CPU().Advance(postCost)
	req := &Request{comm: c, recv: true, src: src, tag: tag}
	// First, the unexpected queue, in arrival order (MPI matching
	// order: the earliest matching message wins).
	for i, m := range c.unexpected {
		if c.envelopeMatch(req, m) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			c.bind(req, m)
			return req
		}
	}
	c.posted = append(c.posted, req)
	return req
}

// Recv is the blocking tagged receive: post, wait, return payload and
// status.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	req := c.Irecv(src, tag)
	c.Wait(req)
	return req.data, req.status
}

// Wait blocks (pumping the FM layer) until the request completes. For
// receives it returns the payload and status; for sends both are
// zero-valued.
func (c *Comm) Wait(req *Request) ([]byte, Status) {
	for !req.done {
		c.eng.progress()
	}
	return req.data, req.status
}

// Waitall completes every request. Requests may finish in any order;
// Waitall returns when all have.
func (c *Comm) Waitall(reqs []*Request) {
	for _, r := range reqs {
		c.Wait(r)
	}
}

// envelopeMatch reports whether a posted receive accepts a message.
// Wildcard tags never match internal (negative) tags.
func (c *Comm) envelopeMatch(req *Request, m *message) bool {
	if req.src != AnySource && req.src != m.srcRank {
		return false
	}
	if req.tag == m.tag {
		return true
	}
	return req.tag == AnyTag && m.tag >= 0
}

// bind attaches a message to its matched posting, completing the
// request if the message has fully arrived.
func (c *Comm) bind(req *Request, m *message) {
	m.req = req
	if m.complete() {
		c.finish(m)
	}
}

// finish completes a fully-arrived, matched message's request.
func (c *Comm) finish(m *message) {
	c.eng.ep.CPU().Advance(postCost)
	data := m.assemble()
	m.req.data = data
	m.req.status = Status{Source: m.srcRank, Tag: m.tag, Count: len(data)}
	m.req.done = true
}

// acceptFrag is the matching engine's entry: one in-order fragment from
// one source node. The first fragment of a message carries its
// envelope; matching happens then, so a posted receive is bound before
// reassembly finishes and unexpected messages queue in send order
// (per source), preserving MPI's non-overtaking rule.
func (c *Comm) acceptFrag(srcNode int, f fragment) {
	srcRank, member := c.ranks[srcNode]
	if !member {
		panic(fmt.Sprintf("mpi: fragment from node %d which is not in communicator ctx=%d", srcNode, c.ctx))
	}
	key := inflightKey{srcNode: srcNode, msgSeq: f.msgSeq}
	m := c.inflight[key]
	if m == nil {
		m = &message{srcRank: srcRank, tag: f.tag, segCount: f.segCount, segs: make([][]byte, f.segCount)}
		c.inflight[key] = m
		matched := false
		for i, req := range c.posted {
			if c.envelopeMatch(req, m) {
				c.posted = append(c.posted[:i], c.posted[i+1:]...)
				m.req = req
				matched = true
				break
			}
		}
		if !matched {
			c.unexpected = append(c.unexpected, m)
		}
	}
	if f.segIdx >= m.segCount || m.segs[f.segIdx] != nil {
		panic(fmt.Sprintf("mpi: bad or duplicate segment %d/%d from node %d", f.segIdx, m.segCount, srcNode))
	}
	m.segs[f.segIdx] = f.body
	m.got++
	if m.complete() {
		delete(c.inflight, key)
		if m.req != nil {
			c.finish(m)
		}
		// Unmatched complete messages stay in the unexpected queue
		// until a receive claims them.
	}
}

// --- Communicator construction ---

// Split partitions the communicator: members passing the same color
// form a new communicator, ranked by (key, old rank); a negative color
// returns nil (the member joins no group). Split is collective — every
// member must call it, and in the same order relative to other
// collectives on this communicator.
func (c *Comm) Split(color, key int) *Comm {
	// Deterministic child context: derived from the parent's context
	// and its creation counter, so every member computes the same id
	// without global coordination.
	c.nSplits++
	if c.nSplits >= 1<<8 || c.ctx >= 1<<24 {
		panic("mpi: communicator context space exhausted")
	}
	ctx := c.ctx<<8 | c.nSplits

	// Allgather (color, key) over the parent so every member sees the
	// full table. Root gathers, then broadcasts.
	gathered := c.gatherInts(0, []int{color, key})
	var flat []int
	if c.rank == 0 {
		flat = make([]int, 2*c.size())
		for i, pair := range gathered {
			flat[2*i], flat[2*i+1] = pair[0], pair[1]
		}
	}
	flat = c.bcastInts(0, flat)

	if color < 0 {
		return nil
	}
	type member struct{ key, rank int }
	var group []member
	for r := 0; r < c.size(); r++ {
		if flat[2*r] == color {
			group = append(group, member{key: flat[2*r+1], rank: r})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	nodes := make([]int, len(group))
	for i, m := range group {
		nodes[i] = c.nodes[m.rank]
	}
	return newComm(c.eng, ctx, nodes)
}
