package myrinet

import (
	"testing"
	"testing/quick"

	"fm/internal/cost"
	"fm/internal/sim"
)

func collector(got *[]*Packet, at *[]sim.Time, k *sim.Kernel) Sink {
	return SinkFunc(func(p *Packet) {
		*got = append(*got, p)
		*at = append(*at, k.Now())
	})
}

func TestSingleSwitchDeliveryTiming(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	f := NewCrossbar(k, p, 2, 8)
	var got []*Packet
	var at []sim.Time
	f.Attach(0, collector(&got, &at, k))
	f.Attach(1, collector(&got, &at, k))

	pkt := &Packet{Src: 0, Dst: 1, Type: Data, Payload: make([]byte, 112), HeaderBytes: 16}
	var srcDone sim.Time
	k.At(0, func() { srcDone = f.Inject(pkt) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 128 wire bytes * 12.5 ns = 1.6 us on the link; source is free then.
	if srcDone != sim.Time(sim.Us(1)+sim.Ns(600)) {
		t.Errorf("srcDone = %v, want 1.6us", srcDone)
	}
	// Tail delivery = 550 ns switch + 1.6 us wire.
	want := sim.Time(sim.Ns(550) + sim.Us(1) + sim.Ns(600))
	if len(at) != 1 || at[0] != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	if f.MinLatency(0, 1, 128) != sim.Duration(want) {
		t.Errorf("MinLatency = %v, want %v", f.MinLatency(0, 1, 128), want)
	}
}

func TestOutputPortContentionSerializes(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	f := NewCrossbar(k, p, 3, 8)
	var got []*Packet
	var at []sim.Time
	for i := 0; i < 3; i++ {
		f.Attach(i, collector(&got, &at, k))
	}
	mk := func(src int) *Packet {
		return &Packet{Src: src, Dst: 2, Type: Data, Payload: make([]byte, 84), HeaderBytes: 16}
	}
	// Two senders inject simultaneously toward node 2: 100 wire bytes =
	// 1.25 us each. The second must queue behind the first at sw0.out2.
	k.At(0, func() { f.Inject(mk(0)); f.Inject(mk(1)) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 {
		t.Fatalf("delivered %d packets", len(at))
	}
	first := sim.Time(sim.Ns(550) + sim.NsF(1250))
	second := first + sim.Time(sim.NsF(1250))
	if at[0] != first || at[1] != second {
		t.Errorf("deliveries at %v,%v want %v,%v", at[0], at[1], first, second)
	}
}

func TestNoSelfRoutePanics(t *testing.T) {
	k := sim.NewKernel()
	f := NewCrossbar(k, cost.Default(), 2, 8)
	f.Attach(0, SinkFunc(func(*Packet) {}))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self-route")
		}
	}()
	f.Inject(&Packet{Src: 0, Dst: 0})
}

func TestTooManyNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCrossbar(sim.NewKernel(), cost.Default(), 9, 8)
}

func TestCorruptionDetected(t *testing.T) {
	k := sim.NewKernel()
	f := NewCrossbar(k, cost.Default(), 2, 8)
	f.Attach(0, SinkFunc(func(*Packet) {}))
	f.Attach(1, SinkFunc(func(*Packet) {}))
	payload := make([]byte, 8)
	pkt := &Packet{Src: 0, Dst: 1, Type: Data, Payload: payload, HeaderBytes: 16}
	k.At(0, func() {
		f.Inject(pkt)
		payload[3] = 0xFF // alias mutation while "on the wire"
	})
	defer func() {
		if recover() == nil {
			t.Error("expected corruption panic")
		}
	}()
	_ = k.RunAll()
	// The panic propagates out of RunAll as an error or a panic depending
	// on context; event callbacks panic directly.
	t.Error("unreachable")
}

func TestLineFabricRouting(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	// 3 switches, 2 nodes each => 6 nodes, ids 0..5.
	f := NewLine(k, p, 3, 2, 8)
	if f.Nodes() != 6 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	if f.Hops(0, 1) != 1 {
		t.Errorf("same-switch hops = %d, want 1", f.Hops(0, 1))
	}
	if f.Hops(0, 5) != 3 {
		t.Errorf("cross-fabric hops = %d, want 3", f.Hops(0, 5))
	}
	var got []*Packet
	var at []sim.Time
	for i := 0; i < 6; i++ {
		f.Attach(i, collector(&got, &at, k))
	}
	pkt := &Packet{Src: 0, Dst: 5, Type: Data, Payload: make([]byte, 64), HeaderBytes: 16}
	k.At(0, func() { f.Inject(pkt) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(3*sim.Ns(550) + sim.Duration(80)*p.LinkByte)
	if at[0] != want {
		t.Errorf("3-hop delivery at %v, want %v", at[0], want)
	}
}

func TestFabricStats(t *testing.T) {
	k := sim.NewKernel()
	f := NewCrossbar(k, cost.Default(), 2, 8)
	f.Attach(0, SinkFunc(func(*Packet) {}))
	f.Attach(1, SinkFunc(func(*Packet) {}))
	k.At(0, func() {
		f.Inject(&Packet{Src: 0, Dst: 1, Type: Data, Payload: make([]byte, 100), HeaderBytes: 16})
		f.Inject(&Packet{Src: 0, Dst: 1, Type: Ack, HeaderBytes: 16})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Packets != 2 || s.PayloadBytes != 100 || s.WireBytes != 132 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[Data] != 1 || s.ByType[Ack] != 1 {
		t.Errorf("by-type = %v", s.ByType)
	}
}

func TestSeqRange(t *testing.T) {
	r := SeqRange{Lo: 5, Hi: 9}
	if !r.Contains(5) || !r.Contains(9) || r.Contains(4) || r.Contains(10) {
		t.Error("Contains wrong")
	}
	if r.Count() != 5 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestPacketTypeStrings(t *testing.T) {
	for ty, want := range map[PacketType]string{
		Data: "DATA", Ack: "ACK", Reject: "REJECT", Retransmit: "RETX", APIMessage: "API",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
	if PacketType(99).String() != "PacketType(99)" {
		t.Error("unknown type string")
	}
}

// Property: delivery preserves payload bytes exactly, for random payloads
// and either fabric topology.
func TestPayloadIntegrityProperty(t *testing.T) {
	f := func(payload []byte, line bool) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		k := sim.NewKernel()
		p := cost.Default()
		var fab *Fabric
		if line {
			fab = NewLine(k, p, 2, 2, 8)
		} else {
			fab = NewCrossbar(k, p, 2, 8)
		}
		var got []byte
		ok := true
		for i := 0; i < fab.Nodes(); i++ {
			fab.Attach(i, SinkFunc(func(pk *Packet) { got = pk.Payload }))
		}
		dst := fab.Nodes() - 1
		cp := append([]byte(nil), payload...)
		k.At(0, func() {
			fab.Inject(&Packet{Src: 0, Dst: dst, Type: Data, Payload: cp, HeaderBytes: 16})
		})
		if err := k.RunAll(); err != nil {
			return false
		}
		if len(got) != len(payload) {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
