package myriapi

import (
	"bytes"
	"testing"

	"fm/internal/cost"
	"fm/internal/metrics"
)

func apiPair(v Variant) (metrics.Pair, *Cluster) {
	c := NewCluster(2, DefaultConfig(v), cost.Default())
	return metrics.Pair{
		A:      c.EPs[0],
		B:      c.EPs[1],
		StartA: func(app func()) { c.CPUs[0].Start(app) },
		StartB: func(app func()) { c.CPUs[1].Start(app) },
		Run:    c.Run,
	}, c
}

func TestAPIDeliversInOrder(t *testing.T) {
	c := NewCluster(2, DefaultConfig(SendImm), cost.Default())
	const n = 60
	var order []int
	c.Start(1, func(ep *Endpoint) {
		ep.RegisterHandler(0, func(src int, p []byte) { order = append(order, int(p[0])) })
		for len(order) < n {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *Endpoint) {
		for i := 0; i < n; i++ {
			if err := ep.Send(1, 0, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, order[:i+1])
		}
	}
}

func TestAPIPayloadIntegrityLargeMessage(t *testing.T) {
	c := NewCluster(2, DefaultConfig(SendDMA), cost.Default())
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i ^ (i >> 7))
	}
	var got []byte
	c.Start(1, func(ep *Endpoint) {
		ep.RegisterHandler(3, func(src int, p []byte) { got = append([]byte(nil), p...) })
		for got == nil {
			ep.WaitIncoming()
			ep.Extract()
		}
	})
	c.Start(0, func(ep *Endpoint) {
		if err := ep.Send(1, 3, payload); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("4KB payload corrupted")
	}
}

func TestAPIMaxMessageEnforced(t *testing.T) {
	c := NewCluster(2, DefaultConfig(SendImm), cost.Default())
	c.Start(0, func(ep *Endpoint) {
		if err := ep.Send(1, 0, make([]byte, 4097)); err == nil {
			t.Error("expected error above MaxMessage")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAPILatencyOrdersOfMagnitudeAboveFM: the core Figure 9 claim. The
// API's one-way latency for short messages sits near 100 us where FM
// sits near 25 us... in fact the gap must be large.
func TestAPILatencyIsHigh(t *testing.T) {
	pair, _ := apiPair(SendImm)
	lat, err := metrics.PingPong(pair, 16, 20)
	if err != nil {
		t.Fatal(err)
	}
	us := lat.Microseconds()
	if us < 80 || us > 200 {
		t.Errorf("API one-way latency = %.1f us, expected ~100 (80-200)", us)
	}
}

// TestAPIDMAVariantSlowerAtFixedCost: myri_cmd_send has higher startup
// than myri_cmd_send_imm (121 vs 105 us in Table 4).
func TestAPIDMAVariantSlowerAtFixedCost(t *testing.T) {
	imm, _ := apiPair(SendImm)
	dma, _ := apiPair(SendDMA)
	latImm, err := metrics.PingPong(imm, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	latDMA, err := metrics.PingPong(dma, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if latDMA <= latImm {
		t.Errorf("DMA variant (%.1f us) should be slower than imm (%.1f us) for short messages",
			latDMA.Microseconds(), latImm.Microseconds())
	}
}

// TestAPIBandwidthRecoversAtLargeMessages: despite terrible short-message
// performance, the API reaches double-digit MB/s at its maximum message
// size (Figure 9's bandwidth shape).
func TestAPIBandwidthRecovers(t *testing.T) {
	pair, _ := apiPair(SendImm)
	_, bwSmall, err := metrics.Stream(pair, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	pair2, _ := apiPair(SendImm)
	_, bwBig, err := metrics.Stream(pair2, 4096, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bwSmall > 1.5 {
		t.Errorf("API at 64B delivers %.2f MB/s, should be under ~1", bwSmall)
	}
	if bwBig < 8 {
		t.Errorf("API at 4KB delivers %.2f MB/s, should recover past 8", bwBig)
	}
}
