// Package lanai models the Myrinet interface card's network coprocessor
// (LANai 2.3): 128 KB of on-board memory holding the send and receive
// queues, three DMA engines (incoming channel, outgoing channel, host),
// and the host-visible registers through which the two processors
// coordinate (paper Sections 2 and 4).
//
// The LANai's processor itself is modeled by the control program in
// package lcp, which runs as a simulated process and charges instruction
// time against the cost model. This package holds the device state both
// sides share.
package lanai

import (
	"fmt"

	"fm/internal/cost"
	"fm/internal/myrinet"
	"fm/internal/ring"
	"fm/internal/sbus"
	"fm/internal/sim"
)

// MemoryBytes is the LANai 2.3 on-board memory size (Table/Figure 5).
const MemoryBytes = 128 << 10

// QueueConfig sizes the device queues. Slot sizes are in packets; the
// constructor verifies the byte footprint fits the 128 KB budget.
type QueueConfig struct {
	// FrameBytes is the maximum wire size of one frame (payload plus
	// header); it determines the byte footprint of each queue slot.
	FrameBytes int
	// SendSlots is the LANai send queue depth.
	SendSlots int
	// RecvSlots is the LANai receive queue depth.
	RecvSlots int
	// HostRecvSlots is the host receive queue depth (pinned DMA region,
	// host memory — not counted against LANai memory).
	HostRecvSlots int
	// HostOutSlots is the all-DMA outbound staging depth (DMA region).
	HostOutSlots int
	// ChannelSlots is the incoming-channel staging depth; arrivals beyond
	// it stall in the network (wormhole back-pressure).
	ChannelSlots int
}

// DefaultQueues returns the FM 1.0 queue geometry for a given frame size.
func DefaultQueues(frameBytes int) QueueConfig {
	return QueueConfig{
		FrameBytes:    frameBytes,
		SendSlots:     32,
		RecvSlots:     64,
		HostRecvSlots: 256,
		HostOutSlots:  32,
		ChannelSlots:  2,
	}
}

// lanaiFootprint returns the LANai memory consumed by the configuration.
func (q QueueConfig) lanaiFootprint() int {
	const scratch = 8 << 10 // LCP code + variables
	return (q.SendSlots+q.RecvSlots)*q.FrameBytes + scratch
}

// Stats counts device-level activity.
type Stats struct {
	Sent           uint64 // packets injected into the network
	Received       uint64 // packets taken off the incoming channel
	Delivered      uint64 // packets DMAed into the host receive queue
	HostDMABatches uint64 // host-DMA transfers issued
	HostDMAPackets uint64 // packets carried by those transfers
	NetStalls      uint64 // arrivals that had to wait for staging space
}

// Device is one node's LANai card.
type Device struct {
	ID  int
	K   *sim.Kernel
	P   *cost.Params
	Bus *sbus.Bus
	Fab *myrinet.Fabric
	Cfg QueueConfig

	// SendQ is the LANai send queue: in hybrid mode the host PIO-copies
	// frames straight into it (Figure 6).
	SendQ *ring.Ring[*myrinet.Packet]
	// RecvQ is the LANai receive queue the incoming-channel engine fills.
	RecvQ *ring.Ring[*myrinet.Packet]

	// HostRecvQ is the host receive queue in the pinned DMA region; the
	// host-DMA engine appends aggregated batches to it.
	HostRecvQ *ring.Ring[*myrinet.Packet]
	// HostOutQ is the all-DMA outbound staging ring in the DMA region.
	HostOutQ *ring.Ring[*myrinet.Packet]

	// HostRecvConsumed mirrors the host's consumption counter for
	// HostRecvQ; the host refreshes it with an SBus control write so the
	// LANai can compute free space without touching host memory.
	HostRecvConsumed uint64
	// delivered is the LANai-owned count of packets appended to
	// HostRecvQ (including ones still in flight on the bus).
	delivered uint64

	// Work wakes the control program: pulsed on doorbells, arrivals, and
	// engine completions.
	Work *sim.Signal
	// SendFreed wakes a host blocked on a full send path (hybrid SendQ
	// or all-DMA staging slot released).
	SendFreed *sim.Signal
	// HostRecvAvail wakes a host blocked in WaitIncoming.
	HostRecvAvail *sim.Signal

	// rxChan is the incoming-channel staging buffer; netPending holds
	// arrivals stalled behind it (wormhole back-pressure).
	rxChan     *ring.Ring[*myrinet.Packet]
	netPending []*myrinet.Packet

	// hostDMAFree is when the host-DMA engine can next start.
	hostDMAFree sim.Time

	// dmaInflight is the FIFO of packets aboard in-flight host-DMA
	// transfers, with dmaCounts holding the per-transfer packet counts.
	// Completion events (hostDMADone) pop from the front; keeping the
	// FIFO on the device instead of capturing each batch in an event
	// closure makes delivery scheduling allocation-free. The storage is
	// compacted for reuse whenever the engine drains.
	dmaInflight []*myrinet.Packet
	dmaCounts   []int
	dmaHead     int
	dmaCntHead  int

	// Synthetic send state for the LANai-to-LANai experiments (Fig. 3):
	// the control program sends synthRemaining frames of synthSize bytes
	// from a fixed buffer, no host involved.
	synthRemaining int
	synthPayload   []byte

	stats Stats
}

// New builds a device, attaches it to the fabric as node id's sink, and
// verifies the queue geometry fits LANai memory.
func New(k *sim.Kernel, p *cost.Params, bus *sbus.Bus, fab *myrinet.Fabric, id int, cfg QueueConfig) *Device {
	return NewAt(new(Device), k, p, bus, fab, id, cfg)
}

// NewAt is New in caller-provided storage (the cluster layer's per-node
// stack arena): same checks, same fabric attachment.
func NewAt(d *Device, k *sim.Kernel, p *cost.Params, bus *sbus.Bus, fab *myrinet.Fabric, id int, cfg QueueConfig) *Device {
	if fp := cfg.lanaiFootprint(); fp > MemoryBytes {
		panic(fmt.Sprintf("lanai: queue config needs %d bytes, exceeds %d KB card memory", fp, MemoryBytes>>10))
	}
	*d = Device{
		ID: id, K: k, P: p, Bus: bus, Fab: fab, Cfg: cfg,
		SendQ:         ring.New[*myrinet.Packet](fmt.Sprintf("lanai%d.send", id), cfg.SendSlots),
		RecvQ:         ring.New[*myrinet.Packet](fmt.Sprintf("lanai%d.recv", id), cfg.RecvSlots),
		HostRecvQ:     ring.New[*myrinet.Packet](fmt.Sprintf("host%d.recv", id), cfg.HostRecvSlots),
		HostOutQ:      ring.New[*myrinet.Packet](fmt.Sprintf("host%d.out", id), cfg.HostOutSlots),
		rxChan:        ring.New[*myrinet.Packet](fmt.Sprintf("lanai%d.chan", id), cfg.ChannelSlots),
		Work:          sim.NewSignal(k, fmt.Sprintf("lanai%d.work", id)),
		SendFreed:     sim.NewSignal(k, fmt.Sprintf("lanai%d.sendfreed", id)),
		HostRecvAvail: sim.NewSignal(k, fmt.Sprintf("lanai%d.hostrecv", id)),
	}
	fab.Attach(id, d)
	return d
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// Arrive implements myrinet.Sink: the incoming channel presents a fully
// received frame. If staging is full the frame stalls (back-pressure).
func (d *Device) Arrive(p *myrinet.Packet) {
	if !d.rxChan.TryPush(p) {
		d.netPending = append(d.netPending, p)
		d.stats.NetStalls++
	}
	d.Work.Pulse()
}

// RxAvailable reports whether the incoming channel holds a frame.
func (d *Device) RxAvailable() bool { return !d.rxChan.Empty() }

// PopRx removes the oldest staged frame and admits any stalled arrival.
func (d *Device) PopRx() *myrinet.Packet {
	p := d.rxChan.Pop()
	if len(d.netPending) > 0 {
		d.rxChan.Push(d.netPending[0])
		d.netPending = d.netPending[1:]
	}
	d.stats.Received++
	return p
}

// HostRecvFree returns the LANai's (conservative) view of free host
// receive queue slots, computed from its own delivery count and the
// host-refreshed consumption register.
func (d *Device) HostRecvFree() int {
	used := int(d.delivered - d.HostRecvConsumed)
	free := d.Cfg.HostRecvSlots - used
	if free < 0 {
		free = 0
	}
	return free
}

// HostDMAFreeAt returns when the host-DMA engine is next idle.
func (d *Device) HostDMAFreeAt() sim.Time { return d.hostDMAFree }

// DeliverToHost starts one host-DMA transfer carrying batch into the host
// receive queue and returns its completion time. The engine runs
// autonomously: packets appear in HostRecvQ (and the host is woken) when
// the transfer completes. The caller has already charged the LANai
// processor for setup and verified HostRecvFree() >= len(batch).
func (d *Device) DeliverToHost(batch []*myrinet.Packet) sim.Time {
	if len(batch) == 0 {
		panic("lanai: empty host DMA batch")
	}
	bytes := 0
	for _, p := range batch {
		bytes += p.WireBytes()
	}
	_, end := d.Bus.DMA(d.hostDMAFree, bytes)
	d.hostDMAFree = end
	d.delivered += uint64(len(batch))
	d.stats.HostDMABatches++
	d.stats.HostDMAPackets += uint64(len(batch))
	d.stats.Delivered += uint64(len(batch))
	d.dmaInflight = append(d.dmaInflight, batch...)
	d.dmaCounts = append(d.dmaCounts, len(batch))
	d.K.AtArg(end, hostDMADone, d)
	return end
}

// hostDMADone completes the oldest in-flight host-DMA transfer: its
// packets appear in the host receive queue and the host is woken.
// Transfers complete in issue order because hostDMAFree serializes the
// engine, so popping the FIFO front always matches the firing event.
func hostDMADone(a any) {
	d := a.(*Device)
	n := d.dmaCounts[d.dmaCntHead]
	d.dmaCntHead++
	for i := 0; i < n; i++ {
		d.HostRecvQ.Push(d.dmaInflight[d.dmaHead+i])
		d.dmaInflight[d.dmaHead+i] = nil
	}
	d.dmaHead += n
	if d.dmaHead == len(d.dmaInflight) {
		d.dmaInflight = d.dmaInflight[:0]
		d.dmaCounts = d.dmaCounts[:0]
		d.dmaHead, d.dmaCntHead = 0, 0
	} else if d.dmaHead > len(d.dmaInflight)/2 {
		// The engine never fully drained: slide the live tail down so
		// the dead prefix cannot grow without bound under sustained
		// back-to-back transfers (amortized O(1) per packet).
		live := copy(d.dmaInflight, d.dmaInflight[d.dmaHead:])
		clear(d.dmaInflight[live:])
		d.dmaInflight = d.dmaInflight[:live]
		d.dmaHead = 0
		liveCnt := copy(d.dmaCounts, d.dmaCounts[d.dmaCntHead:])
		d.dmaCounts = d.dmaCounts[:liveCnt]
		d.dmaCntHead = 0
	}
	d.HostRecvAvail.Pulse()
	d.Work.Pulse()
}

// Inject pushes p into the network and returns when the outgoing channel
// is free again. Caller charges DMA setup first.
func (d *Device) Inject(p *myrinet.Packet) sim.Time {
	d.stats.Sent++
	return d.Fab.Inject(p)
}

// PullFromHost starts a host-DMA transfer pulling the oldest staged
// outbound frame (all-DMA mode) from the DMA region into LANai memory.
// It returns the packet and the transfer completion time; the staging
// slot is released (and the host woken) at completion.
func (d *Device) PullFromHost() (*myrinet.Packet, sim.Time) {
	p := d.HostOutQ.Peek()
	_, end := d.Bus.DMA(d.hostDMAFree, p.WireBytes())
	d.hostDMAFree = end
	d.K.AtArg(end, pullFromHostDone, d)
	return p, end
}

// pullFromHostDone releases the oldest staged outbound slot when its
// pull transfer completes (pulls complete in issue order, like
// deliveries — the host-DMA engine is serial).
func pullFromHostDone(a any) {
	d := a.(*Device)
	d.HostOutQ.Pop()
	d.SendFreed.Pulse()
}

// HostDoorbell is rung by the host (after its SBus control write) to tell
// the control program new outbound work exists.
func (d *Device) HostDoorbell() { d.Work.Pulse() }

// HostUpdateRecvConsumed is the host's refresh of its consumption counter
// (after its SBus control write); it may unblock host-DMA delivery.
func (d *Device) HostUpdateRecvConsumed(v uint64) {
	d.HostRecvConsumed = v
	d.Work.Pulse()
}

// --- Synthetic traffic for the LANai-to-LANai experiments (Fig. 3) ---

// SetSynthetic arms the control program to send n frames of size payload
// bytes from a fixed on-card buffer.
func (d *Device) SetSynthetic(n, size int) {
	d.synthRemaining = n
	if d.synthPayload == nil || len(d.synthPayload) != size {
		d.synthPayload = make([]byte, size)
		for i := range d.synthPayload {
			d.synthPayload[i] = byte(i)
		}
	}
	d.Work.Pulse()
}

// AddSynthetic queues n more synthetic sends (ping-pong replies).
func (d *Device) AddSynthetic(n int) {
	d.synthRemaining += n
	d.Work.Pulse()
}

// SyntheticPending reports whether synthetic sends remain.
func (d *Device) SyntheticPending() bool { return d.synthRemaining > 0 }

// NextSynthetic builds the next synthetic frame addressed to dst. The
// frame comes from the fabric's packet pool and copies the on-card
// pattern buffer, so the consumer can recycle it with Fab.Release.
func (d *Device) NextSynthetic(dst int) *myrinet.Packet {
	d.synthRemaining--
	p := d.Fab.NewPacket()
	p.Src, p.Dst = d.ID, dst
	p.Type = myrinet.Data
	p.SetPayload(d.synthPayload)
	p.HeaderBytes = d.P.FMHeaderBytes
	return p
}
