package bench

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/lanai"
	"fm/internal/lcp"
	"fm/internal/metrics"
	"fm/internal/myriapi"
	"fm/internal/myrinet"
	"fm/internal/sbus"
	"fm/internal/sim"
)

// pairMaker builds a fresh two-node cluster pair for one measurement at
// the given payload size. Every measurement gets its own simulation.
type pairMaker func(size int) metrics.Pair

// fmMaker sweeps an FM layer configuration, resizing the frame to the
// payload as the paper's packet-size sweeps do.
func fmMaker(cfg core.Config, p *cost.Params) pairMaker {
	return func(size int) metrics.Pair {
		c := cluster.NewFM(2, cfg.WithFrame(size), p)
		return metrics.Pair{
			A:      c.EPs[0],
			B:      c.EPs[1],
			StartA: func(app func()) { c.CPUs[0].Start(app) },
			StartB: func(app func()) { c.CPUs[1].Start(app) },
			Run:    c.Run,
		}
	}
}

// apiMaker sweeps a Myrinet API variant (fixed buffer geometry; the API
// does not reframe per message size).
func apiMaker(v myriapi.Variant, p *cost.Params) pairMaker {
	return func(size int) metrics.Pair {
		c := myriapi.NewCluster(2, myriapi.DefaultConfig(v), p)
		return metrics.Pair{
			A:      c.EPs[0],
			B:      c.EPs[1],
			StartA: func(app func()) { c.CPUs[0].Start(app) },
			StartB: func(app func()) { c.CPUs[1].Start(app) },
			Run:    c.Run,
		}
	}
}

// hostCurve measures one layer configuration across the size sweep:
// bandwidth always, latency when withLat is set. refR forwards the
// reference r_inf for n1/2 (the API methodology).
func hostCurve(name string, mk pairMaker, sizes []int, opt Options, withLat bool, refR float64) Curve {
	c := Curve{Name: name, RefRInf: refR}
	c.BW = make([]metrics.BWPoint, len(sizes))
	if withLat {
		c.Lat = make([]metrics.LatPoint, len(sizes))
	}
	var jobs []func()
	for i, size := range sizes {
		i, size := i, size
		jobs = append(jobs, func() {
			elapsed, bw, err := metrics.Stream(mk(size), size, opt.Packets)
			if err != nil {
				panic(fmt.Sprintf("bench %s @%dB stream: %v", name, size, err))
			}
			c.BW[i] = metrics.BWPoint{
				N:         size,
				PerPacket: elapsed / sim.Duration(opt.Packets),
				MBps:      bw,
			}
		})
		if withLat {
			jobs = append(jobs, func() {
				lat, err := metrics.PingPong(mk(size), size, opt.Rounds)
				if err != nil {
					panic(fmt.Sprintf("bench %s @%dB pingpong: %v", name, size, err))
				}
				c.Lat[i] = metrics.LatPoint{N: size, OneWay: lat}
			})
		}
	}
	runParallel(opt.Workers, jobs)
	c.Fit = metrics.FitSweep(c.BW, refR)
	return c
}

// --- LANai-to-LANai drivers (Figure 3: no hosts, no SBus) ---

// lanaiPair builds two bare LANai devices on the 8-port crossbar.
func lanaiPair(p *cost.Params, frame int) (*sim.Kernel, *lanai.Device, *lanai.Device) {
	k := sim.NewKernel()
	fab := myrinet.NewCrossbar(k, p, 2, 8)
	qc := lanai.DefaultQueues(frame + p.FMHeaderBytes)
	d0 := lanai.New(k, p, sbus.New(k, p, "sbus0"), fab, 0, qc)
	d1 := lanai.New(k, p, sbus.New(k, p, "sbus1"), fab, 1, qc)
	return k, d0, d1
}

// lanaiStreamPoint measures LANai-level bandwidth at one size.
func lanaiStreamPoint(p *cost.Params, streamed bool, size, packets int) metrics.BWPoint {
	k, d0, d1 := lanaiPair(p, size)
	var last sim.Time
	got := 0
	lcp.Start(d0, lcp.Options{Streamed: streamed, Source: lcp.Synthetic, SynthDst: 1})
	lcp.Start(d1, lcp.Options{Streamed: streamed, Source: lcp.Synthetic, SynthDst: 0,
		OnReceive: func(*myrinet.Packet) {
			got++
			last = k.Now()
		}})
	d0.SetSynthetic(packets, size)
	if err := k.RunAll(); err != nil {
		panic(err)
	}
	if got != packets {
		panic(fmt.Sprintf("lanai stream delivered %d/%d", got, packets))
	}
	elapsed := sim.Duration(last)
	return metrics.BWPoint{
		N:         size,
		PerPacket: elapsed / sim.Duration(packets),
		MBps:      metrics.Bandwidth(size, packets, elapsed),
	}
}

// lanaiLatPoint measures LANai-level one-way latency at one size.
func lanaiLatPoint(p *cost.Params, streamed bool, size, rounds int) metrics.LatPoint {
	k, d0, d1 := lanaiPair(p, size)
	var finish sim.Time
	got := 0
	lcp.Start(d1, lcp.Options{Streamed: streamed, Source: lcp.Synthetic, SynthDst: 0,
		OnReceive: func(*myrinet.Packet) { d1.AddSynthetic(1) }})
	lcp.Start(d0, lcp.Options{Streamed: streamed, Source: lcp.Synthetic, SynthDst: 1,
		OnReceive: func(*myrinet.Packet) {
			got++
			finish = k.Now()
			if got < rounds {
				d0.AddSynthetic(1)
			}
		}})
	d1.SetSynthetic(0, size)
	d0.SetSynthetic(1, size)
	if err := k.RunAll(); err != nil {
		panic(err)
	}
	if got != rounds {
		panic(fmt.Sprintf("lanai pingpong completed %d/%d", got, rounds))
	}
	return metrics.LatPoint{N: size, OneWay: sim.Duration(finish) / sim.Duration(2*rounds)}
}

// lanaiCurve sweeps one LCP loop structure.
func lanaiCurve(name string, streamed bool, p *cost.Params, sizes []int, opt Options, withLat bool) Curve {
	c := Curve{Name: name}
	c.BW = make([]metrics.BWPoint, len(sizes))
	if withLat {
		c.Lat = make([]metrics.LatPoint, len(sizes))
	}
	var jobs []func()
	for i, size := range sizes {
		i, size := i, size
		jobs = append(jobs, func() {
			c.BW[i] = lanaiStreamPoint(p, streamed, size, opt.Packets)
		})
		if withLat {
			jobs = append(jobs, func() {
				c.Lat[i] = lanaiLatPoint(p, streamed, size, opt.Rounds)
			})
		}
	}
	runParallel(opt.Workers, jobs)
	c.Fit = metrics.FitSweep(c.BW, 0)
	return c
}

// theoreticalCurve generates the Appendix A peak model: an LCP that does
// nothing but perfectly sized DMAs. Latency l = tDMA + wire + tswitch;
// bandwidth r = N / (tDMA + wire).
func theoreticalCurve(p *cost.Params, sizes []int) Curve {
	c := Curve{Name: "Theoretical peak"}
	for _, n := range sizes {
		wire := p.LinkTime(n + p.FMHeaderBytes)
		per := p.DMASetup + wire
		c.Lat = append(c.Lat, metrics.LatPoint{N: n, OneWay: per + p.SwitchLatency})
		c.BW = append(c.BW, metrics.BWPoint{N: n, PerPacket: per, MBps: metrics.Bandwidth(n, 1, per)})
	}
	c.Fit = metrics.FitSweep(c.BW, 0)
	return c
}
