package workload

import (
	"fmt"
	"testing"
)

// Every StreamingPattern must agree exactly with its own Gen: the
// drivers pick whichever form the pattern offers, so any divergence
// would silently change traffic. This pins RankLen == len(Gen) and
// SendAt(j) == Gen[j] across the whole closed-form catalog, job sizes
// including the degenerate ones, and every rank.
func TestStreamingPatternsMatchGen(t *testing.T) {
	pats := []Pattern{
		AllToAll{Rounds: 1},
		AllToAll{Rounds: 3},
		Bisection{Packets: 5},
		Tornado{Packets: 4},
		Incast{Target: 0, Packets: 3},
		Incast{Target: 5, Packets: 2},
		Neighbor{Rounds: 2, Wrap: true, Bytes: 16},
		Neighbor{Rounds: 3, Wrap: false},
		Broadcast{Root: 0, Rounds: 2},
		Broadcast{Root: 3, Rounds: 1},
	}
	for _, pat := range pats {
		sp, ok := pat.(StreamingPattern)
		if !ok {
			t.Fatalf("%T does not implement StreamingPattern", pat)
		}
		for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 17} {
			for src := 0; src < n; src++ {
				label := fmt.Sprintf("%T n=%d src=%d", pat, n, src)
				want := pat.Gen(src, n)
				if got := sp.RankLen(src, n); got != len(want) {
					t.Fatalf("%s: RankLen = %d, len(Gen) = %d", label, got, len(want))
				}
				for j := range want {
					if got := sp.SendAt(src, n, j); got != want[j] {
						t.Fatalf("%s: SendAt(%d) = %+v, Gen[%d] = %+v", label, j, got, j, want[j])
					}
				}
			}
		}
	}
}

// UniformRandom and the soak sources are sequentially seeded and must
// stay on the materialized path; genSeqs would otherwise misdrive them.
func TestSequentialPatternsStayMaterialized(t *testing.T) {
	if _, ok := Pattern(UniformRandom{Seed: 1, Packets: 1}).(StreamingPattern); ok {
		t.Fatal("UniformRandom must not implement StreamingPattern: its j-th send depends on a PRNG prefix")
	}
}

// genSeqs must produce identical totals whichever form the pattern
// takes; drive a streaming pattern through both and compare.
func TestGenSeqsStreamingTotalsMatchMaterialized(t *testing.T) {
	pat := AllToAll{Rounds: 2}
	const n, def = 7, 64
	seqs, messages, bytes, expect, maxSize := genSeqs(pat, n, def)

	wantMessages, wantBytes, wantMax := 0, int64(0), def
	wantExpect := make([]int, n)
	for src := 0; src < n; src++ {
		list := pat.Gen(src, n)
		if seqs[src].Len() != len(list) {
			t.Fatalf("rank %d: seq len %d, Gen len %d", src, seqs[src].Len(), len(list))
		}
		for j, s := range list {
			if seqs[src].At(j) != s {
				t.Fatalf("rank %d send %d: seq %+v, Gen %+v", src, j, seqs[src].At(j), s)
			}
			wantMessages++
			wantBytes += int64(sendSize(s, def))
			wantExpect[s.Dst]++
		}
	}
	if messages != wantMessages || bytes != wantBytes || maxSize != wantMax {
		t.Fatalf("totals (%d, %d, %d) != (%d, %d, %d)", messages, bytes, maxSize, wantMessages, wantBytes, wantMax)
	}
	for i := range expect {
		if expect[i] != wantExpect[i] {
			t.Fatalf("expect[%d] = %d, want %d", i, expect[i], wantExpect[i])
		}
	}
}
