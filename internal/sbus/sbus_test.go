package sbus

import (
	"testing"

	"fm/internal/cost"
	"fm/internal/sim"
)

func TestPIOWriteCostAndStats(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	b := New(k, p, "bus")
	var end sim.Time
	k.Spawn("host", func(pr *sim.Proc) {
		b.PIOWrite(pr, 128)
		end = pr.Now()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := p.PIOTime(128)
	if end != sim.Time(want) {
		t.Errorf("PIO of 128B took %v, want %v", end, want)
	}
	if b.Stats().PIOBytes != 128 {
		t.Errorf("stats = %+v", b.Stats())
	}
}

func TestZeroByteWriteFree(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, cost.Default(), "bus")
	k.Spawn("host", func(pr *sim.Proc) {
		b.PIOWrite(pr, 0)
		if pr.Now() != 0 {
			t.Error("zero-byte PIO consumed time")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestStatusReadAndControlWriteCosts(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	b := New(k, p, "bus")
	k.Spawn("host", func(pr *sim.Proc) {
		b.StatusRead(pr)
		if pr.Now() != sim.Time(p.SBusStatusRead) {
			t.Errorf("status read at %v", pr.Now())
		}
		b.ControlWrite(pr)
		if pr.Now() != sim.Time(p.SBusStatusRead+p.SBusControlWrite) {
			t.Errorf("control write at %v", pr.Now())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.StatusReads != 1 || s.CtrlWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestArbitrationPIOvsDMA: the bus serializes host stores and LANai DMA
// FIFO — a DMA booked while the host holds the bus starts afterward.
func TestArbitrationPIOvsDMA(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	b := New(k, p, "bus")
	var dmaStart, dmaEnd sim.Time
	k.Spawn("host", func(pr *sim.Proc) {
		b.PIOWrite(pr, 800) // holds the bus for a while
	})
	k.After(sim.Us(1), func() {
		dmaStart, dmaEnd = b.DMA(0, 256)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	pioEnd := sim.Time(p.PIOTime(800))
	if dmaStart != pioEnd {
		t.Errorf("DMA started at %v, want after PIO at %v", dmaStart, pioEnd)
	}
	if dmaEnd != dmaStart.Add(p.SBusDMATime(256)) {
		t.Errorf("DMA end %v", dmaEnd)
	}
	if b.Stats().DMABytes != 256 {
		t.Errorf("stats = %+v", b.Stats())
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel()
	p := cost.Default()
	b := New(k, p, "bus")
	k.Spawn("host", func(pr *sim.Proc) {
		b.PIOWrite(pr, 80)
		pr.Sleep(sim.Duration(p.PIOTime(80))) // idle as long as busy
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if u := b.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
}
