package sim

// Signal is a broadcast condition variable for processes. A process calls
// Wait (or WaitTimeout) to block; any code — event callbacks, devices, or
// other processes — calls Pulse to wake every process currently waiting.
// Wakes are scheduled as events at the current instant, preserving
// deterministic ordering. A Signal has no memory: a Pulse with no waiters
// is lost, so callers must re-check their condition around Wait (the
// standard condition-variable discipline).
type Signal struct {
	k       *Kernel
	name    string
	waiters []*waitReg
	pulses  uint64
}

// waitReg tracks one blocked waiter. fired prevents a double resume when
// a timeout and a pulse land at the same instant.
type waitReg struct {
	p        *Proc
	fired    bool
	timedOut bool
}

// NewSignal creates a signal attached to k. The name is used in traces.
func NewSignal(k *Kernel, name string) *Signal {
	return &Signal{k: k, name: name}
}

// Pulses reports how many times the signal has been pulsed (for tests and
// stats).
func (s *Signal) Pulses() uint64 { return s.pulses }

// Pulse wakes every process currently waiting on s. Waiters resume at the
// current virtual time, in the order they began waiting.
func (s *Signal) Pulse() {
	s.pulses++
	if len(s.waiters) == 0 {
		return
	}
	// Detach the list but keep its backing array: waiters resume via
	// scheduled events, never during this loop, so nothing can append
	// while we iterate, and truncating (instead of dropping to nil)
	// lets future Waits register without reallocating.
	regs := s.waiters
	s.waiters = regs[:0]
	for _, r := range regs {
		if r.fired {
			continue
		}
		r.fired = true
		delete(s.k.parked, r.p)
		s.k.scheduleWake(s.k.now, r.p)
	}
	for i := range regs {
		regs[i] = nil // release registration references
	}
}

// pulseArg is the event callback for a deferred pulse.
func pulseArg(a any) { a.(*Signal).Pulse() }

// PulseAfter schedules a Pulse d from now, without allocating a closure.
// Layers use it to arm wakeups (e.g. retransmission deadlines).
func (s *Signal) PulseAfter(d Duration) { s.k.AfterArg(d, pulseArg, s) }

// Wait blocks the calling process until the next Pulse. It reuses the
// process's embedded registration, so waiting allocates nothing: an
// untimed registration leaves the waiter list precisely when the process
// is woken (Pulse detaches the whole list before scheduling resumes), so
// it can never alias a later wait.
func (p *Proc) Wait(s *Signal) {
	reg := &p.wreg
	reg.p = p
	reg.fired = false
	reg.timedOut = false
	s.waiters = append(s.waiters, reg)
	p.park()
}

// WaitTimeout blocks until the next Pulse or until d elapses, whichever
// comes first. It reports true if the signal fired and false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d Duration) bool {
	reg := &waitReg{p: p}
	s.waiters = append(s.waiters, reg)
	k := p.k
	k.After(d, func() {
		if reg.fired {
			return // pulsed first (or simultaneously, pulse wins)
		}
		reg.fired = true
		reg.timedOut = true
		delete(k.parked, p)
		k.requestWake(p)
	})
	p.park()
	if reg.timedOut {
		// Lazily drop the stale registration so the waiter list does not
		// accumulate garbage under repeated timeouts.
		for i, r := range s.waiters {
			if r == reg {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		return false
	}
	return true
}

// WaitFor repeatedly waits on s until cond() is true. cond is checked
// before the first wait, so a satisfied condition never blocks.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}
