package sim

import (
	"fmt"
	"io"
)

// Trace is an optional, low-overhead event log. When disabled (the
// default), tracing calls reduce to a nil check.
type Trace struct {
	w io.Writer
}

// EnableTrace directs kernel trace output to w. Passing nil disables
// tracing.
func (k *Kernel) EnableTrace(w io.Writer) {
	if w == nil {
		k.trace = nil
		return
	}
	k.trace = &Trace{w: w}
}

// Tracef writes a timestamped trace line if tracing is enabled. cat is a
// short category tag such as "lcp" or "sbus".
func (k *Kernel) Tracef(cat, format string, args ...any) {
	if k.trace == nil {
		return
	}
	fmt.Fprintf(k.trace.w, "%12.3f us [%-8s] %s\n",
		k.now.Microseconds(), cat, fmt.Sprintf(format, args...))
}

// Tracing reports whether tracing is enabled, so callers can skip
// expensive argument construction.
func (k *Kernel) Tracing() bool { return k.trace != nil }
