package myrinet

import (
	"testing"

	"fm/internal/cost"
	"fm/internal/sim"
)

// Route-resolution cost on the scale experiment's clos-1024 geometry
// (32 spines x 32 leaves x 32 nodes/leaf, 64-port switches — the same
// shape workload.ClosGeometry derives for 1024 nodes). The pair walk
// covers every (source switch, destination) combination before
// repeating, so each BFS iteration is a cold cache miss — the cost the
// demand cache paid on first touch for all switches*nodes pairs, which
// at 16k nodes was the scale ceiling. The formulaic path resolves the
// same routes with no cache entry and no allocation at all.

func benchClos1024() *Fabric {
	return NewClos(sim.NewKernel(), cost.Default(), 32, 32, 32, 64)
}

func benchPair(f *Fabric, i int) (srcSw, dst int) {
	n := f.Nodes()
	return (i / n) % f.NumSwitches(), i % n
}

func BenchmarkRouteResolve(b *testing.B) {
	f := benchClos1024()
	if f.topo.form == nil {
		b.Fatal("clos fabric did not set the structured form")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcSw, dst := benchPair(f, i)
		if rt := f.router.routeFrom(srcSw, dst); len(rt) == 0 {
			b.Fatalf("no route from switch %d to node %d", srcSw, dst)
		}
	}
}

func BenchmarkRouteResolveBFS(b *testing.B) {
	f := benchClos1024()
	f.topo.form = nil // force the demand-cached BFS path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcSw, dst := benchPair(f, i)
		if rt := f.router.routeFrom(srcSw, dst); len(rt) == 0 {
			b.Fatalf("no route from switch %d to node %d", srcSw, dst)
		}
	}
}
