package workload

import (
	"encoding/binary"

	"fm/internal/core"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/stats"
)

// This file is the drive core every driver shares: the pregeneration
// prologue (pattern expansion, totals, route hints, hop accounting),
// the latency-stamp wire format, and the per-rank FM drive body. The
// public Drive* entry points in driver.go / sharded.go / faultdrive.go
// / soak.go differ only in which engine they build (single kernel or
// shard group), which stack level they run, and how they terminate —
// everything else lives here exactly once.

// sendSize resolves one send's payload size against the driver default.
func sendSize(s Send, def int) int {
	if s.Size > 0 {
		return s.Size
	}
	return def
}

// genAll generates every rank's sends once and accumulates the shared
// totals: message count, payload bytes, per-rank receive counts, and
// the buffer size the drivers need.
func genAll(pat Pattern, n, def int) (sends [][]Send, messages int, bytes int64, expect []int, maxSize int) {
	sends = make([][]Send, n)
	expect = make([]int, n)
	maxSize = def
	for src := 0; src < n; src++ {
		sends[src] = pat.Gen(src, n)
		messages += len(sends[src])
		for _, s := range sends[src] {
			sz := sendSize(s, def)
			bytes += int64(sz)
			expect[s.Dst]++
			if sz > maxSize {
				maxSize = sz
			}
		}
	}
	return sends, messages, bytes, expect, maxSize
}

// meanHops computes the pattern's mean switch-crossing count on the
// fabric: pure routing-table arithmetic, no virtual time.
func meanHops(f *myrinet.Fabric, sends [][]Send, messages int) float64 {
	if messages == 0 {
		return 0
	}
	hops := 0
	for src, list := range sends {
		for _, s := range list {
			hops += f.Hops(src, s.Dst)
		}
	}
	return float64(hops) / float64(messages)
}

// prepare is the prologue every driver runs before simulating: expand
// the pattern, fill the result's totals, hint the route caches of every
// fabric replica, and account topological hops. The returned send lists
// are in canonical rank order; expect is the per-rank receive count.
func prepare(spec FabricSpec, pat Pattern, size int, fabs ...*myrinet.Fabric) (res Result, sends [][]Send, expect []int, maxSize int) {
	n := fabs[0].Nodes()
	res = Result{Pattern: pat.Name(), Fabric: spec.Name}
	var messages int
	sends, messages, res.PayloadBytes, expect, maxSize = genAll(pat, n, size)
	res.Messages = messages
	hint := spec.RouteHint(n, messages)
	for _, f := range fabs {
		f.HintRoutes(hint)
	}
	res.MeanHops = meanHops(fabs[0], sends, messages)
	return res, sends, expect, maxSize
}

// stamp writes a virtual instant into the payload head so the receiver
// can compute per-message latency; payloads shorter than the timestamp
// skip it (the recorded distribution then only covers the stampable
// messages). Closed-loop drivers stamp the send instant; the open-loop
// soak driver stamps the scheduled arrival instant, so the receiver's
// reading includes source-queue sojourn.
func stamp(buf []byte, now sim.Time) {
	if len(buf) >= 8 {
		binary.LittleEndian.PutUint64(buf, uint64(now))
	}
}

func stampedAt(payload []byte) (sim.Time, bool) {
	if len(payload) < 8 {
		return 0, false
	}
	return sim.Time(binary.LittleEndian.Uint64(payload)), true
}

// waitUntil charges the rank's CPU until the send's earliest injection
// instant.
func waitUntil(ep *core.Endpoint, at sim.Duration) {
	if d := at - sim.Duration(ep.Now()); d > 0 {
		ep.CPU().Advance(d)
	}
}

// fmRank is the per-rank drive body shared by every FM-stack driver
// (healthy, sharded, faulted): register handler 0 counting deliveries
// and recording stamped latency into lat, issue the send list paced by
// each send's At instant while draining incoming traffic, then extract
// until the expected share has arrived and nothing is outstanding.
//
// The two optional hooks are virtual-time-neutral when disabled, so
// the healthy drivers are byte-identical to their pre-extraction form:
// a non-nil last tracks the rank's final delivery instant (fault runs
// measure Elapsed from it), and a settleAt past zero keeps the rank
// polling after its own traffic completes, so frames bounced its way
// late (a standalone ack, a strand released at a recovery) are requeued
// and resent rather than rotting in the receive queue while their
// original target spins forever.
func fmRank(ep *core.Endpoint, sends []Send, expect, size int, buf []byte,
	lat *stats.Histogram, last *sim.Time, settleAt sim.Time) {
	got := 0
	ep.RegisterHandler(0, func(src int, payload []byte) {
		got++
		if last != nil {
			if now := ep.Now(); now > *last {
				*last = now
			}
		}
		if at, ok := stampedAt(payload); ok {
			lat.Record(ep.Now().Sub(at))
		}
	})
	for _, s := range sends {
		if s.At > 0 {
			waitUntil(ep, s.At)
		}
		msg := buf[:sendSize(s, size)]
		stamp(msg, ep.Now())
		if err := ep.Send(s.Dst, 0, msg); err != nil {
			panic(err)
		}
		ep.Extract() // keep draining while sending
	}
	for got < expect || ep.Outstanding() > 0 {
		ep.WaitIncoming()
		ep.Extract()
	}
	for ep.Now() < settleAt {
		ep.CPU().Advance(settleQuantum)
		ep.Extract()
	}
}
