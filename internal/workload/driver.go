package workload

import (
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
	"fm/internal/mpi"
	"fm/internal/myrinet"
	"fm/internal/sim"
	"fm/internal/stats"
)

// Result is one pattern driven over one fabric at one stack level, with
// the shared measurement set: message/byte totals, completion time,
// topological hop cost, and the full per-message latency distribution.
type Result struct {
	Pattern string
	Fabric  string
	// Messages is the number of messages the pattern generated (and the
	// driver verified delivered).
	Messages int
	// PayloadBytes is the total payload carried, per-send size
	// overrides included.
	PayloadBytes int64
	// Elapsed is the virtual time of the last delivery (raw level) or
	// of cluster quiescence (FM/MPI levels).
	Elapsed sim.Duration
	// MeanHops is the mean switch crossings per message, a pure
	// topology property of the pattern's (src, dst) pairs.
	MeanHops float64
	// Latency is the per-message delivery-latency distribution:
	// injection to tail delivery at the raw level; send call to the
	// instant the receiving rank observes the message at the FM and MPI
	// levels (handler dispatch and, for MPI, matching and reassembly
	// included). The raw driver records every message; the FM and MPI
	// drivers stamp the send instant into the payload, so messages
	// shorter than the 8-byte timestamp cannot carry one and are not
	// recorded — Latency.Count() < Messages signals such a run.
	Latency stats.Histogram
	// Shards holds per-shard runtime counters (events run, cross-shard
	// posts, barrier windows, busy wall time) when the drive was split
	// across shard kernels; nil for single-kernel runs.
	Shards []sim.ShardStats
}

// MBps returns the delivered payload bandwidth in MB/s (MiB).
func (r *Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.PayloadBytes) / metrics.MiB / r.Elapsed.Seconds()
}

// --- Raw fabric driver ---

// rawDrive is the shared state of one DriveRaw: the sink counts
// deliveries, records latency, and recycles packets; per-source
// injectors pace themselves off the uplink-free instant. Both run as
// argument-style events and pooled packets, so a run's steady state
// allocates nothing.
type rawDrive struct {
	k         *sim.Kernel
	f         *myrinet.Fabric
	payload   []byte
	size      int // default payload size
	delivered int
	last      sim.Time
	lat       *stats.Histogram
}

// Arrive implements myrinet.Sink.
func (dr *rawDrive) Arrive(p *myrinet.Packet) {
	dr.delivered++
	dr.last = dr.k.Now()
	dr.lat.Record(dr.k.Now().Sub(p.Injected))
	dr.f.Release(p)
}

// rawInjector feeds one source's send list into the fabric: each next
// injection fires when the uplink frees, or at the send's At instant if
// that is later.
type rawInjector struct {
	dr    *rawDrive
	hdr   int
	src   int
	sends sendSeq
	next  int
}

func injectNext(a any) {
	in := a.(*rawInjector)
	if in.next >= in.sends.Len() {
		return
	}
	dr := in.dr
	s := in.sends.At(in.next)
	pkt := dr.f.NewPacket()
	pkt.Src, pkt.Dst = in.src, s.Dst
	pkt.Type = myrinet.Data
	pkt.SetPayload(dr.payload[:sendSize(s, dr.size)])
	pkt.HeaderBytes = in.hdr
	in.next++
	srcDone := dr.f.Inject(pkt)
	if in.next < in.sends.Len() {
		if at := sim.Time(in.sends.At(in.next).At); at > srcDone {
			srcDone = at
		}
	}
	dr.k.AtArg(srcDone, injectNext, in)
}

// DriveRaw runs the pattern over a fresh fabric at the raw network
// level (no host stack, so the fabric itself is the bottleneck): every
// source injects its send list back-to-back, each next injection paced
// by the instant the source's uplink frees (or the send's At time).
// Frames carry the FM header size, size bytes of payload by default.
func DriveRaw(spec FabricSpec, p *cost.Params, pat Pattern, size int) Result {
	k := sim.NewKernel()
	f := spec.Build(k, p)
	n := f.Nodes()

	res, sends, _, maxSize := prepare(spec, pat, size, f)

	dr := &rawDrive{k: k, f: f, payload: make([]byte, maxSize), size: size, lat: &res.Latency}
	for i := 0; i < n; i++ {
		f.Attach(i, dr)
	}
	for src := 0; src < n; src++ {
		var at sim.Time
		if q := sends[src]; q.Len() > 0 {
			at = sim.Time(q.At(0).At)
		}
		k.AtArg(at, injectNext, &rawInjector{dr: dr, hdr: p.FMHeaderBytes, src: src, sends: sends[src]})
	}
	if err := k.RunAll(); err != nil {
		panic(err)
	}
	if dr.delivered != res.Messages {
		panic(fmt.Sprintf("workload: %s on %s delivered %d/%d packets",
			pat.Name(), spec.Name, dr.delivered, res.Messages))
	}
	res.Elapsed = sim.Duration(dr.last)
	return res
}

// --- FM-stack driver ---

// DriveFM runs the pattern through the complete FM 1.0 stack (hosts,
// SBus, LANai, LCP, flow control on every node) on the spec's fabric
// using handler 0: every rank issues its send list as fast as the
// layers allow, draining incoming messages while sending, then extracts
// until it has received its expected share and its outstanding frames
// are acknowledged.
func DriveFM(spec FabricSpec, cfg core.Config, p *cost.Params, pat Pattern, size int) Result {
	c := cluster.NewFMFrom(spec.Build, cfg, p)
	n := c.Fab.Nodes()

	res, sends, expect, maxSize := prepare(spec, pat, size, c.Fab)

	// One pre-sized slab instead of one send buffer per rank: at scale
	// (the 4096-node sweep) per-rank allocations are pure overhead.
	slab := make([]byte, n*maxSize)
	for id := 0; id < n; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			fmRank(ep, sends[id], expect[id], size, slab[id*maxSize:(id+1)*maxSize],
				&res.Latency, nil, 0)
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	res.Elapsed = sim.Duration(c.K.Now())
	return res
}

// --- MPI driver ---

// mpiDriveTag is the application tag DriveMPI stamps on every message.
const mpiDriveTag = 1

// DriveMPI runs the pattern through the MPI layer on the full FM stack:
// every rank posts wildcard receives for its expected share, issues its
// send list with blocking tagged sends, then completes receives as
// their messages arrive (matching and reassembly included) and drains
// its outstanding FM frames. The config's frame size bounds the MPI
// fragment size, so payloads above one frame pay segmentation exactly
// as applications would.
func DriveMPI(spec FabricSpec, cfg core.Config, p *cost.Params, pat Pattern, size int) Result {
	c := cluster.NewFMFrom(spec.Build, cfg, p)
	n := c.Fab.Nodes()

	res, sends, expect, maxSize := prepare(spec, pat, size, c.Fab)

	slab := make([]byte, n*maxSize)
	for id := 0; id < n; id++ {
		id := id
		c.Start(id, func(ep *core.Endpoint) {
			comm := mpi.NewWorld(ep, n, 0)
			pending := make([]*mpi.Request, expect[id])
			for i := range pending {
				pending[i] = comm.Irecv(mpi.AnySource, mpi.AnyTag)
			}
			buf := slab[id*maxSize : (id+1)*maxSize]
			q := sends[id]
			for j := 0; j < q.Len(); j++ {
				s := q.At(j)
				if s.At > 0 {
					waitUntil(ep, s.At)
				}
				msg := buf[:sendSize(s, size)]
				stamp(msg, ep.Now())
				comm.Send(s.Dst, mpiDriveTag, msg)
			}
			// Complete receives as they land: sweeping Done requests
			// keeps the latency observation close to each message's
			// actual arrival instead of the end of the run.
			for len(pending) > 0 {
				live := pending[:0]
				for _, req := range pending {
					if !req.Done() {
						live = append(live, req)
						continue
					}
					data, _ := comm.Wait(req)
					if at, ok := stampedAt(data); ok {
						res.Latency.Record(ep.Now().Sub(at))
					}
				}
				pending = live
				if len(pending) > 0 {
					ep.WaitIncoming()
					ep.Extract()
				}
			}
			// Outstanding frames may still be rejected under incast
			// overload; keep extracting so they retransmit.
			for ep.Outstanding() > 0 {
				ep.WaitIncoming()
				ep.Extract()
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	res.Elapsed = sim.Duration(c.K.Now())
	return res
}
