package bench

import (
	"strings"
	"testing"
)

// ValidateScale is fmbench's pre-run gate for the sweep: a bad pattern
// name or an unbuildable node count must be rejected up front, never
// after hours-long earlier points.
func TestValidateScale(t *testing.T) {
	ok := DefaultOptions()
	if err := ValidateScale(ok); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	ok.ScalePattern = "neighbor"
	ok.ScaleNodes = []int{64, 16384}
	if err := ValidateScale(ok); err != nil {
		t.Fatalf("neighbor at 64,16384 rejected: %v", err)
	}

	bad := DefaultOptions()
	bad.ScalePattern = "bogus"
	if err := ValidateScale(bad); err == nil || !strings.Contains(err.Error(), "-scale-pattern") {
		t.Fatalf("bogus pattern: err = %v", err)
	}

	bad = DefaultOptions()
	bad.ScaleNodes = []int{64, 1}
	err := ValidateScale(bad)
	if err == nil || !strings.Contains(err.Error(), "-scale-nodes 1") {
		t.Fatalf("node count 1: err = %v", err)
	}
}

// The default pattern must resolve to the historical all-to-all
// traffic — Scale's labels and volumes hang off it, and the
// byte-identity guarantee with pre-knob builds depends on it.
func TestScalePatternDefaultIsAllToAll(t *testing.T) {
	for _, name := range []string{"", "all-to-all"} {
		pat, desc, err := scalePattern(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if desc != "one all-to-all round" {
			t.Fatalf("%q: desc = %q", name, desc)
		}
		if got := pat.Gen(0, 4); len(got) != 3 {
			t.Fatalf("%q: Gen(0,4) = %v, want 3 sends", name, got)
		}
	}
}
