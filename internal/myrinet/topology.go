package myrinet

import (
	"fmt"

	"fm/internal/cost"
	"fm/internal/sim"
)

// Topology is a declarative description of a switch fabric: a set of
// crossbar switches, directed inter-switch links (each consuming one
// output port on its source switch), and node attachment points (the
// output port a node's packets are delivered through, which by Myrinet's
// full-duplex cabling is also where the node's uplink enters the fabric).
//
// A Topology is pure data; NewFabric compiles it into a live Fabric by
// instantiating switch resources and precomputing shortest-path source
// routes for every node pair. NewCrossbar, NewLine, and NewClos are
// canned topologies built through this layer.
type Topology struct {
	switches []switchSpec
	nodes    []attach // node id -> delivery point
	links    []link

	// form, when non-nil, declares that this topology is a structured
	// two-level folded Clos (or its one-leaf crossbar degenerate) built
	// by the canned constructors, enabling the formulaic routing fast
	// path (see router.formRoute). Hand-built topologies leave it nil
	// and always route by BFS.
	form *closForm
}

// closForm captures the closed-form geometry of a NewClos fabric: leaf
// switches are topology indices 0..leaves-1 (node id l*npl+j attached
// at leaf l port j), spine s is index leaves+s, leaf l reaches spine s
// through port npl+s, and spine s reaches leaf l through port l. Every
// shortest route is a pure function of (source switch, destination):
// the spine choice dst%spines reproduces the BFS candidate pick
// cands[dst%len(cands)] because the candidate trunks are port-ordered
// and all spines are equidistant on a healthy fabric.
type closForm struct {
	leaves int
	spines int
	npl    int // nodes per leaf
}

type switchSpec struct {
	name  string
	ports int
}

// attach is a node's delivery point: the switch and output port its
// inbound packets leave the fabric through.
type attach struct {
	sw   int
	port int
}

// link is a directed inter-switch channel occupying output port `port`
// on switch `from`.
type link struct {
	from, port, to int
}

// NewTopology returns an empty fabric description.
func NewTopology() *Topology { return &Topology{} }

// AddSwitch declares a crossbar with the given port count and returns
// its index.
func (t *Topology) AddSwitch(name string, ports int) int {
	t.switches = append(t.switches, switchSpec{name: name, ports: ports})
	return len(t.switches) - 1
}

// AttachNode declares the next node id's delivery point and returns the
// id. Node ids are assigned densely in attachment order.
func (t *Topology) AttachNode(sw, port int) int {
	t.nodes = append(t.nodes, attach{sw: sw, port: port})
	return len(t.nodes) - 1
}

// Link declares a directed channel from output port `port` of switch
// `from` into switch `to`. Bidirectional trunks are two Link calls.
func (t *Topology) Link(from, port, to int) {
	t.links = append(t.links, link{from: from, port: port, to: to})
}

// maxPackedPorts and maxPackedSwitches are the widths the packed hop
// representation can address (port uint16, switch uint32). Validate
// enforces them so a route can never truncate an index.
const (
	maxPackedPorts    = 1 << 16
	maxPackedSwitches = 1 << 32
)

// Validate checks structural consistency: indices in range, no output
// port claimed twice (by two links, two nodes, or a link and a node),
// and every index within the packed-route widths.
func (t *Topology) Validate() error {
	if uint64(len(t.switches)) > maxPackedSwitches {
		return fmt.Errorf("myrinet: %d switches exceed the packed-route limit %d", len(t.switches), maxPackedSwitches)
	}
	for _, s := range t.switches {
		if s.ports > maxPackedPorts {
			return fmt.Errorf("myrinet: %s has %d ports, exceeding the packed-route limit %d",
				s.name, s.ports, maxPackedPorts)
		}
	}
	used := map[[2]int]string{}
	claim := func(sw, port int, what string) error {
		if sw < 0 || sw >= len(t.switches) {
			return fmt.Errorf("myrinet: %s references switch %d of %d", what, sw, len(t.switches))
		}
		if port < 0 || port >= t.switches[sw].ports {
			return fmt.Errorf("myrinet: %s references port %d of %d on %s",
				what, port, t.switches[sw].ports, t.switches[sw].name)
		}
		key := [2]int{sw, port}
		if prev, dup := used[key]; dup {
			return fmt.Errorf("myrinet: %s.out%d claimed by both %s and %s",
				t.switches[sw].name, port, prev, what)
		}
		used[key] = what
		return nil
	}
	for i, n := range t.nodes {
		if err := claim(n.sw, n.port, fmt.Sprintf("node %d", i)); err != nil {
			return err
		}
	}
	for _, l := range t.links {
		if err := claim(l.from, l.port, fmt.Sprintf("link to %s", t.name(l.to))); err != nil {
			return err
		}
		if l.to < 0 || l.to >= len(t.switches) {
			return fmt.Errorf("myrinet: link from %s targets switch %d of %d",
				t.name(l.from), l.to, len(t.switches))
		}
	}
	return nil
}

func (t *Topology) name(sw int) string {
	if sw < 0 || sw >= len(t.switches) {
		return fmt.Sprintf("sw?%d", sw)
	}
	return t.switches[sw].name
}

// router resolves source routes on demand and caches them. The seed
// implementation precomputed the full O(nodes²) route table at fabric
// construction, which made large Clos fabrics expensive to build even
// for experiments touching a handful of node pairs; the router instead
// runs one backward BFS per destination *switch* on first demand and
// caches finished routes keyed by (source switch, destination node) —
// every node on a leaf shares its co-resident nodes' routes, so a
// 1024-node Clos caches at most switches×nodes routes, each computed
// exactly once, instead of nodes² up front.
//
// Where several shortest paths exist (Clos fabrics have one per spine),
// the branch taken is the destination id modulo the number of candidate
// next hops — deterministic, and it statically spreads unrelated
// destinations across the parallel paths the way Myrinet's static
// source-route tables did. Candidate next hops are ordered by output
// port, so the choice is stable across runs and identical to the eager
// table the seed computed.
type router struct {
	t       *Topology
	fwd     [][]adj // forward adjacency, port-ordered
	rev     [][]int // link indices into t.links arriving at each switch
	distTo  map[int][]int
	cache   map[[2]int][]hop // (src switch, dst node) -> route (nil = unreachable)
	scratch []adj            // candidate buffer reused across lookups

	// formBuf backs formulaic fast-path routes (at most 3 hops on a
	// two-level Clos). Reusing one buffer is safe because every resolved
	// route is fully consumed before the next resolution: forward walks
	// its route synchronously, every faultTurn call site returns without
	// re-reading the outer route, and Fabric.Route copies.
	formBuf [3]hop

	// fs is the fabric's fault state; nil on a fault-free fabric. When
	// set, distance maps and candidate selection skip components that
	// are down right now, and the caches are invalidated at every
	// topology-state toggle (see Fabric.ApplyFaults).
	fs *faultState
}

// adj is one forward-adjacency entry: the link plus its index in the
// topology's link list, so fault checks can key per-link state.
type adj struct {
	link
	idx int
}

// newRouter builds the adjacency structures and verifies every ordered
// node pair is routable (construction-time check, so an unroutable
// topology fails fast even though routes are resolved lazily).
func (t *Topology) newRouter() *router {
	r := &router{
		t:      t,
		fwd:    make([][]adj, len(t.switches)),
		rev:    make([][]int, len(t.switches)),
		distTo: map[int][]int{},
		cache:  map[[2]int][]hop{},
	}
	for i, l := range t.links {
		r.fwd[l.from] = append(r.fwd[l.from], adj{link: l, idx: i})
		r.rev[l.to] = append(r.rev[l.to], i)
	}
	for _, ls := range r.fwd {
		for i := 1; i < len(ls); i++ { // insertion sort by port; degree is tiny
			for j := i; j > 0 && ls[j-1].port > ls[j].port; j-- {
				ls[j-1], ls[j] = ls[j], ls[j-1]
			}
		}
	}
	r.checkConnected()
	return r
}

// checkConnected verifies that every switch hosting a node can reach and
// be reached by every other such switch. It is equivalent to (but far
// cheaper than) routing all node pairs: if every node switch reaches
// switch s0 and s0 reaches every node switch, paths exist for all pairs.
func (r *router) checkConnected() {
	if len(r.t.nodes) == 0 {
		return
	}
	s0 := r.t.nodes[0].sw
	reach := func(adj func(int) []int) []bool {
		seen := make([]bool, len(r.t.switches))
		seen[s0] = true
		queue := []int{s0}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range adj(cur) {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return seen
	}
	fromS0 := reach(func(sw int) []int {
		out := make([]int, 0, len(r.fwd[sw]))
		for _, l := range r.fwd[sw] {
			out = append(out, l.to)
		}
		return out
	})
	toS0 := reach(func(sw int) []int {
		out := make([]int, 0, len(r.rev[sw]))
		for _, li := range r.rev[sw] {
			out = append(out, r.t.links[li].from)
		}
		return out
	})
	for i, n := range r.t.nodes {
		if !fromS0[n.sw] {
			panic(fmt.Sprintf("myrinet: no path from %s to %s (node %d unreachable)",
				r.t.name(s0), r.t.name(n.sw), i))
		}
		if !toS0[n.sw] {
			panic(fmt.Sprintf("myrinet: no path from %s to %s (node %d cut off)",
				r.t.name(n.sw), r.t.name(s0), i))
		}
	}
}

// hintRoutes re-seeds the (still empty) route cache with capacity for n
// entries. Callers know the workload's reach (workload geometry: nodes,
// switches, message count); the router itself cannot guess it. On a
// fault-free structured fabric the formulaic fast path serves every
// resolution, so there is nothing to cache and the hint is dropped —
// at 16k nodes the pre-sized map alone would be hundreds of MB.
func (r *router) hintRoutes(n int) {
	if r.t.form != nil && r.fs == nil {
		return
	}
	if len(r.cache) == 0 && n > 0 {
		r.cache = make(map[[2]int][]hop, n)
	}
}

// distances returns (computing and caching on first use) the hop count
// from every switch to dstSw over the links and switches that are up
// right now. On a fault-free fabric "up right now" is everything, and
// the maps live for the fabric's lifetime; under faults they are
// invalidated at every topology-state toggle (see invalidate), so a
// cached map is always consistent with the current state.
func (r *router) distances(dstSw int) []int {
	if d, ok := r.distTo[dstSw]; ok {
		return d
	}
	dist := make([]int, len(r.t.switches))
	for i := range dist {
		dist[i] = -1
	}
	dist[dstSw] = 0
	queue := []int{dstSw}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, li := range r.rev[cur] {
			if r.fs != nil && r.fs.linkDownNow(li) {
				continue
			}
			prev := r.t.links[li].from
			if r.fs != nil && r.fs.switchDownNow(prev) {
				continue
			}
			if dist[prev] < 0 {
				dist[prev] = dist[cur] + 1
				queue = append(queue, prev)
			}
		}
	}
	r.distTo[dstSw] = dist
	return dist
}

// invalidate discards every cached route and distance map. The fabric
// calls it at each fault toggle (a component going down or coming back
// up), so the next resolution re-routes over the now-current healthy
// subgraph. Fault-free fabrics never call it.
func (r *router) invalidate() {
	clear(r.cache)
	clear(r.distTo)
}

// route returns the hop sequence from node src to node dst (src != dst),
// resolving and caching it on first use. The returned slice is owned by
// the cache and must not be mutated. It panics when no healthy path
// exists; fault-aware callers use routeFrom and handle nil.
func (r *router) route(src, dst int) []hop {
	rt := r.routeFrom(r.t.nodes[src].sw, dst)
	if rt == nil {
		panic(fmt.Sprintf("myrinet: no path from %s to %s (nodes %d->%d)",
			r.t.name(r.t.nodes[src].sw), r.t.name(r.t.nodes[dst].sw), src, dst))
	}
	return rt
}

// routeFrom resolves the hop sequence from a switch to node dst over
// the currently-healthy subgraph, returning nil when dst is unreachable
// (negative results are cached too — the caches are flushed at every
// state toggle). Shortest-path suffixes are shortest paths and the
// spine choice at each switch depends only on (switch, dst), so on a
// healthy fabric routeFrom(midSw, dst) equals the corresponding suffix
// of the full source route — which is what lets cross-shard
// continuations and fault bounces re-resolve from their current switch
// without carrying the original route along.
func (r *router) routeFrom(srcSw, dst int) []hop {
	if fm := r.t.form; fm != nil && (r.fs == nil || r.fs.routingQuiet()) {
		// Structured fabric with no link/switch outage in the mapper's
		// current view: the route is a closed-form function of
		// (srcSw, dst) — no BFS, no cache entry, no allocation. Under
		// an active window the BFS path below remains the only one, so
		// fault semantics (detection lag, cache invalidation at
		// toggles, rerouting over the healthy subgraph) are untouched.
		return r.formRoute(fm, srcSw, dst)
	}
	da := r.t.nodes[dst]
	key := [2]int{srcSw, dst}
	if rt, ok := r.cache[key]; ok {
		return rt
	}
	if r.fs != nil && (r.fs.switchDownNow(srcSw) || r.fs.switchDownNow(da.sw)) {
		r.cache[key] = nil
		return nil
	}
	dist := r.distances(da.sw)
	if dist[srcSw] < 0 {
		r.cache[key] = nil
		return nil
	}
	route := make([]hop, 0, dist[srcSw]+1)
	cur := srcSw
	for cur != da.sw {
		cands := r.scratch[:0]
		for _, l := range r.fwd[cur] {
			if r.fs != nil && r.fs.linkDownNow(l.idx) {
				continue
			}
			if dist[l.to] == dist[cur]-1 {
				cands = append(cands, l)
			}
		}
		pick := cands[dst%len(cands)]
		r.scratch = cands[:0]
		route = append(route, hop{sw: uint32(pick.from), port: uint16(pick.port)})
		cur = pick.to
	}
	route = append(route, hop{sw: uint32(da.sw), port: uint16(da.port)})
	r.cache[key] = route
	return route
}

// formRoute computes the source route on a structured fabric without
// BFS: same-leaf traffic is the single delivery hop; cross-leaf traffic
// goes up to spine dst%spines and down to the destination leaf; a
// resolution starting at a spine (cross-shard continuations, fault
// bounces after recovery) is the down-hop suffix. Each shape is exactly
// the route the BFS path resolves on a healthy fabric — the property
// test in route_form_test.go holds them equal pairwise. The returned
// slice aliases r.formBuf; callers consume it before the next
// resolution (see the formBuf field comment).
func (r *router) formRoute(fm *closForm, srcSw, dst int) []hop {
	da := r.t.nodes[dst]
	buf := r.formBuf[:0]
	if srcSw != da.sw {
		if srcSw >= fm.leaves {
			// Starting at a spine: one trunk down to the delivery leaf.
			buf = append(buf, hop{sw: uint32(srcSw), port: uint16(da.sw)})
		} else {
			s := dst % fm.spines
			buf = append(buf,
				hop{sw: uint32(srcSw), port: uint16(fm.npl + s)},
				hop{sw: uint32(fm.leaves + s), port: uint16(da.sw)})
		}
	}
	return append(buf, hop{sw: uint32(da.sw), port: uint16(da.port)})
}

// NewClos builds a 2-level folded-Clos (fat-tree) fabric: `leaves` leaf
// switches with nodesPerLeaf nodes each, every leaf linked up to each of
// `spines` spine switches by one bidirectional trunk. `ports` is the
// physical port count of every switch (a leaf consumes nodesPerLeaf +
// spines outputs, a spine consumes `leaves`).
//
// Leaf l uses ports 0..nodesPerLeaf-1 for its local nodes and port
// nodesPerLeaf+s for the trunk to spine s; spine s uses port l for the
// trunk down to leaf l. Same-leaf traffic crosses one switch; cross-leaf
// traffic crosses three (leaf, spine, leaf), with the spine chosen
// deterministically per destination (see Topology routing). This is the
// multistage fabric real Myrinet installations scaled to beyond the
// paper's single 8-port crossbar.
func NewClos(k *sim.Kernel, p *cost.Params, spines, leaves, nodesPerLeaf, ports int) *Fabric {
	if err := ClosCheck(spines, leaves, nodesPerLeaf, ports); err != nil {
		panic(err.Error())
	}
	t := NewTopology()
	leafIdx := make([]int, leaves)
	for l := 0; l < leaves; l++ {
		leafIdx[l] = t.AddSwitch(fmt.Sprintf("leaf%d", l), ports)
	}
	spineIdx := make([]int, spines)
	for s := 0; s < spines; s++ {
		spineIdx[s] = t.AddSwitch(fmt.Sprintf("spine%d", s), ports)
	}
	for l := 0; l < leaves; l++ {
		for j := 0; j < nodesPerLeaf; j++ {
			t.AttachNode(leafIdx[l], j)
		}
		for s := 0; s < spines; s++ {
			t.Link(leafIdx[l], nodesPerLeaf+s, spineIdx[s])
			t.Link(spineIdx[s], l, leafIdx[l])
		}
	}
	t.form = &closForm{leaves: leaves, spines: spines, npl: nodesPerLeaf}
	return NewFabric(k, p, t)
}

// ClosCheck reports whether a Clos geometry can be built: positive
// dimensions, enough switch ports for the leaf fan-out (local nodes
// plus spine trunks) and the spine fan-out, and port counts within the
// packed-route width. NewClos panics on exactly these conditions;
// callers that derive geometry from a user-supplied node count (the
// scale sweep) use ClosCheck to reject a bad point before any earlier
// sweep point has burned wall-clock time.
func ClosCheck(spines, leaves, nodesPerLeaf, ports int) error {
	if spines < 1 || leaves < 1 || nodesPerLeaf < 1 {
		return fmt.Errorf("myrinet: Clos dimensions must be positive")
	}
	if nodesPerLeaf+spines > ports {
		return fmt.Errorf("myrinet: leaf needs %d ports (%d nodes + %d spines), has %d",
			nodesPerLeaf+spines, nodesPerLeaf, spines, ports)
	}
	if leaves > ports {
		return fmt.Errorf("myrinet: spine needs %d ports for %d leaves, has %d", leaves, leaves, ports)
	}
	if ports > maxPackedPorts {
		return fmt.Errorf("myrinet: %d ports per switch exceed the packed-route limit %d", ports, maxPackedPorts)
	}
	return nil
}
