// Pingpong: the paper's measurement methodology as a runnable example.
//
// Measures one-way latency (50 ping-pong round trips) and streaming
// bandwidth for a set of packet sizes on the full FM layer, printing a
// small table comparable to Figures 8/9 — including the headline points:
// ~25 us at 4 words and ~16 MB/s at 128 bytes in the paper.
//
// Run with: go run ./examples/pingpong [-packets N]
package main

import (
	"flag"
	"fmt"

	"fm/internal/cluster"
	"fm/internal/core"
	"fm/internal/cost"
	"fm/internal/metrics"
)

func pair(size int) metrics.Pair {
	c := cluster.NewFM(2, core.DefaultConfig().WithFrame(size), cost.Default())
	return metrics.Pair{
		A:      c.EPs[0],
		B:      c.EPs[1],
		StartA: func(app func()) { c.CPUs[0].Start(app) },
		StartB: func(app func()) { c.CPUs[1].Start(app) },
		Run:    c.Run,
	}
}

func main() {
	packets := flag.Int("packets", 8192, "packets per bandwidth measurement")
	flag.Parse()

	fmt.Println("Illinois Fast Messages 1.0 — simulated SPARCstation-20 pair, 8-port Myrinet switch")
	fmt.Printf("%8s  %16s  %16s\n", "bytes", "one-way lat (us)", "bandwidth (MB/s)")
	for _, size := range []int{16, 32, 64, 128, 256, 512} {
		lat, err := metrics.PingPong(pair(size), size, 50)
		if err != nil {
			panic(err)
		}
		_, bw, err := metrics.Stream(pair(size), size, *packets)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%8d  %16.1f  %16.2f\n", size, lat.Microseconds(), bw)
	}
	fmt.Println("\npaper reference: 25us @ 16B, 32us & 16.2MB/s @ 128B, 19.6MB/s @ 512B")
}
